"""Out-of-core workflow: sharded storage + streaming scoring.

The paper's dataset is 6M customers; a deployment cannot hold it as Python
objects.  This example runs the constant-memory path end to end:

1. profile the incoming export with the data-quality report;
2. write it into customer-hashed CSV shards (`PartitionedLogWriter`);
3. score one shard in isolation with the batch model (the unit of
   parallelism a cluster would fan out over);
4. stream the day-merged union of all shards through the online
   `StabilityMonitor` without ever materialising the full log.

    python examples/big_data_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import StabilityModel, paper_scenario
from repro.core.streaming import StabilityMonitor
from repro.core.windowing import WindowGrid
from repro.data import TransactionLog
from repro.data.quality import profile_log, render_quality_report
from repro.data.streams import PartitionedLogWriter, iter_partitioned_log

N_SHARDS = 4


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-bigdata-"))
    dataset = paper_scenario(n_loyal=30, n_churners=30, seed=23)

    # --- 1. quality gate ---------------------------------------------------
    print("incoming export quality:")
    print(render_quality_report(profile_log(dataset.log, dataset.calendar)))

    # --- 2. shard to disk --------------------------------------------------
    shards_dir = workdir / "shards"
    baskets = sorted(dataset.log, key=lambda b: b.day)  # day-ordered shards
    with PartitionedLogWriter(shards_dir, n_shards=N_SHARDS) as writer:
        written = writer.write_all(baskets)
    print(f"\nsharded {written} receipts into {N_SHARDS} files under {shards_dir}")

    # --- 3. per-shard batch scoring (the parallel unit) ---------------------
    shard0 = TransactionLog(iter_partitioned_log(shards_dir, shards=[0]))
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(shard0)
    window = model.n_windows - 1
    flagged = sum(
        1 for score in model.churn_scores(window).values() if score > 0.5
    )
    print(
        f"shard 0: {shard0.n_customers} customers scored in isolation, "
        f"{flagged} above churn score 0.5 at the final window"
    )

    # --- 4. streaming over the merged shards --------------------------------
    grid = WindowGrid.monthly(dataset.calendar, 2)
    monitor = StabilityMonitor(grid, beta=0.5, first_alarm_window=5)
    for customer in dataset.log.customers():
        monitor.register(customer)
    reports = monitor.ingest_many(
        iter_partitioned_log(shards_dir, merge_by_day=True)
    )
    reports += monitor.finish()
    total_alarms = sum(len(r.alarms) for r in reports)
    print(
        f"streamed the merged shards through the monitor: "
        f"{len(reports)} windows closed, {total_alarms} alarms "
        f"(constant memory — the full log never lives in RAM)"
    )


if __name__ == "__main__":
    main()
