"""Running the model on your own transaction data.

Shows the full bring-your-own-data path:

1. write a product-level transaction log to CSV (here: generated, but the
   format is the usual ``customer_id, day, items, monetary`` receipt CSV);
2. load it back with :func:`repro.data.io.read_log_csv`;
3. abstract products into segments through the catalog's taxonomy —
   exactly the abstraction the paper applies before modelling;
4. fit the stability model on the segment-level log and inspect one
   customer.

    python examples/custom_data.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ScenarioConfig, StabilityModel, generate_dataset
from repro.data import Taxonomy
from repro.data.io import (
    read_catalog_jsonl,
    read_log_csv,
    write_catalog_jsonl,
    write_log_csv,
)
from repro.synth.customers import sample_profile
from repro.synth.shopping import simulate_customer

import numpy as np


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-custom-data-"))

    # --- 1. produce a *product-level* CSV (stand-in for your export) ----
    dataset = generate_dataset(
        ScenarioConfig(n_loyal=8, n_churners=8, seed=21, product_level=True)
    )
    # The generator's bundle log is already segment-level; rebuild a raw
    # product-level log the way a retailer's export would look.
    rng = np.random.default_rng(3)
    raw_log_path = workdir / "transactions.csv"
    catalog_path = workdir / "catalog.jsonl"
    profile = sample_profile(0, dataset.catalog, rng)
    from repro.data import TransactionLog

    raw = TransactionLog(
        simulate_customer(
            profile, dataset.calendar, dataset.catalog, rng, product_level=True
        )
    )
    write_log_csv(raw, raw_log_path)
    write_catalog_jsonl(dataset.catalog, catalog_path)
    print(f"wrote {raw.n_baskets} product-level receipts to {raw_log_path}")

    # --- 2. load ---------------------------------------------------------
    log = read_log_csv(raw_log_path)
    catalog = read_catalog_jsonl(catalog_path)

    # --- 3. abstract products -> segments via the taxonomy ---------------
    taxonomy = Taxonomy.from_catalog(catalog)
    segment_log = log.abstracted(taxonomy.segment_of_product)
    print(
        f"abstracted {len(log.item_universe())} products into "
        f"{len(segment_log.item_universe())} segments"
    )

    # --- 4. fit and inspect ----------------------------------------------
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(segment_log)
    customer = segment_log.customers()[0]
    trajectory = model.trajectory(customer)
    print(f"\ncustomer {customer} stability by month:")
    for k in range(model.n_windows):
        record = trajectory.at(k)
        if record.defined:
            print(f"  month {model.window_month(k):>2}: {record.stability:.2f}")


if __name__ == "__main__":
    main()
