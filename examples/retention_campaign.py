"""Targeted retention campaign: the use case motivating the paper.

"Retailers want to lower their retention marketing expenses, by deploying
accurate targeted marketing" (Section 1) — and the stability model tells
the retailer not just *who* to target, but *which products* to build the
offer around ("he can then target his marketing on significant products
that this customer is not buying anymore", Section 3.2).

This example budgets a campaign for the riskiest 15% of customers at the
latest evaluation window, prints each targeted customer with the segments
to feature in their offer, and reports the campaign's lift over random
targeting.

    python examples/retention_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import StabilityModel, paper_scenario
from repro.ml.metrics import lift_at_fraction

CAMPAIGN_FRACTION = 0.15
TOP_SEGMENTS_PER_OFFER = 3


def main() -> None:
    dataset = paper_scenario(n_loyal=60, n_churners=60, seed=9)
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(dataset.log)

    # Score everyone at the window ending at month 22.
    window = next(
        k for k in range(model.n_windows) if model.window_month(k) == 22
    )
    scores = model.churn_scores(window)

    # Budget: target the riskiest 15%.
    customers = sorted(scores, key=scores.get, reverse=True)
    n_targeted = max(1, int(len(customers) * CAMPAIGN_FRACTION))
    targeted = customers[:n_targeted]

    print(f"campaign: targeting {n_targeted}/{len(customers)} customers "
          f"at month {model.window_month(window)}\n")
    header = f"{'customer':>8}  {'score':>5}  {'truth':<7}  offer should feature"
    print(header)
    print("-" * len(header))
    for customer in targeted:
        explanation = model.explain(customer, window, top_k=TOP_SEGMENTS_PER_OFFER)
        names = ", ".join(
            dataset.catalog.segment(m.item).name for m in explanation.missing
        )
        truth = "churner" if dataset.cohorts.is_churner(customer) else "loyal"
        print(f"{customer:>8}  {scores[customer]:>5.2f}  {truth:<7}  {names}")

    # How much better than random mailing is this targeting?
    ids = sorted(scores)
    y_true = dataset.cohorts.label_vector(ids)
    y_score = np.asarray([scores[c] for c in ids])
    lift = lift_at_fraction(y_true, y_score, CAMPAIGN_FRACTION)
    hit_rate = float(
        np.mean([dataset.cohorts.is_churner(c) for c in targeted])
    )
    print(
        f"\ncampaign hit rate: {hit_rate:.0%} actual churners "
        f"(base rate {y_true.mean():.0%}) -> lift {lift:.1f}x over random mailing"
    )


if __name__ == "__main__":
    main()
