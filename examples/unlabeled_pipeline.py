"""The full pipeline on *unlabeled* data, end to end.

The paper's retailer provided cohort labels; public datasets don't.  This
example shows the complete label-free path:

1. start from a raw transaction CSV with no cohort information;
2. derive the loyal base and churner labels behaviourally
   (:func:`repro.data.build_cohorts`, after Buckinx & Van den Poel);
3. run the stability model and the AUROC evaluation against the derived
   labels;
4. (because the data here is synthetic) audit the derived labels against
   the generator's hidden ground truth.

    python examples/unlabeled_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import StabilityModel, paper_scenario
from repro.data import DatasetBundle, build_cohorts
from repro.data.io import read_log_csv, write_log_csv
from repro.eval import EvaluationProtocol
from repro.eval.reporting import format_table


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-unlabeled-"))
    csv_path = workdir / "transactions.csv"

    # --- 0. a raw export: receipts only, labels withheld -----------------
    hidden = paper_scenario(n_loyal=60, n_churners=60, seed=13)
    write_log_csv(hidden.log, csv_path)
    print(f"raw export: {csv_path} ({hidden.log.n_baskets} receipts, no labels)")

    # --- 1-2. load and label behaviourally -------------------------------
    log = read_log_csv(csv_path)
    cohorts = build_cohorts(
        log,
        hidden.calendar,
        outcome_start_month=18,  # the retailer's "last months" boundary
        drop_threshold=0.8,
    )
    print(
        f"behavioural labels: {cohorts.n_loyal} loyal, "
        f"{cohorts.n_churners} partially defected"
    )

    # --- 3. evaluate the stability model against the derived labels ------
    bundle = DatasetBundle.checked(
        log=log,
        catalog=hidden.catalog,
        calendar=hidden.calendar,
        cohorts=cohorts,
    )
    protocol = EvaluationProtocol(bundle)
    model = StabilityModel(hidden.calendar, window_months=2, alpha=2.0).fit(log)
    series = protocol.evaluate_stability_model(model)
    print("\nAUROC against behavioural labels:")
    print(
        format_table(
            ("month", "AUROC"),
            [(p.month, f"{p.auroc:.3f}") for p in series.points],
        )
    )

    # --- 4. audit the derived labels against the hidden truth ------------
    truth = hidden.cohorts
    agree_churn = len(cohorts.churners & truth.churners)
    agree_loyal = len(cohorts.loyal & truth.loyal)
    print(
        f"\nlabel audit vs hidden ground truth: "
        f"{agree_churn}/{cohorts.n_churners} derived churners are true churners; "
        f"{agree_loyal}/{cohorts.n_loyal} derived loyals are truly loyal"
    )
    print(
        "note: trip-rate labels miss content-dominated churners — exactly "
        "the gap the paper's basket-content model closes"
    )


if __name__ == "__main__":
    main()
