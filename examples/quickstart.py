"""Quickstart: fit the stability model, detect a churner, explain why.

Runs in a few seconds:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import StabilityModel, paper_scenario


def main() -> None:
    # 1. A synthetic grocery retailer: 30 loyal customers plus 30 that
    #    start defecting around month 18 of a 28-month study.
    dataset = paper_scenario(n_loyal=30, n_churners=30, seed=42)
    print(
        f"dataset: {dataset.log.n_customers} customers, "
        f"{dataset.log.n_baskets} receipts, "
        f"{dataset.catalog.n_segments} product segments"
    )

    # 2. The paper's model: 2-month windows, alpha = 2.
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(dataset.log)

    # 3. Score everyone at the window ending at month 22 (after the onset).
    window = next(
        k for k in range(model.n_windows) if model.window_month(k) == 22
    )
    scores = model.churn_scores(window)
    riskiest = max(scores, key=scores.get)
    label = "churner" if dataset.cohorts.is_churner(riskiest) else "loyal"
    print(
        f"\nriskiest customer at month 22: #{riskiest} "
        f"(churn score {scores[riskiest]:.2f}, ground truth: {label})"
    )

    # 4. Explain the defection: which significant segments disappeared?
    explanation = model.explain(riskiest, window, top_k=5)
    print(f"stability: {explanation.stability:.2f}; missing significant segments:")
    for item in explanation.missing:
        name = dataset.catalog.segment(item.item).name
        print(f"  - {name:<22} significance {item.significance:>8.1f} "
              f"({item.share:.0%} of the stability loss)")

    # 5. The customer's whole trajectory, month by month.
    trajectory = model.trajectory(riskiest)
    print("\nstability trajectory:")
    for k in range(model.n_windows):
        record = trajectory.at(k)
        if record.defined:
            bar = "#" * int(record.stability * 40)
            print(f"  month {model.window_month(k):>2}: {record.stability:.2f} {bar}")


if __name__ == "__main__":
    main()
