"""Deploying the model as a live alerting service.

The batch model refits from the whole log; a production system sees
receipts stream in and must alert the retention team the moment a window
closes with a customer below threshold.  This example replays a dataset
through the online :class:`~repro.core.streaming.StabilityMonitor` and
prints the alert feed a retention team would consume, each alert carrying
its explanation (the products whose loss triggered it).

    python examples/streaming_alerts.py
"""

from __future__ import annotations

from repro import paper_scenario
from repro.core.streaming import StabilityMonitor
from repro.core.windowing import WindowGrid

BETA = 0.6
BURN_IN_WINDOWS = 5  # ignore the noisy first 10 months


def main() -> None:
    dataset = paper_scenario(n_loyal=25, n_churners=25, seed=31)
    grid = WindowGrid.monthly(dataset.calendar, 2)
    monitor = StabilityMonitor(
        grid, beta=BETA, first_alarm_window=BURN_IN_WINDOWS
    )
    for customer in dataset.log.customers():
        monitor.register(customer)

    print(f"streaming {dataset.log.n_baskets} receipts for "
          f"{dataset.log.n_customers} customers (alert at stability <= {BETA})\n")

    baskets = sorted(dataset.log, key=lambda basket: basket.day)
    n_alerts = 0
    alerted: set[int] = set()
    for basket in baskets:
        for report in monitor.ingest(basket):
            month = grid.end_month(report.window_index, dataset.calendar)
            for alarm in report.alarms:
                n_alerts += 1
                reasons = ", ".join(
                    dataset.catalog.segment(item).name
                    for item, __ in monitor.explain_alarm(alarm.customer_id, top_k=3)
                )
                flag = "" if alarm.customer_id in alerted else "  [FIRST ALERT]"
                alerted.add(alarm.customer_id)
                print(
                    f"month {month:>2} | customer {alarm.customer_id:>3} "
                    f"stability {alarm.stability:.2f} | stopped buying: {reasons}{flag}"
                )
    for report in monitor.finish():
        month = grid.end_month(report.window_index, dataset.calendar)
        for alarm in report.alarms:
            n_alerts += 1
            alerted.add(alarm.customer_id)
            print(f"month {month:>2} | customer {alarm.customer_id:>3} "
                  f"stability {alarm.stability:.2f}")

    churners = dataset.cohorts.churners
    caught = len(alerted & churners)
    print(
        f"\n{n_alerts} alerts for {len(alerted)} distinct customers; "
        f"{caught}/{len(churners)} true churners caught, "
        f"{len(alerted) - caught} loyal customers flagged"
    )


if __name__ == "__main__":
    main()
