"""Early warning: customers likely to defect in the *future* months.

The paper's abstract: the model "is able to identify customers that are
likely to defect in the future months".  This example builds that
forward-looking call list: at a decision month, fit each customer's recent
stability trend, rank by the predicted number of windows until they cross
the defection threshold, and verify the list against what actually
happened afterwards.

    python examples/early_warning.py
"""

from __future__ import annotations

from repro import StabilityModel, paper_scenario
from repro.core.trend import forecast_stability, rank_by_risk
from repro.eval.reporting import format_table

DECISION_MONTH = 22
BETA = 0.5
CALL_LIST_SIZE = 12


def main() -> None:
    dataset = paper_scenario(n_loyal=50, n_churners=50, seed=19)
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(dataset.log)

    decision_window = next(
        k for k in range(model.n_windows)
        if model.window_month(k) == DECISION_MONTH
    )

    # Forecast every customer who has NOT yet crossed the threshold.
    forecasts = []
    for customer in model.customers():
        trajectory = model.trajectory(customer)
        current = trajectory.at(decision_window).stability
        if current <= BETA:
            continue  # already defecting: belongs on today's list, not tomorrow's
        forecasts.append(
            forecast_stability(
                trajectory, beta=BETA, lookback=4, upto_window=decision_window
            )
        )

    call_list = rank_by_risk(forecasts)[:CALL_LIST_SIZE]
    print(
        f"early-warning call list at month {DECISION_MONTH} "
        f"(threshold {BETA}, customers still above it):\n"
    )
    rows = []
    for forecast in call_list:
        trajectory = model.trajectory(forecast.customer_id)
        actually_crossed = next(
            (
                model.window_month(record.window.index)
                for record in trajectory.records
                if record.window.index > decision_window
                and record.defined
                and record.stability <= BETA
            ),
            None,
        )
        horizon = (
            f"{forecast.windows_to_threshold:.1f} windows"
            if forecast.windows_to_threshold is not None
            else "declining"
        )
        rows.append(
            (
                forecast.customer_id,
                f"{forecast.level:.2f}",
                f"{forecast.slope:+.3f}",
                horizon,
                f"month {actually_crossed}" if actually_crossed else "never",
                "churner" if dataset.cohorts.is_churner(forecast.customer_id) else "loyal",
            )
        )
    print(
        format_table(
            ("customer", "stability", "slope", "predicted crossing",
             "actual crossing", "truth"),
            rows,
        )
    )

    churners_on_list = sum(
        1 for f in call_list if dataset.cohorts.is_churner(f.customer_id)
    )
    print(
        f"\n{churners_on_list}/{len(call_list)} of the call list are true "
        f"churners (base rate 50%)"
    )


if __name__ == "__main__":
    main()
