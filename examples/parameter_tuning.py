"""Reproducing the paper's 5-fold CV hyper-parameter search (E4).

Section 3.1: window length 2 months and alpha = 2 "were chosen after
performing a 5-fold cross-validation search".  This example runs the same
search on a synthetic cohort, prints the full selection table, and then
compares the paper's exponential significance rule against the
alternatives implemented for the ablation study.

    python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import paper_scenario, tune_stability_model
from repro.eval.ablations import significance_function_sweep
from repro.eval.reporting import format_table, render_ablation


def main() -> None:
    dataset = paper_scenario(n_loyal=60, n_churners=60, seed=5)

    outcome = tune_stability_model(
        dataset.log,
        dataset.cohorts,
        dataset.calendar,
        window_grid=(1, 2, 3),
        alpha_grid=(1.5, 2.0, 3.0, 4.0),
        n_splits=5,
    )
    rows = [
        (f"{p['window_months']} months", f"{p['alpha']:g}", f"{score:.3f}")
        for p, score, __ in sorted(outcome.search.table, key=lambda e: -e[1])
    ]
    print(format_table(("window", "alpha", "mean CV AUROC"), rows))
    print(
        f"\nselected: window={outcome.best_window_months} months, "
        f"alpha={outcome.best_alpha:g} (AUROC {outcome.best_score:.3f})"
    )
    print("paper selected: window=2 months, alpha=2\n")

    points = significance_function_sweep(dataset.bundle)
    print(render_ablation("significance-function ablation (AUROC at onset+2mo)", points))


if __name__ == "__main__":
    main()
