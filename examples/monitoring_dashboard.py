"""Month-by-month attrition monitoring, as a retailer would deploy it.

Replays the study window by window: at the end of each 2-month window the
model re-scores the customer base, raises alarms (stability <= beta after
a burn-in), and aggregates which product segments the flagged customers
are abandoning — the population-level view of the paper's individual
explanations.

    python examples/monitoring_dashboard.py
"""

from __future__ import annotations

from collections import Counter

from repro import StabilityModel, ThresholdDetector, paper_scenario

BETA = 0.75
BURN_IN_MONTH = 12
TOP_LOST_SEGMENTS = 5


def main() -> None:
    dataset = paper_scenario(n_loyal=50, n_churners=50, seed=17)
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(dataset.log)
    detector = ThresholdDetector(beta=BETA)

    print(f"monitoring {dataset.log.n_customers} customers "
          f"(alarm when stability <= {BETA}, from month {BURN_IN_MONTH})\n")
    already_flagged: set[int] = set()
    for k in range(model.n_windows):
        month = model.window_month(k)
        if month < BURN_IN_MONTH:
            continue

        flagged = {
            customer
            for customer in model.customers()
            if detector.is_defecting(model.trajectory(customer), k)
        }
        new = flagged - already_flagged
        already_flagged |= flagged

        lost_segments: Counter[str] = Counter()
        for customer in flagged:
            explanation = model.explain(customer, k, top_k=3)
            for item in explanation.missing:
                lost_segments[dataset.catalog.segment(item.item).name] += 1

        top = ", ".join(
            f"{name} ({count})"
            for name, count in lost_segments.most_common(TOP_LOST_SEGMENTS)
        )
        marker = " <- defection onset" if month == dataset.cohorts.onset_month + 2 else ""
        print(
            f"month {month:>2}: {len(flagged):>3} alarmed "
            f"({len(new):>3} new){marker}"
        )
        if top:
            print(f"          top abandoned segments: {top}")

    # Precision of the final alarm set against the ground truth.
    churners = dataset.cohorts.churners
    true_positives = len(already_flagged & churners)
    print(
        f"\nfinal: {len(already_flagged)} customers ever flagged, "
        f"{true_positives} of {len(churners)} churners caught "
        f"({len(already_flagged) - true_positives} false alarms)"
    )


if __name__ == "__main__":
    main()
