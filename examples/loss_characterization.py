"""Characterizing what churners abandon (the paper's future work).

The paper's conclusion plans "to deepen the study of the characterization
of significant products that can explain customer defection".  This
example runs that study at population scale: it extracts every significant
loss event from churner trajectories, classifies each as abrupt vs fading,
measures recovery, and rolls losses up to departments — the category-
management view of churn.

    python examples/loss_characterization.py
"""

from __future__ import annotations

from repro import StabilityModel, paper_scenario
from repro.core.characterization import profile_population
from repro.eval.reporting import format_table


def main() -> None:
    dataset = paper_scenario(n_loyal=50, n_churners=50, seed=27)
    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(dataset.log)

    cohorts = {
        "loyal": sorted(dataset.cohorts.loyal),
        "churners": sorted(dataset.cohorts.churners),
    }
    profiles = {
        name: profile_population(
            (model.trajectory(c) for c in customers), min_share=0.03
        )
        for name, customers in cohorts.items()
    }

    rows = []
    for name, profile in profiles.items():
        n_abrupt = sum(s.n_abrupt for s in profile.segments.values())
        n_recovered = sum(s.n_recovered for s in profile.segments.values())
        rows.append(
            (
                name,
                f"{profile.n_events / profile.n_customers:.1f}",
                f"{n_abrupt / profile.n_events:.0%}",
                f"{n_recovered / profile.n_events:.0%}",
            )
        )
    print(format_table(("cohort", "losses/customer", "abrupt", "recovered"), rows))

    churner_profile = profiles["churners"]
    print("\nsegments churners abandon most:")
    top_rows = [
        (
            dataset.catalog.segment(s.item).name,
            s.n_losses,
            f"{s.abrupt_rate:.0%}",
            f"{s.recovery_rate:.0%}",
        )
        for s in churner_profile.top_lost(8)
    ]
    print(format_table(("segment", "losses", "abrupt", "recovered"), top_rows))

    print("\ndepartment rollup (churner losses):")
    rollup = churner_profile.department_rollup(dataset.catalog)
    dept_rows = sorted(rollup.items(), key=lambda pair: -pair[1])
    print(format_table(("department", "losses"), dept_rows))


if __name__ == "__main__":
    main()
