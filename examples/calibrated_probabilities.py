"""Turning the stability score into a budgetable churn probability.

The churn score ``1 - stability`` ranks customers well, but "risk 0.4"
does not mean "40% of such customers churn" — thresholded budgets need
calibrated probabilities.  This example fits a Platt calibrator on one
half of the customer base, applies it to the other half, and shows the
reliability table before and after (ranking untouched).

    python examples/calibrated_probabilities.py
"""

from __future__ import annotations

import numpy as np

from repro import StabilityModel, paper_scenario
from repro.eval import EvaluationProtocol
from repro.eval.reporting import format_table
from repro.ml.calibration import (
    PlattCalibrator,
    expected_calibration_error,
    reliability_curve,
)
from repro.ml.metrics import auroc

EVAL_MONTH = 22


def main() -> None:
    dataset = paper_scenario(n_loyal=80, n_churners=80, seed=29)
    protocol = EvaluationProtocol(dataset.bundle)
    fit_ids, eval_ids = protocol.train_test_split(seed=1)

    model = StabilityModel(dataset.calendar, window_months=2, alpha=2.0)
    model.fit(dataset.log)
    window = next(
        k for k in range(model.n_windows) if model.window_month(k) == EVAL_MONTH
    )

    def vectors(ids):
        scores = model.churn_scores(window, ids)
        return (
            dataset.cohorts.label_vector(ids),
            np.asarray([scores[c] for c in ids]),
        )

    fit_y, fit_scores = vectors(fit_ids)
    eval_y, eval_scores = vectors(eval_ids)

    calibrator = PlattCalibrator().fit(fit_scores, fit_y)
    calibrated = calibrator.transform(eval_scores)

    print(f"month {EVAL_MONTH}, held-out half ({len(eval_ids)} customers):")
    print(f"  raw score:  ECE {expected_calibration_error(eval_y, eval_scores):.3f}, "
          f"AUROC {auroc(eval_y, eval_scores):.3f}")
    print(f"  calibrated: ECE {expected_calibration_error(eval_y, calibrated):.3f}, "
          f"AUROC {auroc(eval_y, calibrated):.3f}  (ranking unchanged)\n")

    print("reliability after calibration (predicted vs observed churn rate):")
    rows = [
        (
            f"[{b.low:.1f}, {b.high:.1f})",
            f"{b.mean_predicted:.2f}",
            f"{b.observed_rate:.2f}",
            b.count,
        )
        for b in reliability_curve(eval_y, calibrated, n_bins=5)
    ]
    print(format_table(("bin", "predicted", "observed", "n"), rows))

    # The budget use case: mail everyone above 60% calibrated risk.
    threshold = 0.6
    targeted = calibrated >= threshold
    if targeted.any():
        realised = float(eval_y[targeted].mean())
        print(
            f"\nbudget rule 'mail above {threshold:.0%} risk': "
            f"{int(targeted.sum())} customers, realised churn rate {realised:.0%}"
        )


if __name__ == "__main__":
    main()
