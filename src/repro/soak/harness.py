"""The chaos/soak harness: fault-scheduled load replay against serving.

:func:`run_soak` replays a recorded basket stream
(:mod:`repro.synth.stream`) through :func:`repro.serve.loop.serve_stream`
under a :class:`~repro.soak.plan.SoakPlan` (loops or wall-clock
duration, optional basket-rate pacing) while a deterministic
:class:`~repro.soak.plan.ChaosSchedule` injects serve-layer faults
mid-soak.  The run is executed as a sequence of **legs** — bounded
``serve_stream`` invocations (``max_batches``) that stop exactly where
the next fault is scheduled — so every fault lands at a known commit
index and every recovery is observed in isolation:

* ``worker_crash`` / ``slow_shard`` — a one-batch
  :class:`~repro.runtime.faults.FaultPlan` installed through the
  serving loop's ``on_batch_start`` hook, exercising the executor's
  retry waves;
* ``kill_resume`` — :class:`SimulatedKill` raised from
  ``on_state_written``, the worst-case crash point between a batch's
  state write and its cursor commit; the resume leg must report exactly
  one reworked batch;
* ``tear_cursor`` / ``tear_state`` — :func:`~repro.runtime.faults.tear_file`
  applied to committed checkpoint files between legs; the next leg must
  fall back to the stream head (``serve.cursor_invalid``);
* ``ckpt_io`` — a transient :class:`OSError` raised from the
  checkpoint's I/O fault hook, cleared by the bounded
  retry-with-backoff in :class:`~repro.serve.checkpoint.ServeCheckpoint`.

After every fault the harness verifies the runbook invariants (resume
succeeds, measured rework stays within the per-site bound, cumulative
counters never regress within a head-run) and at the end of every loop
it checks **score parity**: the served fingerprint must equal the
offline sweep's, faults and all.  Latency is read from the
``serve.batch_s`` histogram the serving loop already records; the
resulting p50/p95/p99 (milliseconds) and overall throughput are held
against the plan's SLO budgets.  Violations do not abort the soak — they
are collected into the report (``passed=False``) so the bench artifact
still captures what happened.
"""

from __future__ import annotations

import logging
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.config import ExperimentConfig
from repro.errors import ConfigError, SoakError
from repro.obs import MetricsRegistry, get_metrics, get_tracer, timed_stage, use_metrics
from repro.obs import metrics as obs_metrics
from repro.runtime.faults import FaultPlan, tear_file
from repro.serve.checkpoint import ServeCheckpoint
from repro.serve.loop import ServeResult, offline_sweep_stream, serve_stream
from repro.soak.plan import (
    SITE_CKPT_IO,
    SITE_KILL_RESUME,
    SITE_SLOW_SHARD,
    SITE_TEAR_CURSOR,
    SITE_TEAR_STATE,
    SITE_WORKER_CRASH,
    ChaosCell,
    ChaosSchedule,
    SoakPlan,
)
from repro.synth.stream import replay_stream, stream_fingerprint

if TYPE_CHECKING:
    from collections.abc import Callable

    from repro.obs.export import MetricsPublisher
    from repro.serve.api import StatusBoard

__all__ = [
    "FaultOutcome",
    "LoopOutcome",
    "SimulatedKill",
    "SoakReport",
    "run_soak",
    "stream_shape",
]

logger = logging.getLogger(__name__)


class SimulatedKill(SoakError):
    """Raised by the harness from ``on_state_written`` to simulate a
    SIGKILL between a batch's state write and its cursor commit.  Never
    escapes :func:`run_soak` — the next leg resumes through it."""


@dataclass(frozen=True)
class FaultOutcome:
    """What one scheduled fault did, and what its recovery cost."""

    #: 1-based commit index the fault was scheduled at.
    batch: int
    #: One of the :data:`~repro.soak.plan.CHAOS_SITES`.
    site: str
    #: Whether the injection demonstrably fired (counter delta, raised
    #: hook, or observed stall) — a fault that silently failed to inject
    #: is itself a soak violation.
    injected: bool
    #: Data batches re-processed because of this fault (crash-class
    #: faults must stay <= 1; torn-checkpoint faults rework the
    #: committed prefix the fallback replays).
    rework_batches: int
    detail: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "batch": self.batch,
            "site": self.site,
            "injected": self.injected,
            "rework_batches": self.rework_batches,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class LoopOutcome:
    """One full replay of the stream under the chaos schedule."""

    loop_index: int
    legs: int
    fingerprint: str
    parity_ok: bool
    faults: tuple[FaultOutcome, ...]
    #: Final cumulative runbook counters of the loop's last head-run.
    counters: dict[str, int]

    def as_dict(self) -> dict[str, object]:
        return {
            "loop_index": self.loop_index,
            "legs": self.legs,
            "fingerprint": self.fingerprint,
            "parity_ok": self.parity_ok,
            "faults": [fault.as_dict() for fault in self.faults],
            "counters": dict(self.counters),
        }


@dataclass(frozen=True)
class SoakReport:
    """Everything one :func:`run_soak` measured and verified."""

    stream: str
    stream_fingerprint: str
    reference_fingerprint: str
    plan: SoakPlan
    chaos: ChaosSchedule | None
    n_batches_per_loop: int
    baskets_per_loop: int
    loops: tuple[LoopOutcome, ...]
    legs: int
    faults_injected: int
    baskets_played: int
    elapsed_s: float
    throughput_baskets_s: float
    #: ``count`` plus p50/p95/p99/max of per-batch score latency, ms.
    latency_ms: dict[str, float]
    #: Per-budget verdicts: ``{"p99": {"budget_ms": .., "actual_ms": ..,
    #: "ok": ..}, "throughput": {...}}`` — only budgets the plan set.
    slo: dict[str, dict[str, object]]
    violations: tuple[str, ...]
    passed: bool

    def to_payload(self) -> dict[str, object]:
        """JSON-safe form (the ``BENCH_serve.json`` ``soak`` scenario)."""
        chaos_payload: dict[str, object] | None = None
        if self.chaos is not None:
            chaos_payload = {
                "sites": list(self.chaos.sites()),
                "cells": [
                    {"batch": cell.batch, "site": cell.site}
                    for cell in self.chaos.cells()
                ],
                "n_faults": self.chaos.n_faults,
            }
        return {
            "stream": self.stream,
            "stream_fingerprint": self.stream_fingerprint,
            "reference_fingerprint": self.reference_fingerprint,
            "plan": {
                "mode": self.plan.mode,
                "loops": self.plan.loops,
                "duration_s": self.plan.duration_s,
                "rate": self.plan.rate,
                "batch_size": self.plan.batch_size,
                "n_shards": self.plan.n_shards,
                "parallel": self.plan.parallel,
            },
            "chaos": chaos_payload,
            "n_batches_per_loop": self.n_batches_per_loop,
            "baskets_per_loop": self.baskets_per_loop,
            "loops_completed": len(self.loops),
            "legs": self.legs,
            "faults_injected": self.faults_injected,
            "baskets_played": self.baskets_played,
            "elapsed_s": self.elapsed_s,
            "throughput_baskets_s": self.throughput_baskets_s,
            "latency_ms": dict(self.latency_ms),
            "slo": {k: dict(v) for k, v in self.slo.items()},
            "loops": [loop.as_dict() for loop in self.loops],
            "violations": list(self.violations),
            "passed": self.passed,
        }


def stream_shape(
    stream_path: str | Path, batch_size: int
) -> tuple[int, int]:
    """``(n_batches, n_baskets)`` one serve pass over a stream produces.

    Mirrors the serving loop's batching rule exactly: consecutive whole
    days accumulate until at least ``batch_size`` baskets, and a final
    short batch flushes the remainder.
    """
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    n_batches = 0
    pending = 0
    total = 0
    for day_batch in replay_stream(stream_path):
        pending += day_batch.n_baskets
        total += day_batch.n_baskets
        if pending >= batch_size:
            n_batches += 1
            pending = 0
    if pending:
        n_batches += 1
    return n_batches, total


class _Pacer:
    """Batch-granular basket-rate cap.

    The serving loop's ``on_batch_start`` hook has batch granularity, so
    the cap is approximated as one permit every ``batch_size / rate``
    seconds — accurate to within one batch, which is the finest the
    checkpoint cadence resolves anyway.
    """

    def __init__(self, rate: float | None, batch_size: int) -> None:
        self._interval = batch_size / rate if rate else 0.0
        self._next: float | None = None

    def pace(self) -> None:
        if not self._interval:
            return
        now = time.perf_counter()
        if self._next is not None and now < self._next:
            time.sleep(self._next - now)
            now = self._next
        self._next = now + self._interval


class _LoopRunner:
    """One chaos loop: legs, injections, invariant checks."""

    def __init__(
        self,
        *,
        loop_index: int,
        stream: Path,
        checkpoint_dir: Path,
        plan: SoakPlan,
        chaos: ChaosSchedule | None,
        config: ExperimentConfig,
        beta: float,
        first_alarm_window: int,
        registry: MetricsRegistry,
        reference_fingerprint: str,
        n_batches: int,
        status: StatusBoard | None = None,
        publisher: MetricsPublisher | None = None,
    ) -> None:
        self.loop_index = loop_index
        self.stream = stream
        self.checkpoint_dir = checkpoint_dir
        self.plan = plan
        self.chaos = chaos
        self.config = config
        self.beta = beta
        self.first_alarm_window = first_alarm_window
        self.registry = registry
        self.reference_fingerprint = reference_fingerprint
        self.n_batches = n_batches
        self.status = status
        self.publisher = publisher
        self.pacer = _Pacer(plan.rate, plan.batch_size)
        self.legs = 0
        self.leg_wall_s = 0.0
        self.committed = 0
        self.faults: list[FaultOutcome] = []
        self.violations: list[str] = []
        #: Cumulative-counter baseline of the current head-run; ``None``
        #: right after a restart-from-head fallback (counters reset).
        self._baseline: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Leg machinery
    # ------------------------------------------------------------------
    def _pace_hook(self, commit_index: int) -> FaultPlan | None:
        self.pacer.pace()
        return None

    def _fault_hook(
        self, batch: int, batch_plan: FaultPlan
    ) -> Callable[[int], FaultPlan | None]:
        def hook(commit_index: int) -> FaultPlan | None:
            self.pacer.pace()
            return batch_plan if commit_index == batch else None

        return hook

    def _run_leg(
        self,
        *,
        max_batches: int | None = None,
        on_batch_start: Callable[[int], FaultPlan | None] | None = None,
        on_state_written: Callable[[int], None] | None = None,
        io_fault: Callable[[str, int, int], None] | None = None,
    ) -> ServeResult:
        """One bounded ``serve_stream`` invocation against the loop dir."""
        self.legs += 1
        self.registry.counter(obs_metrics.SOAK_LEGS).inc()
        started = time.perf_counter()
        try:
            with timed_stage(
                obs_metrics.STAGE_SOAK_LEG,
                loop=self.loop_index,
                leg=self.legs,
            ):
                return serve_stream(
                    self.stream,
                    self.checkpoint_dir,
                    batch_size=self.plan.batch_size,
                    n_shards=self.plan.n_shards,
                    parallel=self.plan.parallel,
                    config=self.config,
                    beta=self.beta,
                    first_alarm_window=self.first_alarm_window,
                    retries=self.plan.retries,
                    timeout=self.plan.shard_timeout_s,
                    status=self.status,
                    publisher=self.publisher,
                    max_batches=max_batches,
                    on_batch_start=(
                        on_batch_start
                        if on_batch_start is not None
                        else self._pace_hook
                    ),
                    on_state_written=on_state_written,
                    checkpoint_io_retries=self.plan.checkpoint_io_retries,
                    checkpoint_io_fault=io_fault,
                )
        finally:
            self.leg_wall_s += time.perf_counter() - started

    def _violation(self, message: str) -> None:
        self.violations.append(f"loop {self.loop_index}: {message}")
        logger.warning("soak violation: %s", self.violations[-1])

    def _after_leg(self, result: ServeResult, expected_commit: int) -> None:
        """Runbook invariants after a leg that ended at a known commit."""
        counters = result.counters.as_dict()
        if self._baseline is not None:
            for key, previous in self._baseline.items():
                if counters.get(key, 0) < previous:
                    self._violation(
                        f"counter {key!r} regressed within a head-run: "
                        f"{previous} -> {counters.get(key, 0)}"
                    )
        self._baseline = counters
        if counters["checkpointed"] != expected_commit:
            self._violation(
                f"leg {self.legs} ended at commit "
                f"{counters['checkpointed']}, expected {expected_commit}"
            )
        self.committed = counters["checkpointed"]

    def _record(
        self,
        cell: ChaosCell,
        *,
        injected: bool,
        rework: int,
        detail: str,
        rework_bound: int,
    ) -> None:
        if injected:
            self.registry.counter(obs_metrics.SOAK_FAULTS_INJECTED).inc()
            if self.publisher is not None:
                # A fired fault is the flight recorder's headline
                # trigger: flush the ring so the artifact names the
                # schedule cell and carries the lead-up telemetry.
                self.publisher.record_event(
                    "fault_injected",
                    site=cell.site,
                    batch=cell.batch,
                    loop=self.loop_index,
                    detail=detail,
                )
                self.publisher.trigger_flight(
                    f"fault:{cell.site}", commit_index=cell.batch
                )
        else:
            self._violation(f"fault {cell.label()} did not inject")
        if rework > rework_bound:
            self._violation(
                f"fault {cell.label()} cost {rework} reworked batch(es), "
                f"bound is {rework_bound}"
            )
        self.faults.append(
            FaultOutcome(
                batch=cell.batch,
                site=cell.site,
                injected=injected,
                rework_batches=rework,
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # Site handlers — each leaves a committed cursor at ``cell.batch``
    # (or at commit 1 after a torn-checkpoint fallback probe).
    # ------------------------------------------------------------------
    def _crash_leg(self, cell: ChaosCell, remaining: int) -> None:
        assert self.chaos is not None
        batch_plan = FaultPlan(crashes=((self.chaos.crash_shard, 0),))
        before = self.registry.counter_value(obs_metrics.SHARD_RETRIES)
        result = self._run_leg(
            max_batches=remaining,
            on_batch_start=self._fault_hook(cell.batch, batch_plan),
        )
        retries = (
            self.registry.counter_value(obs_metrics.SHARD_RETRIES) - before
        )
        self._after_leg(result, cell.batch)
        self._record(
            cell,
            injected=retries > 0,
            rework=result.batches_reworked,
            detail=f"shard {self.chaos.crash_shard} crashed; "
            f"{retries} retry wave(s)",
            rework_bound=1,
        )

    def _slow_leg(self, cell: ChaosCell, remaining: int) -> None:
        assert self.chaos is not None
        batch_plan = FaultPlan(
            slow=((self.chaos.slow_shard, 0, cell.seconds),)
        )
        before_timeouts = self.registry.counter_value(
            obs_metrics.SHARD_TIMEOUTS
        )
        started = time.perf_counter()
        result = self._run_leg(
            max_batches=remaining,
            on_batch_start=self._fault_hook(cell.batch, batch_plan),
        )
        stalled = time.perf_counter() - started
        timeouts = (
            self.registry.counter_value(obs_metrics.SHARD_TIMEOUTS)
            - before_timeouts
        )
        self._after_leg(result, cell.batch)
        # With a shard timeout below the injected delay the pool's
        # timeout/retry path fires (counted); without one, the stall
        # itself is the observable.
        self._record(
            cell,
            injected=timeouts > 0 or stalled >= cell.seconds,
            rework=result.batches_reworked,
            detail=f"shard {self.chaos.slow_shard} slept {cell.seconds}s; "
            f"{timeouts} timeout(s), leg wall {stalled:.2f}s",
            rework_bound=1,
        )

    def _kill_leg(self, cell: ChaosCell, remaining: int) -> None:
        def killer(commit_index: int) -> None:
            if commit_index == cell.batch:
                raise SimulatedKill(
                    f"simulated kill between state write and cursor commit "
                    f"of batch {commit_index}"
                )

        killed = False
        try:
            self._run_leg(max_batches=remaining, on_state_written=killer)
        except SimulatedKill:
            killed = True
        if not killed:
            self._violation(
                f"kill scheduled at batch {cell.batch} never fired"
            )
        # The killed leg left batch ``cell.batch`` state-written but
        # uncommitted: the resume probe must rework exactly that batch.
        result = self._run_leg(max_batches=1)
        if not result.resumed:
            self._violation(
                f"resume after kill at batch {cell.batch} did not resume "
                "from the committed cursor"
            )
        self._after_leg(result, cell.batch)
        self._record(
            cell,
            injected=killed,
            rework=result.batches_reworked,
            detail="killed between state write and cursor commit; resumed",
            rework_bound=1,
        )

    def _tear_leg(self, cell: ChaosCell, remaining: int) -> None:
        result = self._run_leg(max_batches=remaining)
        self._after_leg(result, cell.batch)
        committed_before = self.committed
        checkpoint = ServeCheckpoint(self.checkpoint_dir)
        if cell.site == SITE_TEAR_CURSOR:
            torn = tear_file(checkpoint.cursor_path, keep_fraction=0.5)
        else:
            # When the cell lands on the stream's final batch the leg
            # runs through the finish seal (a remainder flush commits
            # outside the max_batches check), which prunes the data
            # batch's state dir — the seal's own dir is the survivor.
            state_commit = cell.batch + 1 if result.finished else cell.batch
            torn = tear_file(
                checkpoint.state_dir(state_commit) / "shard-0000.json",
                keep_fraction=0.5,
            )
        before_invalid = self.registry.counter_value(
            obs_metrics.SERVE_CURSOR_INVALID
        )
        # The fallback restarts the cumulative counters from zero.
        self._baseline = None
        probe = self._run_leg(max_batches=1)
        fell_back = (
            self.registry.counter_value(obs_metrics.SERVE_CURSOR_INVALID)
            == before_invalid + 1
        )
        if probe.resumed:
            self._violation(
                f"torn {cell.site} at batch {cell.batch} did not trigger "
                "the restart-from-head fallback"
            )
        self._after_leg(probe, 1)
        self._record(
            cell,
            injected=fell_back,
            # The fallback replays the committed prefix: that is the
            # rework this corruption cost (schedule tears early — the
            # default smoke tears at batch 1 — to keep it at one batch).
            rework=committed_before,
            detail=f"tore {torn.name}; fell back to stream head",
            rework_bound=committed_before,
        )

    def _ckpt_io_leg(self, cell: ChaosCell, remaining: int) -> None:
        hits: list[int] = []

        def io_fault(operation: str, commit_index: int, attempt: int) -> None:
            if (
                operation == "write_state"
                and commit_index == cell.batch
                and attempt == 0
            ):
                hits.append(attempt)
                raise OSError(
                    cell.errno_code, "injected checkpoint volume fault"
                )

        before = self.registry.counter_value(
            obs_metrics.SERVE_CHECKPOINT_IO_RETRIES
        )
        result = self._run_leg(max_batches=remaining, io_fault=io_fault)
        retried = (
            self.registry.counter_value(
                obs_metrics.SERVE_CHECKPOINT_IO_RETRIES
            )
            - before
        )
        self._after_leg(result, cell.batch)
        self._record(
            cell,
            injected=bool(hits) and retried > 0,
            rework=result.batches_reworked,
            detail=f"errno {cell.errno_code} on state write; "
            f"{retried} I/O retry(ies) cleared it",
            rework_bound=1,
        )

    # ------------------------------------------------------------------
    def run(self) -> LoopOutcome:
        if self.checkpoint_dir.exists():
            raise ConfigError(
                f"soak loop directory already exists: {self.checkpoint_dir}"
            )
        handlers: dict[str, Callable[[ChaosCell, int], None]] = {
            SITE_WORKER_CRASH: self._crash_leg,
            SITE_SLOW_SHARD: self._slow_leg,
            SITE_KILL_RESUME: self._kill_leg,
            SITE_TEAR_CURSOR: self._tear_leg,
            SITE_TEAR_STATE: self._tear_leg,
            SITE_CKPT_IO: self._ckpt_io_leg,
        }
        cells = self.chaos.cells() if self.chaos is not None else ()
        for cell in cells:
            remaining = cell.batch - self.committed
            if remaining < 1:
                raise SoakError(
                    f"chaos cell {cell.label()} is behind the committed "
                    f"cursor ({self.committed}) — schedule out of order"
                )
            handlers[cell.site](cell, remaining)
        final = self._run_leg()
        if not final.finished:
            self._violation("final leg did not serve the stream to the end")
        # ``checkpointed`` counts data batches only — the finish seal
        # commits under its own index but is not a data batch.
        self._after_leg(final, self.n_batches)
        fingerprint = final.fingerprint()
        parity_ok = fingerprint == self.reference_fingerprint
        if not parity_ok:
            self._violation(
                f"score fingerprint {fingerprint} != offline reference "
                f"{self.reference_fingerprint}"
            )
        return LoopOutcome(
            loop_index=self.loop_index,
            legs=self.legs,
            fingerprint=fingerprint,
            parity_ok=parity_ok,
            faults=tuple(self.faults),
            counters=final.counters.as_dict(),
        )


def run_soak(
    stream_path: str | Path,
    workdir: str | Path,
    plan: SoakPlan,
    chaos: ChaosSchedule | None = None,
    *,
    config: ExperimentConfig | None = None,
    beta: float = 0.5,
    first_alarm_window: int = 0,
    keep_checkpoints: bool = False,
    status: StatusBoard | None = None,
    publisher: MetricsPublisher | None = None,
) -> SoakReport:
    """Soak the serving layer with scheduled faults; verify and measure.

    Parameters
    ----------
    stream_path:
        A recorded stream (:func:`repro.synth.stream.record_stream`).
    workdir:
        Scratch directory for per-loop checkpoint dirs
        (``loop-000/``, ``loop-001/``, ...); created if missing.  Loop
        dirs are deleted after each loop unless ``keep_checkpoints``.
    plan:
        Load shape and SLO budgets (:class:`~repro.soak.plan.SoakPlan`).
    chaos:
        Fault schedule, re-applied on every loop; ``None`` soaks
        fault-free (a pure load/SLO run).
    config, beta, first_alarm_window:
        Scoring configuration, shared with the offline reference so
        parity compares like with like.
    status:
        Optional :class:`~repro.serve.api.StatusBoard` the serving legs
        keep current — the soak CLI binds it to a port so ``/metrics``
        is scrapeable mid-run.
    publisher:
        Optional :class:`~repro.obs.export.MetricsPublisher` (the live
        telemetry plane).  The harness fills its SLO budgets from the
        plan when unset, the serving legs tick it per batch, every
        injected fault and any end-of-run SLO violation triggers its
        flight recorder, and a final forced publish captures the
        closing state.

    Raises
    ------
    ConfigError
        If the schedule does not fit the stream (a cell beyond the last
        batch), needs a parallel pool the plan does not provide, or
        schedules I/O faults with a zero retry budget.

    Notes
    -----
    Invariant violations do **not** raise — they are collected into
    :attr:`SoakReport.violations` (``passed=False``) so the bench
    artifact records the failure rather than vanishing with it.
    """
    stream = Path(stream_path)
    workdir = Path(workdir)
    config = config if config is not None else ExperimentConfig()
    n_batches, n_baskets = stream_shape(stream, plan.batch_size)
    if n_batches < 1:
        raise ConfigError(f"stream {stream} holds no data batches")
    if chaos is not None:
        if chaos.max_batch > n_batches:
            raise ConfigError(
                f"chaos schedule targets batch {chaos.max_batch} but the "
                f"stream only yields {n_batches} batch(es) at batch_size "
                f"{plan.batch_size}"
            )
        if chaos.requires_parallel and not (
            plan.parallel and plan.n_shards > 1
        ):
            raise ConfigError(
                "worker_crash/slow_shard faults need parallel=True and "
                f"n_shards >= 2 (got parallel={plan.parallel}, "
                f"n_shards={plan.n_shards}) — the serial path has no "
                "worker process to fault"
            )
        if chaos.io_errors and plan.checkpoint_io_retries < 1:
            raise ConfigError(
                "ckpt_io faults need checkpoint_io_retries >= 1 to clear"
            )
    reference = offline_sweep_stream(
        stream, config=config, beta=beta, first_alarm_window=first_alarm_window
    )
    reference_fp = reference.fingerprint()
    stream_fp = stream_fingerprint(stream)
    workdir.mkdir(parents=True, exist_ok=True)
    if publisher is not None and publisher.slo_budgets_ms is None:
        # Burn rate is defined against the plan's budgets unless the
        # caller already configured its own.
        publisher.slo_budgets_ms = plan.slo_budgets_ms()

    outer = get_metrics()
    registry = MetricsRegistry()
    loops: list[LoopOutcome] = []
    violations: list[str] = []
    legs = 0
    serving_wall_s = 0.0
    started = time.perf_counter()
    with use_metrics(registry):
        with get_tracer().span(
            obs_metrics.SPAN_SOAK_RUN,
            stream=str(stream),
            mode=plan.mode,
            faults=chaos.n_faults if chaos is not None else 0,
        ):
            loop_index = 0
            while True:
                runner = _LoopRunner(
                    loop_index=loop_index,
                    stream=stream,
                    checkpoint_dir=workdir / f"loop-{loop_index:03d}",
                    plan=plan,
                    chaos=chaos,
                    config=config,
                    beta=beta,
                    first_alarm_window=first_alarm_window,
                    registry=registry,
                    reference_fingerprint=reference_fp,
                    n_batches=n_batches,
                    status=status,
                    publisher=publisher,
                )
                outcome = runner.run()
                loops.append(outcome)
                violations.extend(runner.violations)
                legs += runner.legs
                serving_wall_s += runner.leg_wall_s
                registry.counter(obs_metrics.SOAK_LOOPS).inc()
                if not keep_checkpoints:
                    shutil.rmtree(runner.checkpoint_dir, ignore_errors=True)
                loop_index += 1
                elapsed = time.perf_counter() - started
                if plan.mode == "loops" and loop_index >= plan.loops:
                    break
                if plan.mode == "duration" and elapsed >= plan.duration_s:
                    break
    elapsed_s = time.perf_counter() - started

    batch_hist = registry.histogram(obs_metrics.STAGE_SERVE_BATCH)
    hist_summary = batch_hist.summary()
    latency_ms: dict[str, float] = {
        "count": float(hist_summary["count"]),
        "p50": hist_summary["p50"] * 1000.0,
        "p95": hist_summary["p95"] * 1000.0,
        "p99": hist_summary["p99"] * 1000.0,
        "max": hist_summary["max"] * 1000.0,
    }
    baskets_played = registry.counter_value(obs_metrics.SERVE_INGESTED)
    throughput = (
        baskets_played / serving_wall_s if serving_wall_s > 0 else 0.0
    )

    slo: dict[str, dict[str, object]] = {}
    for quantile, budget in plan.slo_budgets_ms().items():
        actual = latency_ms[quantile]
        ok = actual <= budget
        slo[quantile] = {"budget_ms": budget, "actual_ms": actual, "ok": ok}
        if not ok:
            registry.counter(obs_metrics.SOAK_SLO_VIOLATIONS).inc()
            violations.append(
                f"SLO: batch latency {quantile} {actual:.1f}ms exceeds "
                f"budget {budget:.1f}ms"
            )
    if plan.min_throughput is not None:
        ok = throughput >= plan.min_throughput
        slo["throughput"] = {
            "budget_baskets_s": plan.min_throughput,
            "actual_baskets_s": throughput,
            "ok": ok,
        }
        if not ok:
            registry.counter(obs_metrics.SOAK_SLO_VIOLATIONS).inc()
            violations.append(
                f"SLO: throughput {throughput:.1f} baskets/s below floor "
                f"{plan.min_throughput:.1f}"
            )

    slo_violations = [v for v in violations if v.startswith("SLO:")]
    if publisher is not None:
        if slo_violations:
            publisher.record_event(
                "slo_violation", violations=list(slo_violations)
            )
            publisher.trigger_flight(
                f"slo_violation:{slo_violations[0]}",
                commit_index=registry.counter_value(
                    obs_metrics.SERVE_CHECKPOINTED
                ),
            )
        # Close the stream with a forced publish so the last snapshot
        # reflects end-of-soak counters and burn.
        publisher.tick(registry, force=True)

    if getattr(outer, "enabled", False):
        # Fold the soak's private registry into whatever the session
        # installed (e.g. the CLI's --metrics-out sink).
        outer.merge(registry.dump())

    report = SoakReport(
        stream=str(stream),
        stream_fingerprint=stream_fp,
        reference_fingerprint=reference_fp,
        plan=plan,
        chaos=chaos,
        n_batches_per_loop=n_batches,
        baskets_per_loop=n_baskets,
        loops=tuple(loops),
        legs=legs,
        faults_injected=registry.counter_value(
            obs_metrics.SOAK_FAULTS_INJECTED
        ),
        baskets_played=baskets_played,
        elapsed_s=elapsed_s,
        throughput_baskets_s=throughput,
        latency_ms=latency_ms,
        slo=slo,
        violations=tuple(violations),
        passed=not violations,
    )
    logger.info(
        "soak %s: %d loop(s), %d leg(s), %d fault(s) injected, "
        "p99=%.1fms, %.1f baskets/s — %s",
        "PASSED" if report.passed else "FAILED",
        len(loops),
        legs,
        report.faults_injected,
        latency_ms["p99"],
        throughput,
        "no violations" if report.passed else "; ".join(violations),
    )
    return report
