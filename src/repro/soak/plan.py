"""Frozen value objects describing a chaos/soak run.

Two plans, both immutable and validated at construction:

* :class:`SoakPlan` — *how much* load: loops vs wall-clock duration
  (the ``StabilityPlan`` idiom from SNIPPETS.md Snippet 3), an optional
  basket-rate cap, the serving shape (batch size, shards, parallelism)
  and the latency/throughput SLOs the run is held to.
* :class:`ChaosSchedule` — *what goes wrong, and when*: the
  ``(shard, attempt)`` cells of :class:`~repro.runtime.faults.FaultPlan`
  generalised to ``(batch, site)`` cells, where *batch* is the 1-based
  commit index of a data batch in the served stream and *site* is the
  infrastructure layer the fault strikes:

  ========================  ==================================================
  site                      what is injected
  ========================  ==================================================
  ``worker_crash``          a shard worker process dies (``os._exit``) on the
                            batch's first pool attempt
  ``slow_shard``            a shard worker sleeps before computing, tripping
                            the pool's per-wave timeout/retry path
  ``kill_resume``           the serving process dies *between* the batch's
                            state write and its cursor commit — the
                            worst-case crash point
  ``tear_cursor``           ``cursor.json`` is truncated mid-byte after the
                            batch commits (external corruption)
  ``tear_state``            a committed shard state file is truncated after
                            the batch commits
  ``ckpt_io``               the batch's checkpoint state write raises a
                            transient ``OSError`` (ENOSPC/EACCES) cleared by
                            one retry
  ========================  ==================================================

Like :class:`~repro.runtime.faults.FaultPlan`, a schedule rejects
duplicate cells and conflicting cells (two sites on one batch) at
construction — a chaos run must be a deterministic script, not a race.
"""

from __future__ import annotations

import errno as _errno
from dataclasses import dataclass, field, fields

from repro.errors import ConfigError

__all__ = [
    "SITE_WORKER_CRASH",
    "SITE_SLOW_SHARD",
    "SITE_KILL_RESUME",
    "SITE_TEAR_CURSOR",
    "SITE_TEAR_STATE",
    "SITE_CKPT_IO",
    "CHAOS_SITES",
    "ChaosCell",
    "ChaosSchedule",
    "SoakPlan",
]

SITE_WORKER_CRASH = "worker_crash"
SITE_SLOW_SHARD = "slow_shard"
SITE_KILL_RESUME = "kill_resume"
SITE_TEAR_CURSOR = "tear_cursor"
SITE_TEAR_STATE = "tear_state"
SITE_CKPT_IO = "ckpt_io"

#: Every fault site a schedule can target, in the order the default
#: smoke schedule exercises them.
CHAOS_SITES = (
    SITE_TEAR_CURSOR,
    SITE_WORKER_CRASH,
    SITE_SLOW_SHARD,
    SITE_KILL_RESUME,
    SITE_CKPT_IO,
    SITE_TEAR_STATE,
)


@dataclass(frozen=True)
class ChaosCell:
    """One scheduled fault: ``(batch, site)`` plus site parameters."""

    #: 1-based commit index of the data batch the fault strikes.
    batch: int
    #: One of :data:`CHAOS_SITES`.
    site: str
    #: ``slow_shard`` only: injected in-worker sleep, seconds.
    seconds: float = 0.0
    #: ``ckpt_io`` only: the simulated ``OSError`` errno.
    errno_code: int = 0

    def label(self) -> str:
        return f"(batch {self.batch}, site {self.site})"


@dataclass(frozen=True)
class ChaosSchedule:
    """Deterministic ``(batch, site)`` fault schedule for one soak.

    Attributes
    ----------
    crashes:
        Batches whose first pool attempt kills the worker of shard
        ``crash_shard`` (requires a parallel pool — the serial path has
        no worker process to kill).
    slow:
        ``(batch, seconds)`` pairs: shard ``slow_shard``'s worker sleeps
        that long on the batch's first attempt (parallel pools only).
    kills:
        Batches killed between state write and cursor commit; the
        harness verifies the resume reworks exactly one batch.
    torn_cursors:
        Batches after whose commit ``cursor.json`` is torn; the harness
        verifies the next leg falls back to the stream head.
    torn_state:
        Batches after whose commit one shard state file is torn; same
        fallback contract as a torn cursor.
    io_errors:
        ``(batch, errno)`` pairs: the batch's checkpoint state write
        raises that transient ``OSError`` once, exercising the bounded
        retry-with-backoff in :class:`~repro.serve.checkpoint.ServeCheckpoint`.
    crash_shard, slow_shard:
        Which shard the worker-level faults target.
    """

    crashes: tuple[int, ...] = ()
    slow: tuple[tuple[int, float], ...] = ()
    kills: tuple[int, ...] = ()
    torn_cursors: tuple[int, ...] = ()
    torn_state: tuple[int, ...] = ()
    io_errors: tuple[tuple[int, int], ...] = ()
    crash_shard: int = 0
    slow_shard: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crashes", tuple(int(b) for b in self.crashes)
        )
        object.__setattr__(
            self, "slow", tuple((int(b), float(s)) for b, s in self.slow)
        )
        object.__setattr__(self, "kills", tuple(int(b) for b in self.kills))
        object.__setattr__(
            self, "torn_cursors", tuple(int(b) for b in self.torn_cursors)
        )
        object.__setattr__(
            self, "torn_state", tuple(int(b) for b in self.torn_state)
        )
        object.__setattr__(
            self,
            "io_errors",
            tuple((int(b), int(e)) for b, e in self.io_errors),
        )
        if self.crash_shard < 0 or self.slow_shard < 0:
            raise ConfigError("fault target shards must be >= 0")
        if any(seconds <= 0 for _, seconds in self.slow):
            raise ConfigError("slow-shard delays must be > 0 seconds")
        if any(code <= 0 for _, code in self.io_errors):
            raise ConfigError("io_errors cells need a positive errno")
        self._validate_cells()

    def _validate_cells(self) -> None:
        """One fault per batch, no duplicates — ConfigError names the cell."""
        seen: dict[int, str] = {}
        for cell in self._raw_cells():
            if cell.batch < 1:
                raise ConfigError(
                    f"chaos batch indices are 1-based commit indexes; got "
                    f"batch {cell.batch} for site {cell.site}"
                )
            previous = seen.get(cell.batch)
            if previous == cell.site:
                raise ConfigError(
                    f"duplicate chaos cell {cell.label()}"
                )
            if previous is not None:
                raise ConfigError(
                    f"conflicting chaos cells at batch {cell.batch}: "
                    f"{previous} and {cell.site} (one fault per batch — "
                    "rework accounting needs isolated faults)"
                )
            seen[cell.batch] = cell.site

    def _raw_cells(self) -> list[ChaosCell]:
        cells = [
            ChaosCell(batch=b, site=SITE_WORKER_CRASH) for b in self.crashes
        ]
        cells += [
            ChaosCell(batch=b, site=SITE_SLOW_SHARD, seconds=s)
            for b, s in self.slow
        ]
        cells += [ChaosCell(batch=b, site=SITE_KILL_RESUME) for b in self.kills]
        cells += [
            ChaosCell(batch=b, site=SITE_TEAR_CURSOR)
            for b in self.torn_cursors
        ]
        cells += [
            ChaosCell(batch=b, site=SITE_TEAR_STATE) for b in self.torn_state
        ]
        cells += [
            ChaosCell(batch=b, site=SITE_CKPT_IO, errno_code=e)
            for b, e in self.io_errors
        ]
        return cells

    def cells(self) -> tuple[ChaosCell, ...]:
        """Every scheduled fault, ordered by batch."""
        return tuple(sorted(self._raw_cells(), key=lambda c: c.batch))

    @property
    def n_faults(self) -> int:
        return len(self._raw_cells())

    @property
    def max_batch(self) -> int:
        """Highest batch index any cell targets (0 when empty)."""
        cells = self._raw_cells()
        return max((c.batch for c in cells), default=0)

    @property
    def requires_parallel(self) -> bool:
        """Worker-level faults need a parallel pool to have a worker."""
        return bool(self.crashes or self.slow)

    def sites(self) -> tuple[str, ...]:
        """Distinct sites this schedule exercises, in CHAOS_SITES order."""
        present = {cell.site for cell in self._raw_cells()}
        return tuple(site for site in CHAOS_SITES if site in present)

    @classmethod
    def smoke(
        cls,
        n_batches: int,
        *,
        slow_seconds: float = 1.0,
        io_errno: int = _errno.ENOSPC,
        crash_shard: int = 0,
        slow_shard: int = 0,
    ) -> ChaosSchedule:
        """The default all-sites schedule for smoke/CI soaks.

        Assigns one fault per batch in :data:`CHAOS_SITES` order
        starting at batch 1 — the torn-cursor fault lands on batch 1 on
        purpose, so its restart-from-head fallback reworks exactly one
        committed batch and the smoke soak's "rework <= 1 batch per
        fault" assertion covers every site.  With fewer batches than
        sites, the later sites are dropped (``n_batches`` must be >= 1).
        """
        if n_batches < 1:
            raise ConfigError(
                f"a smoke schedule needs >= 1 batch, got {n_batches}"
            )
        plan: dict[str, object] = {
            "crash_shard": crash_shard,
            "slow_shard": slow_shard,
        }
        for batch, site in enumerate(CHAOS_SITES[:n_batches], start=1):
            if site == SITE_TEAR_CURSOR:
                plan["torn_cursors"] = (batch,)
            elif site == SITE_WORKER_CRASH:
                plan["crashes"] = (batch,)
            elif site == SITE_SLOW_SHARD:
                plan["slow"] = ((batch, slow_seconds),)
            elif site == SITE_KILL_RESUME:
                plan["kills"] = (batch,)
            elif site == SITE_CKPT_IO:
                plan["io_errors"] = ((batch, io_errno),)
            elif site == SITE_TEAR_STATE:
                plan["torn_state"] = (batch,)
        return cls(**plan)  # type: ignore[arg-type]


#: The two load modes (SNIPPETS.md Snippet 3's ``StabilityPlan`` idiom).
_MODES = ("loops", "duration")


@dataclass(frozen=True)
class SoakPlan:
    """Frozen description of one soak's load shape and SLOs.

    ``mode="loops"`` replays the recorded stream ``loops`` times;
    ``mode="duration"`` keeps replaying until ``duration_s`` wall
    seconds have elapsed (always completing at least one full replay,
    so parity is always checkable).  ``rate`` caps ingest at roughly
    that many baskets per second (pacing is per checkpoint batch);
    ``None`` replays as fast as the hardware allows.

    The ``slo_*`` fields are enforced budgets over the per-batch score
    latency histogram (``serve.batch_s``): any measured quantile above
    its budget fails the run.  ``min_throughput`` is a floor on overall
    baskets/second.
    """

    mode: str = "loops"
    loops: int = 1
    duration_s: float = 0.0
    rate: float | None = None
    batch_size: int = 256
    n_shards: int = 1
    parallel: bool = False
    retries: int = 2
    shard_timeout_s: float | None = None
    slo_p50_ms: float | None = None
    slo_p95_ms: float | None = None
    slo_p99_ms: float | None = None
    min_throughput: float | None = None
    checkpoint_io_retries: int = field(default=2)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigError(
                f"soak mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.loops < 1:
            raise ConfigError(f"loops must be >= 1, got {self.loops}")
        if self.mode == "duration" and self.duration_s <= 0:
            raise ConfigError(
                f"duration mode needs duration_s > 0, got {self.duration_s}"
            )
        if self.rate is not None and self.rate <= 0:
            raise ConfigError(f"rate must be > 0 baskets/s, got {self.rate}")
        if self.batch_size < 1:
            raise ConfigError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ConfigError(
                f"shard_timeout_s must be > 0, got {self.shard_timeout_s}"
            )
        if self.checkpoint_io_retries < 0:
            raise ConfigError(
                f"checkpoint_io_retries must be >= 0, got "
                f"{self.checkpoint_io_retries}"
            )
        budgets = []
        for name in ("slo_p50_ms", "slo_p95_ms", "slo_p99_ms"):
            value = getattr(self, name)
            if value is None:
                continue
            if value <= 0:
                raise ConfigError(f"{name} must be > 0 ms, got {value}")
            budgets.append((name, value))
        for (lo_name, lo), (hi_name, hi) in zip(budgets, budgets[1:]):
            if lo > hi:
                raise ConfigError(
                    f"SLO budgets must be non-decreasing: {lo_name}={lo} > "
                    f"{hi_name}={hi}"
                )
        if self.min_throughput is not None and self.min_throughput <= 0:
            raise ConfigError(
                f"min_throughput must be > 0 baskets/s, got "
                f"{self.min_throughput}"
            )

    def slo_budgets_ms(self) -> dict[str, float]:
        """The set quantile budgets, keyed ``"p50"/"p95"/"p99"``."""
        budgets: dict[str, float] = {}
        for quantile, value in (
            ("p50", self.slo_p50_ms),
            ("p95", self.slo_p95_ms),
            ("p99", self.slo_p99_ms),
        ):
            if value is not None:
                budgets[quantile] = float(value)
        return budgets

    @classmethod
    def from_mapping(cls, raw: object) -> SoakPlan:
        """Normalise a loosely-typed mapping (CLI/JSON) into a plan.

        Unknown keys raise :class:`~repro.errors.ConfigError` naming the
        key; values are coerced to the field types, with the usual
        construction-time validation applying after.
        """
        if not isinstance(raw, dict):
            raise ConfigError(f"soak plan must be a mapping, got {raw!r}")
        known = {f.name for f in fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(
                f"unknown soak plan key(s): {', '.join(sorted(unknown))}"
            )
        coerced: dict[str, object] = {}
        for key, value in raw.items():
            if value is None:
                coerced[key] = None
            elif key == "mode":
                coerced[key] = str(value).strip().lower()
            elif key in ("loops", "batch_size", "n_shards", "retries",
                         "checkpoint_io_retries"):
                coerced[key] = int(value)
            elif key == "parallel":
                coerced[key] = bool(value)
            else:
                coerced[key] = float(value)
        return cls(**coerced)  # type: ignore[arg-type]
