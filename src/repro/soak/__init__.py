"""repro.soak — chaos/soak harness for the serving layer.

Replays recorded basket streams (:mod:`repro.synth.stream`) against
:mod:`repro.serve` under a frozen :class:`SoakPlan` (loops or wall-clock
duration, optional basket-rate cap, latency/throughput SLO budgets)
while a deterministic :class:`ChaosSchedule` — ``(batch, site)`` cells,
the serving-layer generalisation of
:class:`~repro.runtime.faults.FaultPlan`'s ``(shard, attempt)`` cells —
injects worker crashes, slow shards, kill/resume legs, torn checkpoint
files and transient checkpoint-I/O errors mid-soak.

After every fault the harness verifies the runbook invariants (resume
succeeds, rework stays within the per-site bound, cumulative counters
never regress) and after every loop it checks score-fingerprint parity
with the offline sweep.  Results — p50/p95/p99 per-batch score latency,
throughput, the fault ledger and SLO verdicts — are pinned as the
``soak`` scenario of ``BENCH_serve.json``.

Layout
------
:mod:`repro.soak.plan`
    :class:`SoakPlan` and :class:`ChaosSchedule` (validated, frozen).
:mod:`repro.soak.harness`
    :func:`run_soak` and the report dataclasses.
:mod:`repro.soak.bench`
    ``BENCH_serve.json`` writer and the human-readable renderer.
"""

from repro.soak.bench import (
    BENCH_SERVE_NAME,
    TELEMETRY_OVERHEAD_BUDGET_PCT,
    live_plane_overhead,
    render_soak,
    write_bench,
)
from repro.soak.harness import (
    FaultOutcome,
    LoopOutcome,
    SimulatedKill,
    SoakReport,
    run_soak,
    stream_shape,
)
from repro.soak.plan import (
    CHAOS_SITES,
    SITE_CKPT_IO,
    SITE_KILL_RESUME,
    SITE_SLOW_SHARD,
    SITE_TEAR_CURSOR,
    SITE_TEAR_STATE,
    SITE_WORKER_CRASH,
    ChaosCell,
    ChaosSchedule,
    SoakPlan,
)

__all__ = [
    "BENCH_SERVE_NAME",
    "TELEMETRY_OVERHEAD_BUDGET_PCT",
    "live_plane_overhead",
    "render_soak",
    "write_bench",
    "FaultOutcome",
    "LoopOutcome",
    "SimulatedKill",
    "SoakReport",
    "run_soak",
    "stream_shape",
    "CHAOS_SITES",
    "SITE_CKPT_IO",
    "SITE_KILL_RESUME",
    "SITE_SLOW_SHARD",
    "SITE_TEAR_CURSOR",
    "SITE_TEAR_STATE",
    "SITE_WORKER_CRASH",
    "ChaosCell",
    "ChaosSchedule",
    "SoakPlan",
]
