"""Pinning soak results: the ``BENCH_serve.json`` artifact.

The soak harness's measurements (latency quantiles, throughput, fault
ledger, SLO verdicts) are pinned the same way the scaling benches pin
theirs: a JSON artifact refreshed key-by-key through
:func:`repro.eval.benchmarking.merge_scaling_json`, so the ``soak``
scenario can be regenerated without discarding whatever other scenarios
later benches add to the same file.

:func:`live_plane_overhead` extends the PR-4 telemetry contract to the
live plane: one serve pass with the full publisher/window/flight stack
attached must stay **bit-identical** in scores to a bare pass and cost
less than the pinned overhead budget in hot-path time; the verdict
lands in the artifact's ``telemetry_plane`` scenario.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.errors import SoakError
from repro.eval.benchmarking import merge_scaling_json
from repro.obs import FlightRecorder, MetricsPublisher, MetricsRegistry, use_metrics
from repro.serve.loop import serve_stream
from repro.soak.harness import SoakReport

__all__ = [
    "BENCH_SERVE_NAME",
    "write_bench",
    "render_soak",
    "live_plane_overhead",
    "TELEMETRY_OVERHEAD_BUDGET_PCT",
]

#: The pinned hot-path budget for the live plane, in percent of bare
#: serve time — the same <3% contract PR 4 pinned for the base
#: telemetry spine.
TELEMETRY_OVERHEAD_BUDGET_PCT = 3.0

#: Canonical artifact name (committed at the repo root, refreshed by
#: ``make soak-smoke`` and uploaded by the CI ``soak-smoke`` job).
BENCH_SERVE_NAME = "BENCH_serve.json"


def write_bench(report: SoakReport, path: str | Path) -> dict:
    """Merge the report's ``soak`` scenario into the bench artifact.

    Returns the full merged payload (other top-level scenarios, if any,
    are preserved).
    """
    return merge_scaling_json(Path(path), {"soak": report.to_payload()})


def live_plane_overhead(
    stream_path: str | Path,
    *,
    batch_size: int = 64,
    repeats: int = 5,
    interval_s: float = 0.0,
    budget_pct: float = TELEMETRY_OVERHEAD_BUDGET_PCT,
) -> dict[str, object]:
    """Measure the live telemetry plane's cost on one serve pass.

    Serves ``stream_path`` to completion ``repeats`` times bare and
    ``repeats`` times with the full plane attached — a recording
    registry, a :class:`~repro.obs.export.MetricsPublisher` publishing
    every batch (``interval_s=0`` is the worst case: no tick is ever
    skipped), a JSONL stream sink and a flight recorder.  Scores must
    be bit-identical across the two modes; a fingerprint mismatch
    raises :class:`~repro.errors.SoakError` because that is a
    correctness bug, not a performance number.

    The overhead number is **not** a difference of whole-run wall
    clocks: on a shared box those carry ±5-10% of scheduler/throttle
    noise, far beyond the 3% budget being certified.  The plane's only
    hot-path addition is :meth:`~repro.obs.export.MetricsPublisher.
    tick` (plus two gauge sets inside it), and the publisher accrues
    exactly that time in ``tick_seconds`` — so the pinned overhead is
    ``tick_seconds / (wall - tick_seconds)``, minimised over repeats.
    The off-mode runs still serve two purposes: the fingerprint parity
    check and the reported ``off_s`` baseline.

    Returns the ``telemetry_plane`` scenario payload:
    ``{off_s, on_s, tick_s, overhead_pct, budget_pct, ok,
    fingerprint}``.
    """
    stream = Path(stream_path)
    scratch = Path(tempfile.mkdtemp(prefix="repro-plane-bench-"))
    off_times: list[float] = []
    on_times: list[float] = []
    overheads: list[float] = []
    tick_times: list[float] = []
    fingerprints: set[str] = set()
    try:
        # One untimed pass warms the page cache and import state; modes
        # interleave per repeat so drift hits both sides alike.
        serve_stream(stream, scratch / "warmup", batch_size=batch_size)
        for repeat in range(repeats):
            for mode in ("off", "on"):
                checkpoint_dir = scratch / f"{mode}-{repeat:02d}"
                publisher = None
                registry: MetricsRegistry | None = None
                if mode == "on":
                    registry = MetricsRegistry()
                    publisher = MetricsPublisher(
                        flight=FlightRecorder(checkpoint_dir / "flight"),
                        stream_path=checkpoint_dir / "metrics-stream.jsonl",
                        interval_s=interval_s,
                    )
                started = time.perf_counter()
                if registry is not None and publisher is not None:
                    with use_metrics(registry):
                        result = serve_stream(
                            stream,
                            checkpoint_dir,
                            batch_size=batch_size,
                            publisher=publisher,
                        )
                else:
                    result = serve_stream(
                        stream, checkpoint_dir, batch_size=batch_size
                    )
                elapsed = time.perf_counter() - started
                if publisher is not None:
                    on_times.append(elapsed)
                    tick_times.append(publisher.tick_seconds)
                    base = elapsed - publisher.tick_seconds
                    if base > 0:
                        overheads.append(
                            publisher.tick_seconds / base * 100.0
                        )
                else:
                    off_times.append(elapsed)
                fingerprints.add(result.fingerprint())
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    if len(fingerprints) != 1:
        raise SoakError(
            "live plane changed the served scores: "
            f"fingerprints {sorted(fingerprints)}"
        )
    overhead_pct = min(overheads) if overheads else 0.0
    return {
        "stream": str(stream),
        "batch_size": batch_size,
        "repeats": repeats,
        "off_s": min(off_times),
        "on_s": min(on_times),
        "tick_s": min(tick_times),
        "overhead_pct": overhead_pct,
        "budget_pct": budget_pct,
        "ok": overhead_pct < budget_pct,
        "fingerprint": next(iter(fingerprints)),
    }


def render_soak(report: SoakReport) -> str:
    """Human-readable one-screen summary of a soak report."""
    lines = [
        f"soak: {'PASSED' if report.passed else 'FAILED'}",
        f"  stream: {report.stream} ({report.stream_fingerprint})",
        f"  loops: {len(report.loops)} x {report.n_batches_per_loop} "
        f"batch(es) ({report.baskets_per_loop} baskets/loop), "
        f"{report.legs} leg(s)",
        f"  faults injected: {report.faults_injected}",
    ]
    for loop in report.loops:
        for fault in loop.faults:
            lines.append(
                f"    loop {loop.loop_index} batch {fault.batch} "
                f"{fault.site}: "
                f"{'injected' if fault.injected else 'MISSED'}, "
                f"rework={fault.rework_batches} — {fault.detail}"
            )
    lines.append(
        f"  latency ms: p50={report.latency_ms['p50']:.1f} "
        f"p95={report.latency_ms['p95']:.1f} "
        f"p99={report.latency_ms['p99']:.1f} "
        f"max={report.latency_ms['max']:.1f} "
        f"(n={int(report.latency_ms['count'])})"
    )
    lines.append(
        f"  throughput: {report.throughput_baskets_s:.1f} baskets/s "
        f"over {report.elapsed_s:.1f}s"
    )
    for name, verdict in report.slo.items():
        lines.append(
            f"  SLO {name}: {'ok' if verdict['ok'] else 'VIOLATED'} "
            f"({verdict})"
        )
    parity = all(loop.parity_ok for loop in report.loops)
    lines.append(
        f"  parity vs offline sweep: {'ok' if parity else 'BROKEN'} "
        f"({report.reference_fingerprint})"
    )
    for violation in report.violations:
        lines.append(f"  violation: {violation}")
    return "\n".join(lines)
