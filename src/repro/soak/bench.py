"""Pinning soak results: the ``BENCH_serve.json`` artifact.

The soak harness's measurements (latency quantiles, throughput, fault
ledger, SLO verdicts) are pinned the same way the scaling benches pin
theirs: a JSON artifact refreshed key-by-key through
:func:`repro.eval.benchmarking.merge_scaling_json`, so the ``soak``
scenario can be regenerated without discarding whatever other scenarios
later benches add to the same file.
"""

from __future__ import annotations

from pathlib import Path

from repro.eval.benchmarking import merge_scaling_json
from repro.soak.harness import SoakReport

__all__ = ["BENCH_SERVE_NAME", "write_bench", "render_soak"]

#: Canonical artifact name (committed at the repo root, refreshed by
#: ``make soak-smoke`` and uploaded by the CI ``soak-smoke`` job).
BENCH_SERVE_NAME = "BENCH_serve.json"


def write_bench(report: SoakReport, path: str | Path) -> dict:
    """Merge the report's ``soak`` scenario into the bench artifact.

    Returns the full merged payload (other top-level scenarios, if any,
    are preserved).
    """
    return merge_scaling_json(Path(path), {"soak": report.to_payload()})


def render_soak(report: SoakReport) -> str:
    """Human-readable one-screen summary of a soak report."""
    lines = [
        f"soak: {'PASSED' if report.passed else 'FAILED'}",
        f"  stream: {report.stream} ({report.stream_fingerprint})",
        f"  loops: {len(report.loops)} x {report.n_batches_per_loop} "
        f"batch(es) ({report.baskets_per_loop} baskets/loop), "
        f"{report.legs} leg(s)",
        f"  faults injected: {report.faults_injected}",
    ]
    for loop in report.loops:
        for fault in loop.faults:
            lines.append(
                f"    loop {loop.loop_index} batch {fault.batch} "
                f"{fault.site}: "
                f"{'injected' if fault.injected else 'MISSED'}, "
                f"rework={fault.rework_batches} — {fault.detail}"
            )
    lines.append(
        f"  latency ms: p50={report.latency_ms['p50']:.1f} "
        f"p95={report.latency_ms['p95']:.1f} "
        f"p99={report.latency_ms['p99']:.1f} "
        f"max={report.latency_ms['max']:.1f} "
        f"(n={int(report.latency_ms['count'])})"
    )
    lines.append(
        f"  throughput: {report.throughput_baskets_s:.1f} baskets/s "
        f"over {report.elapsed_s:.1f}s"
    )
    for name, verdict in report.slo.items():
        lines.append(
            f"  SLO {name}: {'ok' if verdict['ok'] else 'VIOLATED'} "
            f"({verdict})"
        )
    parity = all(loop.parity_ok for loop in report.loops)
    lines.append(
        f"  parity vs offline sweep: {'ok' if parity else 'BROKEN'} "
        f"({report.reference_fingerprint})"
    )
    for violation in report.violations:
        lines.append(f"  violation: {violation}")
    return "\n".join(lines)
