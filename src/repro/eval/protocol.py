"""The evaluation protocol shared by Figure 1 and the ablations.

Section 3.1 of the paper: at each evaluation window, both models produce a
churn score per customer; the AUROC of those scores against the
loyal/churner cohort labels measures discrimination ability.  The paper
plots AUROC against "number of months" from month 12 to month 24 with
2-month windows — i.e. at every window whose end falls in that range.

:class:`EvaluationProtocol` fixes the window grid, the evaluation months
and the customer split, and evaluates any scorer implementing the small
``churn_scores`` duck type.

The protocol is a :class:`~repro.data.population.PopulationFrame`
consumer: the bundle's log is encoded into columnar form **once**
(:meth:`EvaluationProtocol.frame`) and every frame-aware scorer
(``supports_frame = True``) is fed that frame instead of the raw log, so
a full ROC sweep re-derives no per-customer windowed dictionaries.

With a ``checkpoint_dir`` the protocol is also *resumable*: every
finished ``(scorer, month, config)`` cell is journaled atomically
through a :class:`~repro.runtime.checkpoint.CheckpointJournal`, so a
killed sweep restarted against the same directory skips straight past
completed cells (including the per-window scorer refits they imply).
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol

import numpy as np

from repro.config import ExperimentConfig
from repro.data.cohorts import CohortLabels
from repro.data.population import PopulationFrame
from repro.data.validation import DatasetBundle
from repro.errors import ConfigError, EvaluationError
from repro.ml.metrics import auroc
from repro.obs import metrics as obs_metrics
from repro.obs import span
from repro.obs.progress import progress
from repro.runtime.checkpoint import CheckpointJournal, ids_digest

__all__ = [
    "MonthScore",
    "ScoreSeries",
    "EvaluationProtocol",
    "GridScorer",
    "WindowScorer",
    "StabilityScorer",
    "RuleScorer",
]

logger = logging.getLogger(__name__)


class GridScorer(Protocol):
    """The window-grid duck type every evaluated scorer shares."""

    @property
    def n_windows(self) -> int: ...

    def window_month(self, window_index: int) -> int: ...


class WindowScorer(GridScorer, Protocol):
    """A trainable per-window scorer (the RFM/behavioral family):
    re-fitted per evaluation window on the train split, scored on test.
    ``log`` is the raw transaction log or the shared frame, depending
    on ``supports_frame``."""

    def fit(
        self,
        log: object,
        cohorts: CohortLabels,
        window_index: int,
        customers: Sequence[int],
    ) -> object: ...

    def churn_scores(
        self, log: object, customers: Sequence[int], window_index: int
    ) -> dict[int, float]: ...


class StabilityScorer(GridScorer, Protocol):
    """A fitted stability-style model: scores straight off its state."""

    def churn_scores(
        self, window_index: int, customers: Sequence[int]
    ) -> dict[int, float]: ...


class RuleScorer(Protocol):
    """An untrained rule baseline (no fit, no grid of its own)."""

    def churn_scores(
        self, log: object, customers: Sequence[int], window_index: int
    ) -> dict[int, float]: ...


@dataclass(frozen=True, slots=True)
class MonthScore:
    """AUROC of one scorer at one evaluation month."""

    month: int
    window_index: int
    auroc: float


@dataclass(frozen=True)
class ScoreSeries:
    """AUROC series of one scorer across the evaluation months."""

    name: str
    points: tuple[MonthScore, ...]

    def months(self) -> list[int]:
        return [p.month for p in self.points]

    def values(self) -> list[float]:
        return [p.auroc for p in self.points]

    def at_month(self, month: int) -> float:
        """AUROC at a specific month.

        Raises
        ------
        EvaluationError
            If the series has no point at that month.
        """
        for point in self.points:
            if point.month == month:
                return point.auroc
        raise EvaluationError(f"series {self.name!r} has no point at month {month}")


class EvaluationProtocol:
    """Month-indexed AUROC evaluation of churn scorers.

    Parameters
    ----------
    bundle:
        The dataset (log, calendar, cohorts) under evaluation.
    window_months:
        Span of the shared evaluation windows (paper: 2).  Deprecated in
        favour of ``config``.
    first_month, last_month:
        Inclusive month range of the x axis (paper: 12 to 24).  Only
        windows whose *end* month falls inside the range are evaluated.
        Deprecated in favour of ``config``.
    config:
        The shared :class:`~repro.config.ExperimentConfig`; its
        ``window_months`` / ``first_month`` / ``last_month`` fields are
        validated once and drive the whole evaluation.
    frame:
        Optional pre-built :class:`~repro.data.population.PopulationFrame`
        (e.g. a memory-mapped slab-backed frame) used instead of lazily
        encoding ``bundle.log``; its grid must match the config's.
    checkpoint_dir:
        Optional journal directory making the evaluation resumable:
        each finished ``(scorer, month, config)`` AUROC cell is written
        atomically the moment it completes, and a rerun against the
        same directory skips finished cells without recomputation.
    """

    def __init__(
        self,
        bundle: DatasetBundle,
        window_months: int = 2,
        first_month: int = 12,
        last_month: int = 24,
        config: ExperimentConfig | None = None,
        checkpoint_dir: str | Path | None = None,
        frame: PopulationFrame | None = None,
    ) -> None:
        if config is None:
            config = ExperimentConfig(
                window_months=window_months,
                first_month=first_month,
                last_month=last_month,
            )
        self.config = config
        self.bundle = bundle
        self.window_months = config.window_months
        self.first_month = config.first_month
        self.last_month = config.last_month
        self.checkpoint_dir = checkpoint_dir
        self._journal: CheckpointJournal | None = None
        if frame is not None and frame.grid != config.grid(bundle.calendar):
            raise ConfigError(
                "injected frame's grid does not match the protocol's "
                "config; build it with the same ExperimentConfig"
            )
        self._frame: PopulationFrame | None = frame

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def journal(self) -> CheckpointJournal | None:
        """The cell journal (``None`` without a ``checkpoint_dir``)."""
        if self.checkpoint_dir is None:
            return None
        if self._journal is None:
            self._journal = CheckpointJournal(
                self.checkpoint_dir, schema="eval-protocol"
            )
        return self._journal

    def _config_tag(self) -> str:
        """Cell-key component pinning the evaluated configuration *and*
        dataset, so a journal directory reused with different knobs — or
        against a differently-seeded/sized bundle — never aliases."""
        c = self.config
        return (
            f"w{c.window_months}_a{c.alpha:g}_{c.backend}_{c.counting}_"
            f"m{c.first_month}-{c.last_month}_d{self.bundle.fingerprint()}"
        )

    def _cell(
        self, name: str, month: int, split: str, compute: Callable[[], float]
    ) -> float:
        """One journaled AUROC cell: load when finished, else compute
        and persist atomically before returning.

        ``split`` is an :func:`~repro.runtime.checkpoint.ids_digest` of
        the customer sets the cell is computed on, so a different
        train/test split (seed, fraction) or cohort selection maps to a
        different cell instead of replaying a stale one.
        """
        metrics = obs_metrics.get_metrics()
        journal = self.journal()
        with span("eval.cell", scorer=name, month=month):
            if journal is None:
                metrics.counter(obs_metrics.CELLS_COMPUTED).inc()
                return compute()
            key = (name, f"month={month}", f"ids={split}", self._config_tag())
            misses = journal.misses
            value = float(journal.get_or_compute(key, lambda: float(compute())))
        if journal.misses > misses:
            metrics.counter(obs_metrics.CELLS_COMPUTED).inc()
        else:
            metrics.counter(obs_metrics.CELLS_REPLAYED).inc()
        return value

    def log_resume_summary(self) -> None:
        """Log one line of journal traffic (no-op without a journal).

        E.g. ``"eval-protocol journal: replayed 84 cell(s), computed
        36"`` — emitted at INFO by the sweeps (figure1, ablations, the
        campaign) once their cells are done.
        """
        journal = self._journal
        if journal is not None and (journal.hits or journal.misses or journal.invalid):
            logger.info("%s journal: %s", journal.schema, journal.resume_summary())

    def frame(self) -> PopulationFrame:
        """The bundle's columnar frame on the protocol's grid.

        Built lazily on first use and cached: every frame-aware scorer
        in the evaluation shares this one encoding of the log.
        """
        if self._frame is None:
            grid = self.config.grid(self.bundle.calendar)
            self._frame = PopulationFrame.from_log(self.bundle.log, grid)
        return self._frame

    def _scorer_source(self, scorer: object) -> PopulationFrame | object:
        """What to feed a scorer: the shared frame when it understands
        frames, the raw log otherwise (legacy duck type)."""
        if getattr(scorer, "supports_frame", False):
            return self.frame()
        return self.bundle.log

    # ------------------------------------------------------------------
    def evaluation_windows(self, scorer: GridScorer) -> list[tuple[int, int]]:
        """``(window_index, end_month)`` pairs inside the month range.

        ``scorer`` must expose ``n_windows`` and ``window_month`` (both
        the stability and RFM models share one grid shape, but the
        protocol asks the scorer so mismatched grids fail loudly).
        """
        pairs = [
            (k, scorer.window_month(k))
            for k in range(scorer.n_windows)
            if self.first_month <= scorer.window_month(k) <= self.last_month
        ]
        if not pairs:
            raise EvaluationError(
                f"no evaluation window ends within months "
                f"[{self.first_month}, {self.last_month}]"
            )
        return pairs

    def auroc_of_scores(
        self, scores: dict[int, float], customers: Sequence[int] | None = None
    ) -> float:
        """AUROC of a score dict against the bundle's cohort labels."""
        cohorts: CohortLabels = self.bundle.cohorts
        ids = sorted(scores) if customers is None else list(customers)
        y_true = cohorts.label_vector(ids)
        y_score = np.asarray([scores[c] for c in ids], dtype=np.float64)
        return auroc(y_true, y_score)

    def evaluate_stability_model(
        self, model: StabilityScorer, customers: Iterable[int] | None = None
    ) -> ScoreSeries:
        """AUROC series of a fitted :class:`~repro.core.model.StabilityModel`."""
        ids = (
            sorted(customers)
            if customers is not None
            else self.bundle.cohorts.all_customers()
        )
        split = ids_digest(ids)
        windows = self.evaluation_windows(model)
        points = []
        with progress(len(windows), "eval stability", log=logger) as reporter:
            for window_index, month in windows:
                value = self._cell(
                    "stability",
                    month,
                    split,
                    lambda k=window_index: self.auroc_of_scores(
                        model.churn_scores(k, ids), ids
                    ),
                )
                points.append(
                    MonthScore(month=month, window_index=window_index, auroc=value)
                )
                reporter.advance(key=f"month={month}")
        return ScoreSeries(name="stability", points=tuple(points))

    def evaluate_window_scorer(
        self,
        scorer: WindowScorer,
        name: str,
        train_customers: Sequence[int],
        test_customers: Sequence[int],
    ) -> ScoreSeries:
        """AUROC series of a trainable per-window scorer (e.g. the RFM model).

        The scorer must expose ``fit(log, cohorts, window_index, customers)``
        and ``churn_scores(log, customers, window_index)`` plus the grid
        duck type; it is re-fitted at every evaluation window on
        ``train_customers`` and scored on ``test_customers``.  A scorer
        with ``supports_frame = True`` receives the protocol's shared
        :class:`~repro.data.population.PopulationFrame` instead of the
        raw log.
        """
        log = self._scorer_source(scorer)
        cohorts = self.bundle.cohorts

        def fit_and_score(window_index: int) -> float:
            scorer.fit(log, cohorts, window_index, train_customers)
            scores = scorer.churn_scores(log, test_customers, window_index)
            return self.auroc_of_scores(scores, list(test_customers))

        split = ids_digest(train_customers, test_customers)
        windows = self.evaluation_windows(scorer)
        points = []
        with progress(len(windows), f"eval {name}", log=logger) as reporter:
            for window_index, month in windows:
                # A journaled cell skips the whole refit, not just the AUROC.
                value = self._cell(
                    name, month, split, lambda k=window_index: fit_and_score(k)
                )
                points.append(
                    MonthScore(month=month, window_index=window_index, auroc=value)
                )
                reporter.advance(key=f"month={month}")
        return ScoreSeries(name=name, points=tuple(points))

    def evaluate_rule(
        self, rule: RuleScorer, name: str, customers: Sequence[int] | None = None
    ) -> ScoreSeries:
        """AUROC series of an untrained rule baseline.

        The rule must expose ``churn_scores(log, customers, window_index)``;
        the window axis is taken from the protocol's own grid (rules carry
        a grid but no ``window_month``).
        """
        from repro.core.windowing import WindowGrid  # local: avoid cycle at import

        grid = WindowGrid.monthly(self.bundle.calendar, self.window_months)
        ids = (
            list(customers)
            if customers is not None
            else self.bundle.cohorts.all_customers()
        )
        source = self._scorer_source(rule)
        split = ids_digest(ids)
        months = [
            (k, grid.end_month(k, self.bundle.calendar))
            for k in range(grid.n_windows)
            if self.first_month
            <= grid.end_month(k, self.bundle.calendar)
            <= self.last_month
        ]
        points = []
        with progress(len(months), f"eval {name}", log=logger) as reporter:
            for window_index, month in months:
                value = self._cell(
                    name,
                    month,
                    split,
                    lambda k=window_index: self.auroc_of_scores(
                        rule.churn_scores(source, ids, k), ids
                    ),
                )
                points.append(
                    MonthScore(month=month, window_index=window_index, auroc=value)
                )
                reporter.advance(key=f"month={month}")
        if not points:
            raise EvaluationError(
                f"no evaluation window ends within months "
                f"[{self.first_month}, {self.last_month}]"
            )
        return ScoreSeries(name=name, points=tuple(points))

    def train_test_split(
        self, test_fraction: float = 0.5, seed: int = 0
    ) -> tuple[list[int], list[int]]:
        """Stratified customer split for trainable scorers.

        Keeps the loyal/churner ratio identical on both sides so AUROC is
        defined everywhere.
        """
        if not 0.0 < test_fraction < 1.0:
            raise ConfigError(f"test_fraction must be in (0, 1), got {test_fraction}")
        rng = np.random.default_rng(seed)
        cohorts = self.bundle.cohorts
        train: list[int] = []
        test: list[int] = []
        for group in (sorted(cohorts.loyal), sorted(cohorts.churners)):
            indices = np.asarray(group)
            rng.shuffle(indices)
            cut = int(round(len(indices) * test_fraction))
            cut = min(max(cut, 1), len(indices) - 1)
            test.extend(int(c) for c in indices[:cut])
            train.extend(int(c) for c in indices[cut:])
        return sorted(train), sorted(test)
