"""Forward-looking evaluation: predicting *future* defection.

The paper's abstract claims the model "is able to identify customers that
are likely to defect in the future months".  This module backtests that
claim with the trend forecaster (:mod:`repro.core.trend`):

* at a forecast window (e.g. the window ending at month 20), fit each
  customer's recent stability trend using **only data up to that window**;
* score customers by predicted risk (imminence of the threshold
  crossing, falling back to the trend slope);
* evaluate the ranking against the churner labels — and, more stringently,
  against *actual future crossings* of the threshold in the remaining
  windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import StabilityModel
from repro.core.trend import TrendForecast, forecast_stability
from repro.data.validation import DatasetBundle
from repro.errors import EvaluationError
from repro.ml.metrics import auroc

__all__ = ["ForecastEvaluation", "evaluate_forecasts"]


def _risk_score(forecast: TrendForecast, max_windows: float = 20.0) -> float:
    """Continuous risk in [0, 1]: sooner predicted crossing = higher risk.

    Customers with no predicted crossing get a small residual risk
    proportional to how steeply they decline (0 when flat or rising).
    """
    if forecast.windows_to_threshold is not None:
        imminence = 1.0 - min(forecast.windows_to_threshold, max_windows) / max_windows
        return 0.5 + 0.5 * imminence  # crossing predicted: risk in [0.5, 1]
    return float(np.clip(-forecast.slope * 2.0, 0.0, 0.45))


@dataclass(frozen=True)
class ForecastEvaluation:
    """Backtest of the trend forecaster at one forecast month."""

    forecast_month: int
    auroc_vs_labels: float
    auroc_vs_future_crossing: float
    n_customers: int
    n_future_crossers: int


def evaluate_forecasts(
    bundle: DatasetBundle,
    forecast_month: int = 20,
    beta: float = 0.5,
    lookback: int = 4,
    window_months: int = 2,
    alpha: float = 2.0,
) -> ForecastEvaluation:
    """Backtest trend forecasts made at ``forecast_month``.

    ``auroc_vs_labels`` scores the risk ranking against the cohort
    labels; ``auroc_vs_future_crossing`` scores it against the customers
    whose stability *actually* reached ``beta`` in a later window — the
    strictly forward-looking target.
    """
    customers = bundle.cohorts.all_customers()
    model = StabilityModel(
        bundle.calendar, window_months=window_months, alpha=alpha
    ).fit(bundle.log, customers)
    forecast_window = next(
        (
            k
            for k in range(model.n_windows)
            if model.window_month(k) == forecast_month
        ),
        None,
    )
    if forecast_window is None:
        raise EvaluationError(
            f"no {window_months}-month window ends at month {forecast_month}"
        )

    risks: dict[int, float] = {}
    future_cross: dict[int, int] = {}
    for customer in customers:
        trajectory = model.trajectory(customer)
        forecast = forecast_stability(
            trajectory, beta=beta, lookback=lookback, upto_window=forecast_window
        )
        risks[customer] = _risk_score(forecast)
        crossed = any(
            record.defined and record.stability <= beta
            for record in trajectory.records
            if record.window.index > forecast_window
        )
        future_cross[customer] = int(crossed)

    y_labels = bundle.cohorts.label_vector(customers)
    y_future = np.asarray([future_cross[c] for c in customers])
    scores = np.asarray([risks[c] for c in customers])
    if y_future.min() == y_future.max():
        raise EvaluationError(
            "future-crossing target is single-class; pick a different beta"
        )
    return ForecastEvaluation(
        forecast_month=forecast_month,
        auroc_vs_labels=auroc(y_labels, scores),
        auroc_vs_future_crossing=auroc(y_future, scores),
        n_customers=len(customers),
        n_future_crossers=int(y_future.sum()),
    )
