"""Detection-delay analysis.

The paper claims the stability model's "identification takes place in the
first months of the customer defection" (Section 3.1).  This module
quantifies that: at an operating threshold ``beta`` calibrated to a target
false-alarm rate on the loyal cohort, how many months after each churner's
ground-truth onset does the first alarm fire?

Outputs the delay distribution (median / mean / per-customer), the recall
(churners ever detected) and the realised false-alarm rate — the numbers a
retailer needs to size a retention programme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detector import ThresholdDetector
from repro.core.model import StabilityModel
from repro.data.validation import DatasetBundle
from repro.errors import ConfigError, EvaluationError

__all__ = ["DelayAnalysis", "calibrate_beta", "detection_delay"]


@dataclass(frozen=True)
class DelayAnalysis:
    """Detection-delay statistics at one operating point."""

    beta: float
    target_false_alarm_rate: float
    realised_false_alarm_rate: float
    recall: float
    delays_months: dict[int, float]  # churner -> months from onset to alarm
    median_delay_months: float
    mean_delay_months: float

    @property
    def n_detected(self) -> int:
        return len(self.delays_months)


def calibrate_beta(
    model: StabilityModel,
    loyal_customers: list[int],
    target_false_alarm_rate: float,
    first_month: int = 12,
) -> float:
    """Largest ``beta`` whose loyal false-alarm rate stays at the target.

    Sweeps the candidate thresholds implied by the loyal cohort's own
    post-burn-in stability values (any beta between two consecutive values
    behaves identically), and returns the most sensitive threshold that
    keeps the fraction of loyal customers ever alarmed at or below
    ``target_false_alarm_rate``.

    Caveat: the paper's decision rule alarms at ``stability <= beta``, so
    a loyal customer with a zero-stability window (an empty 2-month
    window) alarms even at ``beta = 0`` — a target rate of exactly 0 is
    then infeasible and the realised rate will reflect those customers.
    """
    if not 0.0 <= target_false_alarm_rate < 1.0:
        raise ConfigError(
            f"target_false_alarm_rate must be in [0, 1), got {target_false_alarm_rate}"
        )
    if not loyal_customers:
        raise EvaluationError("calibration needs at least one loyal customer")
    # A loyal customer alarms at beta >= their minimum stability; the
    # false-alarm rate at beta is the fraction of minima <= beta.
    minima = []
    first_window = next(
        (k for k in range(model.n_windows) if model.window_month(k) >= first_month),
        model.n_windows,
    )
    for customer in loyal_customers:
        values = [
            record.stability
            for record in model.trajectory(customer).records
            if record.window.index >= first_window and record.defined
        ]
        minima.append(min(values) if values else 1.0)
    minima_sorted = sorted(minima)
    budget = int(np.floor(target_false_alarm_rate * len(minima)))
    if budget == 0:
        # No false alarms allowed: beta must sit strictly below every minimum.
        return max(0.0, minima_sorted[0] - 1e-9)
    return max(0.0, minima_sorted[budget] - 1e-9)


def detection_delay(
    bundle: DatasetBundle,
    window_months: int = 2,
    alpha: float = 2.0,
    target_false_alarm_rate: float = 0.05,
    first_month: int = 12,
) -> DelayAnalysis:
    """Run the full delay analysis on a dataset bundle."""
    cohorts = bundle.cohorts
    loyal = sorted(cohorts.loyal)
    churners = sorted(cohorts.churners)
    model = StabilityModel(
        bundle.calendar, window_months=window_months, alpha=alpha
    ).fit(bundle.log, loyal + churners)

    beta = calibrate_beta(
        model, loyal, target_false_alarm_rate, first_month=first_month
    )
    detector = ThresholdDetector(beta)
    first_window = next(
        (k for k in range(model.n_windows) if model.window_month(k) >= first_month),
        model.n_windows,
    )

    false_alarms = sum(
        1
        for customer in loyal
        if detector.first_alarm(model.trajectory(customer), first_window) is not None
    )

    delays: dict[int, float] = {}
    for customer in churners:
        alarm = detector.first_alarm(model.trajectory(customer), first_window)
        if alarm is None:
            continue
        onset = cohorts.onset_of(customer)
        alarm_month = model.window_month(alarm.window_index)
        delays[customer] = float(alarm_month - onset)

    delay_values = list(delays.values())
    return DelayAnalysis(
        beta=beta,
        target_false_alarm_rate=target_false_alarm_rate,
        realised_false_alarm_rate=false_alarms / len(loyal) if loyal else 0.0,
        recall=len(delays) / len(churners) if churners else 0.0,
        delays_months=delays,
        median_delay_months=float(np.median(delay_values)) if delay_values else float("nan"),
        mean_delay_months=float(np.mean(delay_values)) if delay_values else float("nan"),
    )
