"""Evaluation harness reproducing the paper's experiments.

* E1 / Figure 1 — :mod:`repro.eval.figure1`
* E2 / Figure 2 — :mod:`repro.eval.figure2`
* E3 / dataset statistics — :mod:`repro.eval.tables`
* A1-A3 ablations — :mod:`repro.eval.ablations`
* shared protocol — :mod:`repro.eval.protocol`
* text rendering — :mod:`repro.eval.reporting`
"""

from repro.eval.ablations import (
    AblationPoint,
    ExplanationQuality,
    alpha_sweep,
    explanation_quality,
    significance_function_sweep,
    window_sweep,
)
from repro.eval.benchmarking import (
    render_scaling,
    scaling_telemetry,
    time_fit,
    write_scaling_json,
)
from repro.eval.campaign import CampaignComparison, CampaignPoint, compare_models
from repro.eval.customer_report import (
    CustomerReport,
    build_customer_report,
    render_customer_report,
)
from repro.eval.delay import DelayAnalysis, calibrate_beta, detection_delay
from repro.eval.figure1 import Figure1Result, run_figure1
from repro.eval.forecasting import ForecastEvaluation, evaluate_forecasts
from repro.eval.figure2 import Figure2Result, run_figure2
from repro.eval.power import PowerAnalysis, PowerPoint, power_analysis
from repro.eval.protocol import EvaluationProtocol, MonthScore, ScoreSeries
from repro.eval.robustness import (
    MechanismResult,
    VacationPoint,
    mechanism_crossover,
    vacation_sensitivity,
)
from repro.eval.reporting import (
    format_table,
    render_ablation,
    render_campaign,
    render_dataset_stats,
    render_delay,
    render_explanation_quality,
    render_figure1,
    render_figure2,
    render_mechanisms,
    render_variance,
)
from repro.eval.tables import DatasetStats, dataset_stats
from repro.eval.variance import VarianceSummary, figure1_variance

__all__ = [
    "AblationPoint",
    "CampaignComparison",
    "CampaignPoint",
    "CustomerReport",
    "DatasetStats",
    "build_customer_report",
    "render_customer_report",
    "DelayAnalysis",
    "MechanismResult",
    "PowerAnalysis",
    "PowerPoint",
    "VacationPoint",
    "VarianceSummary",
    "power_analysis",
    "figure1_variance",
    "calibrate_beta",
    "compare_models",
    "render_scaling",
    "scaling_telemetry",
    "time_fit",
    "write_scaling_json",
    "detection_delay",
    "mechanism_crossover",
    "vacation_sensitivity",
    "EvaluationProtocol",
    "ExplanationQuality",
    "Figure1Result",
    "Figure2Result",
    "ForecastEvaluation",
    "evaluate_forecasts",
    "MonthScore",
    "ScoreSeries",
    "alpha_sweep",
    "dataset_stats",
    "explanation_quality",
    "format_table",
    "render_ablation",
    "render_campaign",
    "render_dataset_stats",
    "render_delay",
    "render_explanation_quality",
    "render_figure1",
    "render_figure2",
    "render_mechanisms",
    "render_variance",
    "run_figure1",
    "run_figure2",
    "significance_function_sweep",
    "window_sweep",
]
