"""Experiment E1 — Figure 1: attrition-detection AUROC over time.

Reproduces the paper's Figure 1: the AUROC of the stability model and of
the RFM model at every 2-month window whose end falls between month 12 and
month 24, on a population of loyal customers and customers defecting from
month 18.  The paper reports ~0.79 AUROC for the stability model two
months after the onset and "similar performances" for RFM.

The stability model is unsupervised (no trainable parameters), so it is
scored on the full test population; the RFM model is trained on a
disjoint, stratified training split at each window.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.rfm import RFMModel
from repro.config import ExperimentConfig
from repro.core.model import StabilityModel
from repro.data.validation import DatasetBundle
from repro.eval.protocol import EvaluationProtocol, ScoreSeries
from repro.runtime.executor import ExecutionReport

__all__ = ["Figure1Result", "run_figure1"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class Figure1Result:
    """The two AUROC curves of Figure 1 plus the experiment's metadata.

    ``execution`` carries the resilient executor's report for sharded
    stability fits (``None`` for serial fits).
    """

    stability: ScoreSeries
    rfm: ScoreSeries
    onset_month: int
    window_months: int
    alpha: float
    execution: ExecutionReport | None = field(default=None, compare=False)

    def months(self) -> list[int]:
        return self.stability.months()

    def rows(self) -> list[tuple[int, float, float]]:
        """``(month, stability_auroc, rfm_auroc)`` rows for reporting."""
        rfm_by_month = {p.month: p.auroc for p in self.rfm.points}
        return [
            (p.month, p.auroc, rfm_by_month[p.month])
            for p in self.stability.points
            if p.month in rfm_by_month
        ]


def run_figure1(
    bundle: DatasetBundle,
    window_months: int = 2,
    alpha: float = 2.0,
    first_month: int = 12,
    last_month: int = 24,
    test_fraction: float = 0.5,
    seed: int = 0,
    config: ExperimentConfig | None = None,
    checkpoint_dir: str | Path | None = None,
) -> Figure1Result:
    """Run the Figure 1 experiment on a dataset bundle.

    Parameters mirror the paper: ``window_months=2`` and ``alpha=2`` are
    the values its 5-fold CV selected; ``first_month``/``last_month``
    bound the x axis (all folded into an :class:`ExperimentConfig` when
    ``config`` is not given; the default backend is ``batch``, which is
    bit-identical to the incremental reference).  ``test_fraction``
    controls the stratified split the RFM model is trained/evaluated
    across; the stability model is evaluated on the same test customers
    so both curves measure the same population.

    The bundle's log is encoded into one
    :class:`~repro.data.population.PopulationFrame` shared by the
    stability fit and every per-window RFM refit.  With a
    ``checkpoint_dir`` every finished (scorer, month) AUROC cell is
    journaled atomically, so a killed run restarted against the same
    directory resumes without recomputing finished cells (including the
    per-window RFM refits).
    """
    if config is None:
        config = ExperimentConfig(
            window_months=window_months,
            alpha=alpha,
            first_month=first_month,
            last_month=last_month,
            backend="batch",
        )
    protocol = EvaluationProtocol(
        bundle, config=config, checkpoint_dir=checkpoint_dir
    )
    train_ids, test_ids = protocol.train_test_split(
        test_fraction=test_fraction, seed=seed
    )

    stability_model = StabilityModel.from_config(bundle.calendar, config).fit(
        protocol.frame()
    )
    execution = stability_model.execution_report
    if execution is not None:
        logger.info("stability fit: %s", execution.summary())
    stability_series = protocol.evaluate_stability_model(stability_model, test_ids)

    rfm_model = RFMModel(bundle.calendar, config=config)
    rfm_series = protocol.evaluate_window_scorer(rfm_model, "rfm", train_ids, test_ids)
    protocol.log_resume_summary()

    return Figure1Result(
        stability=stability_series,
        rfm=rfm_series,
        onset_month=bundle.cohorts.onset_month,
        window_months=config.window_months,
        alpha=config.alpha,
        execution=execution,
    )
