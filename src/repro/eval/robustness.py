"""Robustness studies: churn mechanisms and vacation gaps.

Two questions the paper's single-dataset evaluation cannot answer, but a
synthetic substrate can:

1. **Mechanism crossover** (:func:`mechanism_crossover`) — the stability
   model reads basket *content*; RFM reads shopping *volume*.  When churn
   is pure item loss, stability should dominate; when churn is pure
   trip-rate decay (same repertoire, fewer trips), RFM should catch up or
   win.  The study runs both models on each mechanism preset and reports
   the AUROC grid — locating the crossover the Figure 1 comparison hints
   at.
2. **Vacation sensitivity** (:func:`vacation_sensitivity`) — a loyal
   customer on a long holiday produces an empty window, which any
   windowed model reads as defection.  The study sweeps the fraction of
   vacationing customers and measures AUROC degradation and the loyal
   false-alarm rate at a fixed beta.
"""

from __future__ import annotations

import logging
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.baselines.rfm import RFMModel
from repro.config import ExperimentConfig
from repro.core.detector import ThresholdDetector
from repro.core.model import StabilityModel
from repro.eval.protocol import EvaluationProtocol
from repro.obs import span
from repro.obs.progress import progress
from repro.runtime.checkpoint import CheckpointJournal
from repro.synth.generator import ScenarioConfig, generate_dataset
from repro.synth.scenarios import ATTRITION_MECHANISMS, mechanism_scenario

__all__ = [
    "MechanismResult",
    "mechanism_crossover",
    "VacationPoint",
    "vacation_sensitivity",
]

logger = logging.getLogger(__name__)


def _log_resume_summary(journal: CheckpointJournal | None) -> None:
    if journal is not None and (journal.hits or journal.misses or journal.invalid):
        logger.info("%s journal: %s", journal.schema, journal.resume_summary())


@dataclass(frozen=True)
class MechanismResult:
    """AUROC of both models under one churn mechanism."""

    mechanism: str
    stability_auroc: dict[int, float]  # month -> auroc
    rfm_auroc: dict[int, float]

    def stability_wins_at(self, month: int) -> bool:
        return self.stability_auroc[month] > self.rfm_auroc[month]


def mechanism_crossover(
    n_loyal: int = 100,
    n_churners: int = 100,
    months: Sequence[int] = (20, 22, 24),
    window_months: int = 2,
    alpha: float = 2.0,
    seed: int = 7,
    checkpoint_dir: str | Path | None = None,
) -> list[MechanismResult]:
    """Run stability vs RFM on every churn-mechanism preset.

    With a ``checkpoint_dir`` each finished mechanism is journaled as one
    cell; a rerun against the same directory skips that mechanism's
    dataset generation and both fits entirely.
    """
    journal = (
        CheckpointJournal(checkpoint_dir, schema="robustness")
        if checkpoint_dir is not None
        else None
    )

    def run_mechanism(mechanism: str) -> dict:
        dataset = mechanism_scenario(
            mechanism, n_loyal=n_loyal, n_churners=n_churners, seed=seed
        )
        config = ExperimentConfig(
            window_months=window_months,
            alpha=alpha,
            first_month=min(months),
            last_month=max(months),
            backend="batch",
        )
        protocol = EvaluationProtocol(dataset.bundle, config=config)
        train, test = protocol.train_test_split(seed=seed)
        stability = StabilityModel.from_config(dataset.calendar, config).fit(
            protocol.frame()
        )
        stability_series = protocol.evaluate_stability_model(stability, test)
        rfm = RFMModel(dataset.calendar, config=config)
        rfm_series = protocol.evaluate_window_scorer(rfm, "rfm", train, test)
        # month -> auroc maps as pair lists: JSON keys cannot be ints.
        return {
            "stability": [[m, stability_series.at_month(m)] for m in months],
            "rfm": [[m, rfm_series.at_month(m)] for m in months],
        }

    results = []
    mechanisms = sorted(ATTRITION_MECHANISMS)
    reporter = progress(len(mechanisms), "mechanism crossover", log=logger)
    for mechanism in mechanisms:
        with span("eval.cell", sweep="mechanism_crossover", label=mechanism):
            if journal is None:
                payload = run_mechanism(mechanism)
            else:
                key = (
                    "mechanism_crossover",
                    mechanism,
                    f"w{window_months}_a{alpha:g}_s{seed}_"
                    f"n{n_loyal}-{n_churners}_"
                    f"m{'-'.join(str(m) for m in months)}",
                )
                payload = journal.get_or_compute(
                    key, lambda m=mechanism: run_mechanism(m)
                )
        reporter.advance(key=mechanism)
        results.append(
            MechanismResult(
                mechanism=mechanism,
                stability_auroc={int(m): float(v) for m, v in payload["stability"]},
                rfm_auroc={int(m): float(v) for m, v in payload["rfm"]},
            )
        )
    reporter.finish()
    _log_resume_summary(journal)
    return results


@dataclass(frozen=True)
class VacationPoint:
    """Model health at one vacation prevalence level."""

    vacation_prob: float
    auroc: float
    loyal_false_alarm_rate: float


def vacation_sensitivity(
    vacation_probs: Sequence[float] = (0.0, 0.2, 0.4, 0.6),
    n_loyal: int = 80,
    n_churners: int = 80,
    eval_month: int = 22,
    beta: float = 0.5,
    window_months: int = 2,
    seed: int = 7,
    vacation_duration_days: tuple[int, int] = (45, 75),
    checkpoint_dir: str | Path | None = None,
) -> list[VacationPoint]:
    """Sweep the fraction of customers taking a long vacation.

    The default duration range (45–75 days) guarantees some vacations
    span an entire 2-month window — the worst case for a windowed model:
    an empty window scores stability 0 and must trip any threshold.
    AUROC is measured at ``eval_month``; the false-alarm rate is the
    fraction of loyal customers tripping the fixed-``beta`` detector at
    any window from month 12 on.

    With a ``checkpoint_dir`` each finished prevalence level is journaled
    as one cell and its dataset generation and fit are skipped on rerun.
    """
    journal = (
        CheckpointJournal(checkpoint_dir, schema="robustness")
        if checkpoint_dir is not None
        else None
    )

    def run_prob(prob: float) -> dict:
        dataset = generate_dataset(
            ScenarioConfig(
                n_loyal=n_loyal,
                n_churners=n_churners,
                seed=seed,
                vacation_prob=prob,
                vacation_duration_days=vacation_duration_days,
            )
        )
        customers = dataset.cohorts.all_customers()
        config = ExperimentConfig(
            window_months=window_months,
            first_month=eval_month,
            last_month=eval_month,
            backend="batch",
        )
        protocol = EvaluationProtocol(dataset.bundle, config=config)
        model = StabilityModel.from_config(dataset.calendar, config).fit(
            protocol.frame()
        )
        series = protocol.evaluate_stability_model(model, customers)
        detector = ThresholdDetector(beta)
        first_window = next(
            k for k in range(model.n_windows) if model.window_month(k) >= 12
        )
        loyal = sorted(dataset.cohorts.loyal)
        false_alarms = sum(
            1
            for customer in loyal
            if detector.first_alarm(model.trajectory(customer), first_window)
            is not None
        )
        return {
            "auroc": series.at_month(eval_month),
            "loyal_false_alarm_rate": false_alarms / len(loyal),
        }

    points = []
    with progress(len(vacation_probs), "vacation sensitivity", log=logger) as reporter:
        for prob in vacation_probs:
            label = f"p{float(prob):g}"
            with span("eval.cell", sweep="vacation_sensitivity", label=label):
                if journal is None:
                    payload = run_prob(prob)
                else:
                    key = (
                        "vacation_sensitivity",
                        label,
                        f"w{window_months}_b{beta:g}_s{seed}_m{eval_month}_"
                        f"n{n_loyal}-{n_churners}_"
                        f"d{vacation_duration_days[0]}-{vacation_duration_days[1]}",
                    )
                    payload = journal.get_or_compute(key, lambda p=prob: run_prob(p))
            reporter.advance(key=label)
            points.append(
                VacationPoint(
                    vacation_prob=float(prob),
                    auroc=float(payload["auroc"]),
                    loyal_false_alarm_rate=float(payload["loyal_false_alarm_rate"]),
                )
            )
    _log_resume_summary(journal)
    return points
