"""Experiment E3 — the Section 3 dataset-statistics table.

The paper describes its dataset in prose: receipts of 6M customers from
May 2012 to August 2014, 4M products grouped into 3,388 segments, plus the
loyal and defected-in-the-last-6-months cohorts.  This module computes the
same inventory for any dataset bundle so the reproduction's scale can be
reported next to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.validation import DatasetBundle

__all__ = ["DatasetStats", "dataset_stats"]

#: The paper's reported dataset statistics, for side-by-side reporting.
PAPER_STATS = {
    "n_customers": 6_000_000,
    "n_products": 4_000_000,
    "n_segments": 3_388,
    "n_months": 28,
}


@dataclass(frozen=True)
class DatasetStats:
    """Descriptive statistics of a dataset bundle."""

    n_customers: int
    n_loyal: int
    n_churners: int
    n_receipts: int
    n_products: int
    n_segments: int
    n_segments_bought: int
    n_months: int
    onset_month: int
    receipts_per_customer_mean: float
    basket_size_mean: float
    monetary_per_receipt_mean: float

    def rows(self) -> list[tuple[str, str, str]]:
        """``(statistic, paper value, this dataset)`` rows for reporting."""
        fmt = "{:,}".format
        return [
            ("customers", fmt(PAPER_STATS["n_customers"]), fmt(self.n_customers)),
            ("  loyal cohort", "(provided by retailer)", fmt(self.n_loyal)),
            ("  churner cohort", "(provided by retailer)", fmt(self.n_churners)),
            ("products", fmt(PAPER_STATS["n_products"]), fmt(self.n_products)),
            ("segments", fmt(PAPER_STATS["n_segments"]), fmt(self.n_segments)),
            ("segments bought", "-", fmt(self.n_segments_bought)),
            ("study months", fmt(PAPER_STATS["n_months"]), fmt(self.n_months)),
            ("defection onset month", "18", fmt(self.onset_month)),
            ("receipts", "-", fmt(self.n_receipts)),
            (
                "receipts / customer (mean)",
                "-",
                f"{self.receipts_per_customer_mean:.1f}",
            ),
            ("basket size (mean segments)", "-", f"{self.basket_size_mean:.1f}"),
            ("monetary / receipt (mean)", "-", f"{self.monetary_per_receipt_mean:.2f}"),
        ]


def dataset_stats(bundle: DatasetBundle) -> DatasetStats:
    """Compute the E3 statistics of a bundle."""
    log = bundle.log
    sizes = [basket.size for basket in log]
    monetary = [basket.monetary for basket in log]
    per_customer = [len(log.history(c)) for c in log.customers()]
    return DatasetStats(
        n_customers=log.n_customers,
        n_loyal=bundle.cohorts.n_loyal,
        n_churners=bundle.cohorts.n_churners,
        n_receipts=log.n_baskets,
        n_products=bundle.catalog.n_products,
        n_segments=bundle.catalog.n_segments,
        n_segments_bought=len(log.item_universe()),
        n_months=bundle.calendar.n_months,
        onset_month=bundle.cohorts.onset_month,
        receipts_per_customer_mean=float(np.mean(per_customer)) if per_customer else 0.0,
        basket_size_mean=float(np.mean(sizes)) if sizes else 0.0,
        monetary_per_receipt_mean=float(np.mean(monetary)) if monetary else 0.0,
    )
