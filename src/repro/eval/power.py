"""Statistical power of the evaluation: how many customers are enough?

The paper evaluates on millions of customers; this reproduction runs at
laptop scale, so a practitioner needs to know how small a cohort can get
before the AUROC estimate becomes noise.  :func:`power_analysis` measures
the across-seed standard deviation of the month-20 AUROC at several cohort
sizes and reports the smallest size whose std falls under a target.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.model import StabilityModel
from repro.errors import ConfigError
from repro.eval.protocol import EvaluationProtocol
from repro.synth.generator import ScenarioConfig, generate_dataset

__all__ = ["PowerPoint", "PowerAnalysis", "power_analysis"]


@dataclass(frozen=True, slots=True)
class PowerPoint:
    """AUROC statistics at one cohort size."""

    n_per_cohort: int
    mean_auroc: float
    std_auroc: float


@dataclass(frozen=True)
class PowerAnalysis:
    """The full size sweep plus the recommendation."""

    points: tuple[PowerPoint, ...]
    eval_month: int
    target_std: float
    recommended_n: int | None

    def rows(self) -> list[tuple[int, str, str]]:
        return [
            (p.n_per_cohort, f"{p.mean_auroc:.3f}", f"{p.std_auroc:.3f}")
            for p in self.points
        ]


def _auroc_once(
    n_per_cohort: int, seed: int, eval_month: int, window_months: int, alpha: float
) -> float:
    dataset = generate_dataset(
        ScenarioConfig(n_loyal=n_per_cohort, n_churners=n_per_cohort, seed=seed)
    )
    protocol = EvaluationProtocol(
        dataset.bundle,
        window_months=window_months,
        first_month=eval_month,
        last_month=eval_month,
    )
    customers = dataset.cohorts.all_customers()
    model = StabilityModel(
        dataset.calendar, window_months=window_months, alpha=alpha
    ).fit(dataset.log, customers)
    return protocol.evaluate_stability_model(model, customers).at_month(eval_month)


def power_analysis(
    cohort_sizes: Sequence[int] = (10, 20, 40, 80),
    seeds: Sequence[int] = (1, 2, 3, 4),
    eval_month: int = 20,
    target_std: float = 0.05,
    window_months: int = 2,
    alpha: float = 2.0,
) -> PowerAnalysis:
    """Sweep cohort sizes and recommend the smallest reliable one.

    ``recommended_n`` is the smallest size whose across-seed AUROC std is
    at or below ``target_std`` (``None`` if no size qualifies).
    """
    if not cohort_sizes or not seeds:
        raise ConfigError("cohort_sizes and seeds must be non-empty")
    if len(seeds) < 2:
        raise ConfigError("power analysis needs at least two seeds")
    points = []
    for size in sorted(cohort_sizes):
        aurocs = [
            _auroc_once(size, seed, eval_month, window_months, alpha)
            for seed in seeds
        ]
        points.append(
            PowerPoint(
                n_per_cohort=int(size),
                mean_auroc=float(np.mean(aurocs)),
                std_auroc=float(np.std(aurocs)),
            )
        )
    recommended = next(
        (p.n_per_cohort for p in points if p.std_auroc <= target_std), None
    )
    return PowerAnalysis(
        points=tuple(points),
        eval_month=eval_month,
        target_std=target_std,
        recommended_n=recommended,
    )
