"""Ablation studies of the stability model's design choices (DESIGN.md A1-A3).

* :func:`alpha_sweep` — sensitivity of detection AUROC to the ``alpha``
  parameter of the exponential significance, plus the non-exponential
  scoring alternatives.
* :func:`window_sweep` — sensitivity to the window span ``w``.
* :func:`explanation_quality` — do the paper's argmax / top-K
  explanations recover the segments the generator actually removed?
  Reported as precision@K and recall@K against the injected ground
  truth.
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.config import ExperimentConfig
from repro.core.model import StabilityModel
from repro.core.significance import (
    ExponentialSignificance,
    FrequencyRatioSignificance,
    LinearSignificance,
    SignificanceFunction,
)
from repro.data.population import PopulationFrame
from repro.data.validation import DatasetBundle
from repro.errors import EvaluationError
from repro.eval.protocol import EvaluationProtocol
from repro.obs import span
from repro.obs.progress import progress
from repro.runtime.checkpoint import CheckpointJournal
from repro.synth.generator import SyntheticDataset

__all__ = [
    "AblationPoint",
    "alpha_sweep",
    "window_sweep",
    "significance_function_sweep",
    "ExplanationQuality",
    "explanation_quality",
]

logger = logging.getLogger(__name__)


def _log_resume_summary(journal: CheckpointJournal | None) -> None:
    """One line of journal traffic after a checkpointed sweep."""
    if journal is not None and (journal.hits or journal.misses or journal.invalid):
        logger.info("%s journal: %s", journal.schema, journal.resume_summary())


@dataclass(frozen=True, slots=True)
class AblationPoint:
    """One configuration of an ablation sweep and its AUROC."""

    label: str
    auroc: float


def _sweep_journal(checkpoint_dir: str | Path | None) -> CheckpointJournal | None:
    """The ablation cell journal (``None`` without a ``checkpoint_dir``)."""
    if checkpoint_dir is None:
        return None
    return CheckpointJournal(checkpoint_dir, schema="ablations")


def _journaled_point(
    journal: CheckpointJournal | None,
    key: tuple[str, ...],
    label: str,
    compute: Callable[[], float],
) -> AblationPoint:
    """One sweep cell: a journaled cell skips the model fit entirely."""
    if journal is None:
        return AblationPoint(label=label, auroc=float(compute()))
    value = journal.get_or_compute(key, lambda: float(compute()))
    return AblationPoint(label=label, auroc=float(value))


def _auroc_at_month(
    bundle: DatasetBundle,
    model: StabilityModel,
    eval_month: int,
    customers: Sequence[int],
) -> float:
    protocol = EvaluationProtocol(
        bundle,
        window_months=model.window_months,
        first_month=eval_month,
        last_month=eval_month + model.window_months,
    )
    series = protocol.evaluate_stability_model(model, customers)
    return series.points[0].auroc


def alpha_sweep(
    bundle: DatasetBundle,
    alphas: Sequence[float] = (1.1, 1.5, 2.0, 3.0, 4.0, 8.0),
    window_months: int = 2,
    eval_month: int | None = None,
    checkpoint_dir: str | Path | None = None,
) -> list[AblationPoint]:
    """Detection AUROC at the reference month for a range of ``alpha``.

    With a ``checkpoint_dir`` each finished alpha cell is journaled
    atomically; a rerun against the same directory skips the fit and
    evaluation of every finished cell.
    """
    eval_month = (
        bundle.cohorts.onset_month + 2 if eval_month is None else eval_month
    )
    customers = bundle.cohorts.all_customers()
    base = ExperimentConfig(window_months=window_months, backend="batch")
    journal = _sweep_journal(checkpoint_dir)
    # alpha does not change the grid: encode the cohort once and share
    # the frame across the whole sweep.  Built lazily so a fully
    # journaled rerun never encodes the log at all.
    frame: PopulationFrame | None = None

    def fit_and_score(alpha: float) -> float:
        nonlocal frame
        if frame is None:
            frame = PopulationFrame.from_log(
                bundle.log, base.grid(bundle.calendar), customers
            )
        model = StabilityModel.from_config(
            bundle.calendar, base.evolve(alpha=alpha)
        ).fit(frame)
        return _auroc_at_month(bundle, model, eval_month, customers)

    # Pin the dataset in every cell key: a checkpoint_dir reused against
    # a different bundle must recompute, not alias.
    dataset = f"d{bundle.fingerprint()}" if journal is not None else ""
    points = []
    with progress(len(alphas), "alpha sweep", log=logger) as reporter:
        for alpha in alphas:
            label = f"alpha={alpha:g}"
            with span("eval.cell", sweep="alpha_sweep", label=label):
                points.append(
                    _journaled_point(
                        journal,
                        (
                            "alpha_sweep",
                            label,
                            f"m{eval_month}",
                            f"w{window_months}",
                            dataset,
                        ),
                        label,
                        lambda a=alpha: fit_and_score(a),
                    )
                )
            reporter.advance(key=label)
    _log_resume_summary(journal)
    return points


def window_sweep(
    bundle: DatasetBundle,
    window_months_list: Sequence[int] = (1, 2, 3, 4),
    alpha: float = 2.0,
    eval_month: int | None = None,
    checkpoint_dir: str | Path | None = None,
) -> list[AblationPoint]:
    """Detection AUROC for a range of window spans.

    The evaluation month is aligned to the first window ending at or
    after the reference month, so spans that do not divide it remain
    comparable.  With a ``checkpoint_dir`` each finished span cell is
    journaled atomically and skipped on rerun (each span implies its own
    grid, frame encoding and fit, so a skipped cell saves all three).
    """
    reference = bundle.cohorts.onset_month + 2 if eval_month is None else eval_month
    customers = bundle.cohorts.all_customers()
    journal = _sweep_journal(checkpoint_dir)

    def fit_and_score(window_months: int) -> float:
        config = ExperimentConfig(
            window_months=window_months, alpha=alpha, backend="batch"
        )
        model = StabilityModel.from_config(bundle.calendar, config).fit(
            PopulationFrame.from_log(
                bundle.log, config.grid(bundle.calendar), customers
            )
        )
        month = next(
            (
                model.window_month(k)
                for k in range(model.n_windows)
                if model.window_month(k) >= reference
            ),
            None,
        )
        if month is None:
            raise EvaluationError(
                f"no {window_months}-month window ends at or after month {reference}"
            )
        return _auroc_at_month(bundle, model, month, customers)

    dataset = f"d{bundle.fingerprint()}" if journal is not None else ""
    points = []
    with progress(len(window_months_list), "window sweep", log=logger) as reporter:
        for window_months in window_months_list:
            label = f"w={window_months}mo"
            with span("eval.cell", sweep="window_sweep", label=label):
                points.append(
                    _journaled_point(
                        journal,
                        (
                            "window_sweep",
                            label,
                            f"m{reference}",
                            f"a{alpha:g}",
                            dataset,
                        ),
                        label,
                        lambda w=window_months: fit_and_score(w),
                    )
                )
            reporter.advance(key=label)
    _log_resume_summary(journal)
    return points


def significance_function_sweep(
    bundle: DatasetBundle,
    window_months: int = 2,
    eval_month: int | None = None,
) -> list[AblationPoint]:
    """Compare the paper's exponential rule against the alternatives."""
    eval_month = (
        bundle.cohorts.onset_month + 2 if eval_month is None else eval_month
    )
    customers = bundle.cohorts.all_customers()
    functions: list[SignificanceFunction] = [
        ExponentialSignificance(alpha=2.0),
        FrequencyRatioSignificance(),
        LinearSignificance(),
    ]
    points = []
    for function in functions:
        model = StabilityModel(
            bundle.calendar, window_months=window_months, significance=function
        ).fit(bundle.log, customers)
        points.append(
            AblationPoint(
                label=function.name,
                auroc=_auroc_at_month(bundle, model, eval_month, customers),
            )
        )
    return points


@dataclass(frozen=True)
class ExplanationQuality:
    """Precision/recall of top-K explanations against injected ground truth.

    For each churner and each window after their onset, the model's top-K
    newly-missing segments are compared with the segments the generator
    dropped during that window.
    """

    top_k: int
    precision: float
    recall: float
    n_evaluated: int


def explanation_quality(
    dataset: SyntheticDataset,
    window_months: int = 2,
    alpha: float = 2.0,
    top_k: int = 3,
) -> ExplanationQuality:
    """Score the paper's explanations against the generator's ground truth."""
    bundle = dataset.bundle
    churners = sorted(bundle.cohorts.churners)
    model = StabilityModel(
        bundle.calendar, window_months=window_months, alpha=alpha
    ).fit(bundle.log, churners)

    hits = 0
    predicted_total = 0
    actual_total = 0
    n_evaluated = 0
    for customer_id in churners:
        schedule = dataset.schedules[customer_id]
        trajectory = model.trajectory(customer_id)
        for k in range(model.n_windows):
            begin, end = model.grid.bounds(k)
            first_month = bundle.calendar.month_of_day(begin)
            last_month = bundle.calendar.month_of_day(end - 1)
            actual = {
                segment
                for segment, month in schedule.drop_month.items()
                if first_month <= month <= last_month
            }
            if not actual:
                continue
            explanation = model.explain(customer_id, k, top_k=top_k)
            predicted = {item.item for item in explanation.newly_missing[:top_k]}
            if not predicted:
                predicted = {item.item for item in explanation.missing[:top_k]}
            hits += len(predicted & actual)
            predicted_total += len(predicted)
            actual_total += len(actual)
            n_evaluated += 1
    precision = hits / predicted_total if predicted_total else 0.0
    recall = hits / actual_total if actual_total else 0.0
    return ExplanationQuality(
        top_k=top_k,
        precision=precision,
        recall=recall,
        n_evaluated=n_evaluated,
    )
