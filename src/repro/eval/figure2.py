"""Experiment E2 — Figure 2: the individual-explanation case study.

Reproduces the paper's Figure 2: the stability trajectory of one defecting
customer who "is loyal in the first months, and defecting starting from
month 20", where the month-20 decrease is explained by a **coffee** loss
and the sharper month-22 decrease by **milk, sponge and cheese** losses.

The experiment runs the stability model on the injected case-study
customer and extracts, for each window past the onset, the top missing
segments that explain the decrease — then checks them against the
injected ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.core.explanation import DropExplanation, explain_window
from repro.core.model import StabilityModel
from repro.synth.scenarios import CaseStudy, figure2_case_study

__all__ = ["Figure2Result", "run_figure2"]


@dataclass(frozen=True)
class Figure2Result:
    """The Figure 2 trajectory with per-drop explanations.

    Attributes
    ----------
    months:
        X axis: months elapsed at each window's end.
    stability:
        Stability value per window (``nan`` where undefined).
    explanations:
        ``{month: explanation}`` for each evaluated drop window.
    first_loss_names, second_loss_names:
        Ground-truth segment names lost at the two annotated drops.
    first_loss_month, second_loss_month:
        Months of the two annotated drops (20 and 22 in the paper).
    case:
        The underlying case-study fixture.
    """

    months: list[int]
    stability: list[float]
    explanations: dict[int, DropExplanation]
    first_loss_names: tuple[str, ...]
    second_loss_names: tuple[str, ...]
    first_loss_month: int
    second_loss_month: int
    case: CaseStudy

    def explained_names(self, month: int, top_k: int = 4) -> list[str]:
        """Names of the top-K newly-missing segments explained at a month."""
        explanation = self.explanations[month]
        ranked = explanation.newly_missing or explanation.missing
        return [
            self.case.catalog.segment(item.item).name for item in ranked[:top_k]
        ]


def run_figure2(
    window_months: int = 2,
    alpha: float = 2.0,
    seed: int = 11,
    case: CaseStudy | None = None,
    first_month: int = 12,
    last_month: int = 24,
    config: ExperimentConfig | None = None,
) -> Figure2Result:
    """Run the Figure 2 case study.

    ``case`` may be supplied to reuse a fixture; by default the canonical
    injected customer is generated (coffee lost in the window ending at
    month 20; milk, sponges and cheese in the window ending at month 22).
    ``first_month``/``last_month`` bound the plotted axis like the
    paper's Figure 2 (months 12 to 24).  The incremental backend is kept
    deliberately: the per-drop explanations read the full per-item
    significance snapshots, which lazily-built batch trajectories do not
    carry.
    """
    case = case if case is not None else figure2_case_study(seed=seed)
    if config is None:
        config = ExperimentConfig(
            window_months=window_months,
            alpha=alpha,
            first_month=first_month,
            last_month=last_month,
        )
    first_month, last_month = config.first_month, config.last_month
    model = StabilityModel.from_config(case.calendar, config).fit(
        case.log, [case.customer_id]
    )
    trajectory = model.trajectory(case.customer_id)

    months = []
    stability = []
    for k in range(model.n_windows):
        month = model.window_month(k)
        if first_month <= month <= last_month:
            months.append(month)
            stability.append(trajectory.at(k).stability)

    first_month = 20
    second_month = 22
    explanations: dict[int, DropExplanation] = {}
    for month in (first_month, second_month):
        # A loss during window k produces the stability decrease plotted
        # at that window's end month, so explain the window ending at m.
        for k in range(model.n_windows):
            if model.window_month(k) == month:
                explanations[month] = explain_window(trajectory, k)
                break

    first_names = tuple(
        case.catalog.segment(s).name for s in case.first_loss_segments
    )
    second_names = tuple(
        case.catalog.segment(s).name for s in case.second_loss_segments
    )
    return Figure2Result(
        months=months,
        stability=stability,
        explanations=explanations,
        first_loss_names=first_names,
        second_loss_names=second_names,
        first_loss_month=first_month,
        second_loss_month=second_month,
        case=case,
    )
