"""Backend fit-time telemetry: the perf trajectory between PRs.

One machine-readable artifact (``BENCH_scaling.json``) records, per
population size, how long each :class:`~repro.core.model.StabilityModel`
backend takes to fit — so a future PR that touches the hot path has a
baseline to compare against.  Both the ``bench`` CLI subcommand and
``benchmarks/bench_scaling.py`` build their payloads here.

Timing protocol: best-of-``repeat`` wall-clock on a freshly constructed
model (so no backend benefits from caches), dataset generation excluded.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from pathlib import Path

from repro.atomicio import atomic_write_json
from repro.config import ExperimentConfig
from repro.core.model import BACKENDS, StabilityModel
from repro.errors import ConfigError
from repro.synth import ScenarioConfig, generate_dataset

__all__ = [
    "time_fit",
    "scaling_telemetry",
    "protocol_telemetry",
    "resilience_telemetry",
    "telemetry_overhead",
    "write_scaling_json",
    "render_scaling",
]


def time_fit(
    dataset,
    backend: str,
    repeat: int = 3,
    n_jobs: int = 1,
    window_months: int = 2,
    alpha: float = 2.0,
) -> float:
    """Best-of-``repeat`` seconds to fit one backend on a dataset."""
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        model = StabilityModel(
            dataset.calendar,
            window_months=window_months,
            alpha=alpha,
            backend=backend,
            n_jobs=n_jobs if backend == "batch" else 1,
        )
        start = time.perf_counter()
        model.fit(dataset.log)
        best = min(best, time.perf_counter() - start)
    return best


def scaling_telemetry(
    sizes: Sequence[int] = (25, 50, 100, 200),
    seed: int = 13,
    backends: Sequence[str] = BACKENDS,
    repeat: int = 3,
    n_jobs: int = 1,
    window_months: int = 2,
    alpha: float = 2.0,
) -> dict:
    """Fit-time telemetry across population sizes and backends.

    ``sizes`` are per-cohort counts (total customers = ``2 * size``:
    loyal + churners, mirroring the paper's scenario generator).
    """
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise ConfigError(f"unknown backends {unknown}; expected subset of {BACKENDS}")
    results = []
    for size in sizes:
        start = time.perf_counter()
        dataset = generate_dataset(
            ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
        )
        generate_seconds = time.perf_counter() - start
        n_customers = dataset.log.n_customers
        per_backend = {}
        for backend in backends:
            seconds = time_fit(
                dataset,
                backend,
                repeat=repeat,
                n_jobs=n_jobs,
                window_months=window_months,
                alpha=alpha,
            )
            per_backend[backend] = {
                "fit_seconds": seconds,
                "ms_per_customer": seconds / n_customers * 1e3,
            }
        entry = {
            "customers": n_customers,
            "receipts": dataset.log.n_baskets,
            "generate_seconds": generate_seconds,
            "backends": per_backend,
        }
        if "incremental" in per_backend and "batch" in per_backend:
            entry["speedup_batch_vs_incremental"] = (
                per_backend["incremental"]["fit_seconds"]
                / per_backend["batch"]["fit_seconds"]
            )
        results.append(entry)
    return {
        "benchmark": "stability_fit_scaling",
        "schema_version": 1,
        "window_months": window_months,
        "alpha": alpha,
        "seed": seed,
        "n_jobs": n_jobs,
        "repeat": repeat,
        "sizes_customers": [entry["customers"] for entry in results],
        "results": results,
    }


def _roc_sweep_legacy(bundle, config: ExperimentConfig, train, test) -> None:
    """The pre-refactor sweep: per-customer incremental fit + per-customer
    RFM feature loops over the raw log at every evaluation window."""
    from repro.baselines.rfm import RFMModel
    from repro.eval.protocol import EvaluationProtocol

    protocol = EvaluationProtocol(bundle, config=config)
    model = StabilityModel.from_config(bundle.calendar, config).fit(
        bundle.log, test
    )
    protocol.evaluate_stability_model(model, test)
    rfm = RFMModel(bundle.calendar, config=config)
    rfm.supports_frame = False  # force the per-customer log path
    protocol.evaluate_window_scorer(rfm, "rfm", train, test)


def _roc_sweep_frame(bundle, config: ExperimentConfig, train, test) -> None:
    """The refactored sweep: one PopulationFrame feeds the batch stability
    fit and every per-window RFM refit."""
    from repro.baselines.rfm import RFMModel
    from repro.eval.protocol import EvaluationProtocol

    protocol = EvaluationProtocol(bundle, config=config)
    model = StabilityModel.from_config(bundle.calendar, config).fit(
        protocol.frame()
    )
    protocol.evaluate_stability_model(model, test)
    rfm = RFMModel(bundle.calendar, config=config)
    protocol.evaluate_window_scorer(rfm, "rfm", train, test)


def protocol_telemetry(
    size: int = 200,
    seed: int = 13,
    repeat: int = 3,
    window_months: int = 2,
    alpha: float = 2.0,
    first_month: int = 12,
    last_month: int = 24,
) -> dict:
    """Wall-clock of the full Figure-1-style ROC sweep, both data planes.

    ``size`` is per-cohort (total customers = ``2 * size``).  The legacy
    path re-derives per-customer windowed dictionaries from the raw log;
    the frame path encodes the log once into a
    :class:`~repro.data.population.PopulationFrame` and runs the batch
    stability kernel plus the columnar RFM features.  Both produce
    bit-identical AUROC (pinned by tests), so the ratio is a pure
    data-plane speedup.
    """
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    from repro.eval.protocol import EvaluationProtocol

    dataset = generate_dataset(
        ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
    )
    bundle = dataset.bundle
    base = ExperimentConfig(
        window_months=window_months,
        alpha=alpha,
        first_month=first_month,
        last_month=last_month,
    )
    train, test = EvaluationProtocol(bundle, config=base).train_test_split(
        seed=seed
    )
    timings = {}
    for label, backend, sweep in (
        ("legacy_incremental", "incremental", _roc_sweep_legacy),
        ("frame_batch", "batch", _roc_sweep_frame),
    ):
        config = base.evolve(backend=backend)
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            sweep(bundle, config, train, test)
            best = min(best, time.perf_counter() - start)
        timings[label] = {"sweep_seconds": best}
    return {
        "scenario": "eval_protocol_roc_sweep",
        "customers": bundle.log.n_customers,
        "receipts": bundle.log.n_baskets,
        "window_months": window_months,
        "alpha": alpha,
        "first_month": first_month,
        "last_month": last_month,
        "seed": seed,
        "repeat": repeat,
        "paths": timings,
        "speedup_frame_vs_legacy": (
            timings["legacy_incremental"]["sweep_seconds"]
            / timings["frame_batch"]["sweep_seconds"]
        ),
    }


def resilience_telemetry(
    size: int = 100,
    seed: int = 13,
    repeat: int = 3,
    n_jobs: int = 2,
    window_months: int = 2,
    alpha: float = 2.0,
) -> dict:
    """Fault-free overhead of the resilient shard executor.

    Times the same sharded stability fit twice on one
    :class:`~repro.data.population.PopulationFrame`: once through the
    bare ``ProcessPoolExecutor.map`` path (no retries, no per-shard
    telemetry) and once through :func:`~repro.runtime.executor.run_sharded`
    with default retries.  Both produce bit-identical matrices; the
    difference is pure bookkeeping, pinned below 5% overhead by the
    acceptance criteria.  ``size`` is per-cohort (total customers =
    ``2 * size``).
    """
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    from repro.core.batch import _stability_matrix_bare, stability_matrix
    from repro.data.population import PopulationFrame

    dataset = generate_dataset(
        ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
    )
    config = ExperimentConfig(window_months=window_months, alpha=alpha)
    frame = PopulationFrame.from_log(
        dataset.log, config.grid(dataset.calendar)
    )
    bare = float("inf")
    resilient = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        _stability_matrix_bare(frame, alpha=alpha, n_jobs=n_jobs)
        bare = min(bare, time.perf_counter() - start)
        start = time.perf_counter()
        stability_matrix(frame, alpha=alpha, n_jobs=n_jobs)
        resilient = min(resilient, time.perf_counter() - start)
    return {
        "scenario": "resilient_executor_overhead",
        "customers": frame.n_customers,
        "n_jobs": n_jobs,
        "window_months": window_months,
        "alpha": alpha,
        "seed": seed,
        "repeat": repeat,
        "bare_seconds": bare,
        "resilient_seconds": resilient,
        "overhead_pct": (resilient - bare) / bare * 100.0,
    }


def telemetry_overhead(
    size: int = 200,
    seed: int = 13,
    repeat: int = 3,
    window_months: int = 2,
    alpha: float = 2.0,
    first_month: int = 12,
    last_month: int = 24,
) -> dict:
    """Cost of *recording* telemetry on the full ROC sweep.

    Runs the frame-based Figure-1-style sweep twice per repetition,
    interleaved: once with the default no-op tracer/registry and once
    with a recording :class:`~repro.obs.Tracer` plus
    :class:`~repro.obs.MetricsRegistry` installed.  Both sweeps produce
    bit-identical AUROC (pinned by differential tests); the gap is the
    pure cost of span/instrument bookkeeping, pinned below 3% by the
    acceptance criteria.  ``size`` is per-cohort (total customers =
    ``2 * size``).
    """
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    from repro.eval.protocol import EvaluationProtocol
    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

    dataset = generate_dataset(
        ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
    )
    bundle = dataset.bundle
    config = ExperimentConfig(
        window_months=window_months,
        alpha=alpha,
        first_month=first_month,
        last_month=last_month,
        backend="batch",
    )
    train, test = EvaluationProtocol(bundle, config=config).train_test_split(
        seed=seed
    )
    # One untimed warmup so neither arm pays the first-call cost of
    # allocator/numpy cache priming — on a ~0.1s sweep that one-off cost
    # would otherwise dwarf the few-percent effect being measured.
    _roc_sweep_frame(bundle, config, train, test)
    disabled = float("inf")
    recording = float("inf")
    n_spans = 0
    for _ in range(repeat):
        start = time.perf_counter()
        _roc_sweep_frame(bundle, config, train, test)
        disabled = min(disabled, time.perf_counter() - start)
        tracer, registry = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            start = time.perf_counter()
            _roc_sweep_frame(bundle, config, train, test)
            recording = min(recording, time.perf_counter() - start)
        n_spans = len(tracer.records)
    return {
        "scenario": "telemetry_overhead",
        "customers": bundle.log.n_customers,
        "window_months": window_months,
        "alpha": alpha,
        "first_month": first_month,
        "last_month": last_month,
        "seed": seed,
        "repeat": repeat,
        "spans_per_sweep": n_spans,
        "disabled_seconds": disabled,
        "recording_seconds": recording,
        "overhead_pct": (recording - disabled) / disabled * 100.0,
    }


def write_scaling_json(path: Path | str, telemetry: dict) -> None:
    """Persist telemetry as indented JSON (stable key order for diffs)."""
    atomic_write_json(path, telemetry, indent=2)


def render_scaling(telemetry: dict) -> str:
    """Human-readable table of one telemetry payload."""
    from repro.eval.reporting import format_table

    backends = list(telemetry["results"][0]["backends"]) if telemetry["results"] else []
    header = ("customers", "receipts") + tuple(f"{b} s" for b in backends) + ("speedup",)
    rows = []
    for entry in telemetry["results"]:
        speedup = entry.get("speedup_batch_vs_incremental")
        rows.append(
            (entry["customers"], entry["receipts"])
            + tuple(
                f"{entry['backends'][b]['fit_seconds']:.3f}" for b in backends
            )
            + (f"{speedup:.1f}x" if speedup is not None else "-",)
        )
    table = format_table(header, rows)
    protocol = telemetry.get("eval_protocol")
    if protocol is not None:
        paths = protocol["paths"]
        table += (
            f"\n\nfull ROC sweep ({protocol['customers']} customers): "
            f"legacy {paths['legacy_incremental']['sweep_seconds']:.3f}s, "
            f"frame {paths['frame_batch']['sweep_seconds']:.3f}s "
            f"({protocol['speedup_frame_vs_legacy']:.1f}x)"
        )
    resilience = telemetry.get("resilient_executor")
    if resilience is not None:
        table += (
            f"\n\nresilient executor ({resilience['customers']} customers, "
            f"{resilience['n_jobs']} shards): "
            f"bare {resilience['bare_seconds']:.3f}s, "
            f"resilient {resilience['resilient_seconds']:.3f}s "
            f"({resilience['overhead_pct']:+.1f}% overhead)"
        )
    overhead = telemetry.get("telemetry_overhead")
    if overhead is not None:
        table += (
            f"\n\ntelemetry ({overhead['customers']} customers, "
            f"{overhead['spans_per_sweep']} spans/sweep): "
            f"off {overhead['disabled_seconds']:.3f}s, "
            f"on {overhead['recording_seconds']:.3f}s "
            f"({overhead['overhead_pct']:+.1f}% overhead)"
        )
    return table
