"""Backend fit-time telemetry: the perf trajectory between PRs.

One machine-readable artifact (``BENCH_scaling.json``) records, per
population size, how long each :class:`~repro.core.model.StabilityModel`
backend takes to fit — so a future PR that touches the hot path has a
baseline to compare against.  Both the ``bench`` CLI subcommand and
``benchmarks/bench_scaling.py`` build their payloads here.

Timing protocol: best-of-``repeat`` wall-clock on a freshly constructed
model (so no backend benefits from caches), dataset generation excluded.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from pathlib import Path

from repro.atomicio import atomic_write_json
from repro.config import ExperimentConfig
from repro.core.engines import available_engines
from repro.core.model import StabilityModel
from repro.data.validation import DatasetBundle
from repro.errors import ConfigError
from repro.synth import ScenarioConfig, SyntheticDataset, generate_dataset

__all__ = [
    "time_fit",
    "scaling_telemetry",
    "slab_grid_telemetry",
    "protocol_telemetry",
    "resilience_telemetry",
    "telemetry_overhead",
    "write_scaling_json",
    "merge_scaling_json",
    "render_scaling",
]


def time_fit(
    dataset: SyntheticDataset,
    backend: str,
    repeat: int = 3,
    n_jobs: int = 1,
    window_months: int = 2,
    alpha: float = 2.0,
) -> float:
    """Best-of-``repeat`` seconds to fit one backend on a dataset."""
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        model = StabilityModel.from_config(
            dataset.calendar,
            ExperimentConfig(
                window_months=window_months,
                alpha=alpha,
                backend=backend,
                n_jobs=n_jobs if backend == "batch" else 1,
            ),
        )
        start = time.perf_counter()
        model.fit(dataset.log)
        best = min(best, time.perf_counter() - start)
    return best


def scaling_telemetry(
    sizes: Sequence[int] = (25, 50, 100, 200),
    seed: int = 13,
    backends: Sequence[str] | None = None,
    repeat: int = 3,
    n_jobs: int = 1,
    window_months: int = 2,
    alpha: float = 2.0,
) -> dict:
    """Fit-time telemetry across population sizes and backends.

    ``sizes`` are per-cohort counts (total customers = ``2 * size``:
    loyal + churners, mirroring the paper's scenario generator).
    ``backends`` defaults to every registered engine.
    """
    registered = available_engines()
    backends = registered if backends is None else tuple(backends)
    unknown = [b for b in backends if b not in registered]
    if unknown:
        raise ConfigError(
            f"unknown backends {unknown}; expected subset of {registered}"
        )
    results = []
    for size in sizes:
        start = time.perf_counter()
        dataset = generate_dataset(
            ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
        )
        generate_seconds = time.perf_counter() - start
        n_customers = dataset.log.n_customers
        per_backend = {}
        for backend in backends:
            seconds = time_fit(
                dataset,
                backend,
                repeat=repeat,
                n_jobs=n_jobs,
                window_months=window_months,
                alpha=alpha,
            )
            per_backend[backend] = {
                "fit_seconds": seconds,
                "ms_per_customer": seconds / n_customers * 1e3,
            }
        entry = {
            "customers": n_customers,
            "receipts": dataset.log.n_baskets,
            "generate_seconds": generate_seconds,
            "backends": per_backend,
        }
        if "incremental" in per_backend and "batch" in per_backend:
            entry["speedup_batch_vs_incremental"] = (
                per_backend["incremental"]["fit_seconds"]
                / per_backend["batch"]["fit_seconds"]
            )
        results.append(entry)
    return {
        "benchmark": "stability_fit_scaling",
        "schema_version": 1,
        "window_months": window_months,
        "alpha": alpha,
        "seed": seed,
        "n_jobs": n_jobs,
        "repeat": repeat,
        "sizes_customers": [entry["customers"] for entry in results],
        "results": results,
    }


def slab_grid_telemetry(
    sizes: Sequence[int] = (1_000, 10_000, 100_000),
    seed: int = 13,
    window_months: int = 2,
    alpha: float = 2.0,
    root: str | Path | None = None,
) -> dict:
    """Out-of-core vs in-RAM fit telemetry across population sizes.

    For each ``size`` (total customers, not per-cohort) a deterministic
    synthetic purchase stream (:func:`repro.synth.synthetic_slab_stream`)
    is encoded once into an on-disk slab store, then the batch stability
    kernel runs twice: **mmap** — straight off the memory-mapped store
    through the chunked out-of-core kernel — and **in_ram** — after
    materialising every column into RAM (the materialisation is inside
    the measured region; that *is* the cost the slab plane avoids).

    Peaks are ``tracemalloc`` traced-allocation peaks, reset per arm:
    they capture numpy buffer allocations but not mmap pages, which is
    exactly the bounded-*heap* contract the slab plane makes.  The
    process-wide ``ru_maxrss`` high-water mark is recorded once per cell
    for context (it is monotonic across cells, so it cannot be
    attributed to an arm).  Scores are compared byte-for-byte
    (``bit_identical``) so the grid is also a standing differential
    test.  Stores build under ``root`` (a temporary directory when
    ``None``) and are removed afterwards.
    """
    import shutil
    import tempfile
    import tracemalloc

    import numpy as np

    from repro.core.batch import stability_matrix
    from repro.data.calendar import StudyCalendar
    from repro.data.population import PopulationFrame
    from repro.data.slabs import _COLUMN_DTYPES, build_slab_store
    from repro.synth.stream import synthetic_slab_stream

    calendar = StudyCalendar.paper()
    grid = ExperimentConfig(window_months=window_months, alpha=alpha).grid(
        calendar
    )
    base = Path(tempfile.mkdtemp(prefix="slab-grid-")) if root is None else Path(root)
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    results = []
    try:
        for size in sizes:
            directory = base / f"slab-{size}-seed{seed}"
            start = time.perf_counter()
            store = build_slab_store(
                synthetic_slab_stream(size, calendar.n_days, seed=seed),
                grid,
                directory,
                fingerprint=f"synthetic-{size}-seed{seed}",
            )
            build_seconds = time.perf_counter() - start

            tracemalloc.reset_peak()
            start = time.perf_counter()
            mmap_fit = stability_matrix(store.frame(), alpha=alpha)
            mmap_seconds = time.perf_counter() - start
            __, mmap_peak = tracemalloc.get_traced_memory()

            tracemalloc.reset_peak()
            start = time.perf_counter()
            ram_frame = PopulationFrame(
                grid=store.grid(),
                **{
                    name: np.array(store.column(name))
                    for name in _COLUMN_DTYPES
                },
            )
            ram_fit = stability_matrix(ram_frame, alpha=alpha)
            ram_seconds = time.perf_counter() - start
            __, ram_peak = tracemalloc.get_traced_memory()

            bit_identical = all(
                np.asarray(a).tobytes() == np.asarray(b).tobytes()
                for a, b in (
                    (mmap_fit.stability, ram_fit.stability),
                    (mmap_fit.kept_mass, ram_fit.kept_mass),
                    (mmap_fit.total_mass, ram_fit.total_mass),
                    (mmap_fit.customer_ids, ram_fit.customer_ids),
                )
            )
            entry = {
                "customers": size,
                "receipts": int(store.manifest["columns"]["basket_days"]["rows"]),
                "store_bytes": sum(
                    int(spec["nbytes"])
                    for spec in store.manifest["columns"].values()
                ),
                "build_seconds": build_seconds,
                "mmap": {
                    "fit_seconds": mmap_seconds,
                    "ms_per_customer": mmap_seconds / max(size, 1) * 1e3,
                    "peak_traced_mb": mmap_peak / 2**20,
                },
                "in_ram": {
                    "fit_seconds": ram_seconds,
                    "ms_per_customer": ram_seconds / max(size, 1) * 1e3,
                    "peak_traced_mb": ram_peak / 2**20,
                },
                "peak_ratio_mmap_vs_in_ram": (
                    mmap_peak / ram_peak if ram_peak else float("nan")
                ),
                "bit_identical": bit_identical,
                "ru_maxrss_mb": _ru_maxrss_mb(),
            }
            results.append(entry)
            shutil.rmtree(directory, ignore_errors=True)
    finally:
        if not was_tracing:
            tracemalloc.stop()
        if root is None:
            shutil.rmtree(base, ignore_errors=True)
    return {
        "scenario": "slab_grid",
        "schema_version": 1,
        "window_months": window_months,
        "alpha": alpha,
        "seed": seed,
        "sizes_customers": list(sizes),
        "results": results,
    }


def _ru_maxrss_mb() -> float:
    """Process peak RSS in MiB (Linux reports ru_maxrss in KiB)."""
    import resource
    import sys

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss / 2**10 if sys.platform != "darwin" else rss / 2**20


def _roc_sweep_legacy(
    bundle: DatasetBundle,
    config: ExperimentConfig,
    train: Sequence[int],
    test: Sequence[int],
) -> None:
    """The pre-refactor sweep: per-customer incremental fit + per-customer
    RFM feature loops over the raw log at every evaluation window."""
    from repro.baselines.rfm import RFMModel
    from repro.eval.protocol import EvaluationProtocol

    protocol = EvaluationProtocol(bundle, config=config)
    model = StabilityModel.from_config(bundle.calendar, config).fit(
        bundle.log, test
    )
    protocol.evaluate_stability_model(model, test)
    rfm = RFMModel(bundle.calendar, config=config)
    rfm.supports_frame = False  # force the per-customer log path
    protocol.evaluate_window_scorer(rfm, "rfm", train, test)


def _roc_sweep_frame(
    bundle: DatasetBundle,
    config: ExperimentConfig,
    train: Sequence[int],
    test: Sequence[int],
) -> None:
    """The refactored sweep: one PopulationFrame feeds the batch stability
    fit and every per-window RFM refit."""
    from repro.baselines.rfm import RFMModel
    from repro.eval.protocol import EvaluationProtocol

    protocol = EvaluationProtocol(bundle, config=config)
    model = StabilityModel.from_config(bundle.calendar, config).fit(
        protocol.frame()
    )
    protocol.evaluate_stability_model(model, test)
    rfm = RFMModel(bundle.calendar, config=config)
    protocol.evaluate_window_scorer(rfm, "rfm", train, test)


def protocol_telemetry(
    size: int = 200,
    seed: int = 13,
    repeat: int = 3,
    window_months: int = 2,
    alpha: float = 2.0,
    first_month: int = 12,
    last_month: int = 24,
) -> dict:
    """Wall-clock of the full Figure-1-style ROC sweep, both data planes.

    ``size`` is per-cohort (total customers = ``2 * size``).  The legacy
    path re-derives per-customer windowed dictionaries from the raw log;
    the frame path encodes the log once into a
    :class:`~repro.data.population.PopulationFrame` and runs the batch
    stability kernel plus the columnar RFM features.  Both produce
    bit-identical AUROC (pinned by tests), so the ratio is a pure
    data-plane speedup.
    """
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    from repro.eval.protocol import EvaluationProtocol

    dataset = generate_dataset(
        ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
    )
    bundle = dataset.bundle
    base = ExperimentConfig(
        window_months=window_months,
        alpha=alpha,
        first_month=first_month,
        last_month=last_month,
    )
    train, test = EvaluationProtocol(bundle, config=base).train_test_split(
        seed=seed
    )
    timings = {}
    for label, backend, sweep in (
        ("legacy_incremental", "incremental", _roc_sweep_legacy),
        ("frame_batch", "batch", _roc_sweep_frame),
    ):
        config = base.evolve(backend=backend)
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            sweep(bundle, config, train, test)
            best = min(best, time.perf_counter() - start)
        timings[label] = {"sweep_seconds": best}
    return {
        "scenario": "eval_protocol_roc_sweep",
        "customers": bundle.log.n_customers,
        "receipts": bundle.log.n_baskets,
        "window_months": window_months,
        "alpha": alpha,
        "first_month": first_month,
        "last_month": last_month,
        "seed": seed,
        "repeat": repeat,
        "paths": timings,
        "speedup_frame_vs_legacy": (
            timings["legacy_incremental"]["sweep_seconds"]
            / timings["frame_batch"]["sweep_seconds"]
        ),
    }


def resilience_telemetry(
    size: int = 100,
    seed: int = 13,
    repeat: int = 5,
    n_jobs: int = 2,
    window_months: int = 2,
    alpha: float = 2.0,
) -> dict:
    """Fault-free overhead of the resilient shard executor.

    Times the same sharded stability fit twice on one
    :class:`~repro.data.population.PopulationFrame`: once through the
    bare ``ProcessPoolExecutor.map`` path (no retries, no per-shard
    telemetry) and once through :func:`~repro.runtime.executor.run_sharded`
    with default retries.  Both produce bit-identical matrices; the
    difference is pure bookkeeping, pinned below 5% overhead by the
    acceptance criteria.  ``size`` is per-cohort (total customers =
    ``2 * size``).

    Measurement protocol: the arms interleave ``repeat`` times and each
    arm reports its minimum (process-pool spin-up dominates a single
    run, so means are meaningless).  The run-to-run spread of each arm
    is its noise floor; when the measured overhead sits inside the
    larger of the two floors the result is *noise-dominated* — the
    reported ``overhead_pct`` is clamped to be non-negative and the raw
    signed value is preserved in ``raw_overhead_pct``.  This is what
    previously produced a nonsensical "-2.36% overhead".
    """
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    from repro.core.batch import _stability_matrix_bare, stability_matrix
    from repro.data.population import PopulationFrame

    dataset = generate_dataset(
        ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
    )
    config = ExperimentConfig(window_months=window_months, alpha=alpha)
    frame = PopulationFrame.from_log(
        dataset.log, config.grid(dataset.calendar)
    )
    bare_runs: list[float] = []
    resilient_runs: list[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        _stability_matrix_bare(frame, alpha=alpha, n_jobs=n_jobs)
        bare_runs.append(time.perf_counter() - start)
        start = time.perf_counter()
        stability_matrix(frame, alpha=alpha, n_jobs=n_jobs)
        resilient_runs.append(time.perf_counter() - start)
    bare = min(bare_runs)
    resilient = min(resilient_runs)
    raw_overhead = (resilient - bare) / bare * 100.0
    noise_floor = max(
        (max(runs) - min(runs)) / min(runs) * 100.0
        for runs in (bare_runs, resilient_runs)
    )
    noise_dominated = abs(raw_overhead) <= noise_floor
    return {
        "scenario": "resilient_executor_overhead",
        "customers": frame.n_customers,
        "n_jobs": n_jobs,
        "window_months": window_months,
        "alpha": alpha,
        "seed": seed,
        "repeat": repeat,
        "bare_seconds": bare,
        "resilient_seconds": resilient,
        "raw_overhead_pct": raw_overhead,
        "noise_floor_pct": noise_floor,
        "noise_dominated": noise_dominated,
        "overhead_pct": (
            max(raw_overhead, 0.0) if noise_dominated else raw_overhead
        ),
    }


def telemetry_overhead(
    size: int = 200,
    seed: int = 13,
    repeat: int = 3,
    window_months: int = 2,
    alpha: float = 2.0,
    first_month: int = 12,
    last_month: int = 24,
) -> dict:
    """Cost of *recording* telemetry on the full ROC sweep.

    Runs the frame-based Figure-1-style sweep twice per repetition,
    interleaved: once with the default no-op tracer/registry and once
    with a recording :class:`~repro.obs.Tracer` plus
    :class:`~repro.obs.MetricsRegistry` installed.  Both sweeps produce
    bit-identical AUROC (pinned by differential tests); the gap is the
    pure cost of span/instrument bookkeeping, pinned below 3% by the
    acceptance criteria.  ``size`` is per-cohort (total customers =
    ``2 * size``).
    """
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    from repro.eval.protocol import EvaluationProtocol
    from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

    dataset = generate_dataset(
        ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
    )
    bundle = dataset.bundle
    config = ExperimentConfig(
        window_months=window_months,
        alpha=alpha,
        first_month=first_month,
        last_month=last_month,
        backend="batch",
    )
    train, test = EvaluationProtocol(bundle, config=config).train_test_split(
        seed=seed
    )
    # One untimed warmup so neither arm pays the first-call cost of
    # allocator/numpy cache priming — on a ~0.1s sweep that one-off cost
    # would otherwise dwarf the few-percent effect being measured.
    _roc_sweep_frame(bundle, config, train, test)
    disabled = float("inf")
    recording = float("inf")
    n_spans = 0
    for _ in range(repeat):
        start = time.perf_counter()
        _roc_sweep_frame(bundle, config, train, test)
        disabled = min(disabled, time.perf_counter() - start)
        tracer, registry = Tracer(), MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            start = time.perf_counter()
            _roc_sweep_frame(bundle, config, train, test)
            recording = min(recording, time.perf_counter() - start)
        n_spans = len(tracer.records)
    return {
        "scenario": "telemetry_overhead",
        "customers": bundle.log.n_customers,
        "window_months": window_months,
        "alpha": alpha,
        "first_month": first_month,
        "last_month": last_month,
        "seed": seed,
        "repeat": repeat,
        "spans_per_sweep": n_spans,
        "disabled_seconds": disabled,
        "recording_seconds": recording,
        "overhead_pct": (recording - disabled) / disabled * 100.0,
    }


def write_scaling_json(path: Path | str, telemetry: dict) -> None:
    """Persist telemetry as indented JSON (stable key order for diffs)."""
    atomic_write_json(path, telemetry, indent=2)


def merge_scaling_json(path: Path | str, updates: dict) -> dict:
    """Merge top-level keys into an existing telemetry artifact.

    Benches regenerate different top-level scenarios (the backend grid,
    the slab grid) at different cadences; merging instead of overwriting
    lets each refresh its own keys without discarding the others.  A
    missing or unreadable artifact starts from scratch.  Returns the
    merged payload.
    """
    import json

    path = Path(path)
    merged: dict = {}
    try:
        existing = json.loads(path.read_text())
        if isinstance(existing, dict):
            merged = existing
    except (OSError, ValueError):
        pass
    merged.update(updates)
    atomic_write_json(path, merged, indent=2)
    return merged


def render_scaling(telemetry: dict) -> str:
    """Human-readable table of one telemetry payload."""
    from repro.eval.reporting import format_table

    backends = list(telemetry["results"][0]["backends"]) if telemetry["results"] else []
    header = ("customers", "receipts") + tuple(f"{b} s" for b in backends) + ("speedup",)
    rows = []
    for entry in telemetry["results"]:
        speedup = entry.get("speedup_batch_vs_incremental")
        rows.append(
            (entry["customers"], entry["receipts"])
            + tuple(
                f"{entry['backends'][b]['fit_seconds']:.3f}" for b in backends
            )
            + (f"{speedup:.1f}x" if speedup is not None else "-",)
        )
    table = format_table(header, rows)
    protocol = telemetry.get("eval_protocol")
    if protocol is not None:
        paths = protocol["paths"]
        table += (
            f"\n\nfull ROC sweep ({protocol['customers']} customers): "
            f"legacy {paths['legacy_incremental']['sweep_seconds']:.3f}s, "
            f"frame {paths['frame_batch']['sweep_seconds']:.3f}s "
            f"({protocol['speedup_frame_vs_legacy']:.1f}x)"
        )
    resilience = telemetry.get("resilient_executor")
    if resilience is not None:
        noise = (
            f", noise-dominated (floor {resilience['noise_floor_pct']:.1f}%)"
            if resilience.get("noise_dominated")
            else ""
        )
        table += (
            f"\n\nresilient executor ({resilience['customers']} customers, "
            f"{resilience['n_jobs']} shards): "
            f"bare {resilience['bare_seconds']:.3f}s, "
            f"resilient {resilience['resilient_seconds']:.3f}s "
            f"({resilience['overhead_pct']:+.1f}% overhead{noise})"
        )
    slab_grid = telemetry.get("slab_grid")
    if slab_grid is not None:
        header = (
            "customers",
            "receipts",
            "build s",
            "mmap s",
            "in-RAM s",
            "mmap peak MB",
            "in-RAM peak MB",
            "peak ratio",
            "bit-identical",
        )
        rows = [
            (
                entry["customers"],
                entry["receipts"],
                f"{entry['build_seconds']:.2f}",
                f"{entry['mmap']['fit_seconds']:.2f}",
                f"{entry['in_ram']['fit_seconds']:.2f}",
                f"{entry['mmap']['peak_traced_mb']:.1f}",
                f"{entry['in_ram']['peak_traced_mb']:.1f}",
                f"{entry['peak_ratio_mmap_vs_in_ram']:.2f}",
                "yes" if entry["bit_identical"] else "NO",
            )
            for entry in slab_grid["results"]
        ]
        table += "\n\nout-of-core slab grid:\n" + format_table(header, rows)
    overhead = telemetry.get("telemetry_overhead")
    if overhead is not None:
        table += (
            f"\n\ntelemetry ({overhead['customers']} customers, "
            f"{overhead['spans_per_sweep']} spans/sweep): "
            f"off {overhead['disabled_seconds']:.3f}s, "
            f"on {overhead['recording_seconds']:.3f}s "
            f"({overhead['overhead_pct']:+.1f}% overhead)"
        )
    return table
