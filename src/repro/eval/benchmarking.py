"""Backend fit-time telemetry: the perf trajectory between PRs.

One machine-readable artifact (``BENCH_scaling.json``) records, per
population size, how long each :class:`~repro.core.model.StabilityModel`
backend takes to fit — so a future PR that touches the hot path has a
baseline to compare against.  Both the ``bench`` CLI subcommand and
``benchmarks/bench_scaling.py`` build their payloads here.

Timing protocol: best-of-``repeat`` wall-clock on a freshly constructed
model (so no backend benefits from caches), dataset generation excluded.
"""

from __future__ import annotations

import json
import time
from collections.abc import Sequence
from pathlib import Path

from repro.core.model import BACKENDS, StabilityModel
from repro.errors import ConfigError
from repro.synth import ScenarioConfig, generate_dataset

__all__ = ["time_fit", "scaling_telemetry", "write_scaling_json", "render_scaling"]


def time_fit(
    dataset,
    backend: str,
    repeat: int = 3,
    n_jobs: int = 1,
    window_months: int = 2,
    alpha: float = 2.0,
) -> float:
    """Best-of-``repeat`` seconds to fit one backend on a dataset."""
    if repeat < 1:
        raise ConfigError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    for _ in range(repeat):
        model = StabilityModel(
            dataset.calendar,
            window_months=window_months,
            alpha=alpha,
            backend=backend,
            n_jobs=n_jobs if backend == "batch" else 1,
        )
        start = time.perf_counter()
        model.fit(dataset.log)
        best = min(best, time.perf_counter() - start)
    return best


def scaling_telemetry(
    sizes: Sequence[int] = (25, 50, 100, 200),
    seed: int = 13,
    backends: Sequence[str] = BACKENDS,
    repeat: int = 3,
    n_jobs: int = 1,
    window_months: int = 2,
    alpha: float = 2.0,
) -> dict:
    """Fit-time telemetry across population sizes and backends.

    ``sizes`` are per-cohort counts (total customers = ``2 * size``:
    loyal + churners, mirroring the paper's scenario generator).
    """
    unknown = [b for b in backends if b not in BACKENDS]
    if unknown:
        raise ConfigError(f"unknown backends {unknown}; expected subset of {BACKENDS}")
    results = []
    for size in sizes:
        start = time.perf_counter()
        dataset = generate_dataset(
            ScenarioConfig(n_loyal=size, n_churners=size, seed=seed)
        )
        generate_seconds = time.perf_counter() - start
        n_customers = dataset.log.n_customers
        per_backend = {}
        for backend in backends:
            seconds = time_fit(
                dataset,
                backend,
                repeat=repeat,
                n_jobs=n_jobs,
                window_months=window_months,
                alpha=alpha,
            )
            per_backend[backend] = {
                "fit_seconds": seconds,
                "ms_per_customer": seconds / n_customers * 1e3,
            }
        entry = {
            "customers": n_customers,
            "receipts": dataset.log.n_baskets,
            "generate_seconds": generate_seconds,
            "backends": per_backend,
        }
        if "incremental" in per_backend and "batch" in per_backend:
            entry["speedup_batch_vs_incremental"] = (
                per_backend["incremental"]["fit_seconds"]
                / per_backend["batch"]["fit_seconds"]
            )
        results.append(entry)
    return {
        "benchmark": "stability_fit_scaling",
        "schema_version": 1,
        "window_months": window_months,
        "alpha": alpha,
        "seed": seed,
        "n_jobs": n_jobs,
        "repeat": repeat,
        "sizes_customers": [entry["customers"] for entry in results],
        "results": results,
    }


def write_scaling_json(path: Path | str, telemetry: dict) -> None:
    """Persist telemetry as indented JSON (stable key order for diffs)."""
    Path(path).write_text(json.dumps(telemetry, indent=2, sort_keys=True) + "\n")


def render_scaling(telemetry: dict) -> str:
    """Human-readable table of one telemetry payload."""
    from repro.eval.reporting import format_table

    backends = list(telemetry["results"][0]["backends"]) if telemetry["results"] else []
    header = ("customers", "receipts") + tuple(f"{b} s" for b in backends) + ("speedup",)
    rows = []
    for entry in telemetry["results"]:
        speedup = entry.get("speedup_batch_vs_incremental")
        rows.append(
            (entry["customers"], entry["receipts"])
            + tuple(
                f"{entry['backends'][b]['fit_seconds']:.3f}" for b in backends
            )
            + (f"{speedup:.1f}x" if speedup is not None else "-",)
        )
    return format_table(header, rows)
