"""Seed-variance study: how stable are the reproduced curves?

The paper reports one run on one dataset.  A synthetic substrate lets us
quantify the sampling noise of the reproduction itself: regenerate the
population under several seeds, rerun Figure 1, and report the mean and
standard deviation of each model's AUROC per month.  EXPERIMENTS.md quotes
these intervals so single-run numbers are read with the right error bars.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.eval.figure1 import run_figure1
from repro.synth.generator import ScenarioConfig, generate_dataset

__all__ = ["VarianceSummary", "figure1_variance"]


@dataclass(frozen=True)
class VarianceSummary:
    """Mean and standard deviation of AUROC per month, per model."""

    months: tuple[int, ...]
    seeds: tuple[int, ...]
    stability_mean: dict[int, float]
    stability_std: dict[int, float]
    rfm_mean: dict[int, float]
    rfm_std: dict[int, float]

    def rows(self) -> list[tuple[int, str, str]]:
        """``(month, stability mean±std, rfm mean±std)`` for reporting."""
        return [
            (
                month,
                f"{self.stability_mean[month]:.3f} ± {self.stability_std[month]:.3f}",
                f"{self.rfm_mean[month]:.3f} ± {self.rfm_std[month]:.3f}",
            )
            for month in self.months
        ]


def figure1_variance(
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    n_loyal: int = 80,
    n_churners: int = 80,
    window_months: int = 2,
    alpha: float = 2.0,
) -> VarianceSummary:
    """Run Figure 1 across several dataset seeds and aggregate.

    The split seed is tied to the dataset seed so every run is fully
    independent.
    """
    if len(seeds) < 2:
        raise ConfigError("variance needs at least two seeds")
    per_month_stability: dict[int, list[float]] = {}
    per_month_rfm: dict[int, list[float]] = {}
    for seed in seeds:
        dataset = generate_dataset(
            ScenarioConfig(n_loyal=n_loyal, n_churners=n_churners, seed=seed)
        )
        result = run_figure1(
            dataset.bundle, window_months=window_months, alpha=alpha, seed=seed
        )
        for month, stab, rfm in result.rows():
            per_month_stability.setdefault(month, []).append(stab)
            per_month_rfm.setdefault(month, []).append(rfm)
    months = tuple(sorted(per_month_stability))
    return VarianceSummary(
        months=months,
        seeds=tuple(seeds),
        stability_mean={
            m: float(np.mean(per_month_stability[m])) for m in months
        },
        stability_std={m: float(np.std(per_month_stability[m])) for m in months},
        rfm_mean={m: float(np.mean(per_month_rfm[m])) for m in months},
        rfm_std={m: float(np.std(per_month_rfm[m])) for m in months},
    )
