"""Campaign-oriented evaluation: lift and precision at targeting budgets.

AUROC (Figure 1) measures ranking quality over the whole population, but a
retention programme mails a *budgeted fraction* of customers.  This module
evaluates every scorer at the operating points marketers use: lift and
precision in the top 5/10/20% of the churn-score ranking, per evaluation
month — and compares the stability model against all implemented baselines
(RFM, extended behavioural, first/last sequences, recency, frequency-drop,
random).
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.baselines.behavioral import BehavioralModel
from repro.baselines.ensemble import RankAverageEnsemble, StabilityMember
from repro.baselines.rfm import RFMModel
from repro.baselines.rules import FrequencyDropRule, RandomBaseline, RecencyRule
from repro.baselines.sequences import SequenceModel
from repro.core.model import StabilityModel
from repro.core.windowing import WindowGrid
from repro.data.validation import DatasetBundle
from repro.errors import EvaluationError
from repro.eval.protocol import EvaluationProtocol, WindowScorer
from repro.ml.metrics import auroc, lift_at_fraction, precision_recall_f1
from repro.obs import span
from repro.obs.progress import progress
from repro.runtime.checkpoint import CheckpointJournal, ids_digest

__all__ = ["CampaignPoint", "CampaignComparison", "compare_models"]

logger = logging.getLogger(__name__)

#: Targeting budgets evaluated (fractions of the customer base).
BUDGETS = (0.05, 0.10, 0.20)


@dataclass(frozen=True)
class CampaignPoint:
    """One scorer's campaign metrics at one evaluation month."""

    model: str
    month: int
    auroc: float
    lift: dict[float, float]  # budget fraction -> lift
    precision: dict[float, float]  # budget fraction -> precision


@dataclass(frozen=True)
class CampaignComparison:
    """All scorers' campaign metrics across the evaluation months."""

    points: tuple[CampaignPoint, ...]
    budgets: tuple[float, ...]

    def models(self) -> list[str]:
        return sorted({p.model for p in self.points})

    def at(self, model: str, month: int) -> CampaignPoint:
        for point in self.points:
            if point.model == model and point.month == month:
                return point
        raise EvaluationError(f"no campaign point for {model!r} at month {month}")

    def auroc_table(self) -> list[tuple[str, dict[int, float]]]:
        """``(model, {month: auroc})`` rows, stability first."""
        rows = []
        for model in sorted(self.models(), key=lambda m: (m != "stability", m)):
            rows.append(
                (model, {p.month: p.auroc for p in self.points if p.model == model})
            )
        return rows


def _campaign_metrics(
    name: str,
    month: int,
    scores: dict[int, float],
    labels: dict[int, int],
    budgets: Sequence[float],
) -> CampaignPoint:
    ids = sorted(scores)
    y = np.asarray([labels[c] for c in ids])
    s = np.asarray([scores[c] for c in ids])
    lift = {b: lift_at_fraction(y, s, b) for b in budgets}
    precision = {}
    for budget in budgets:
        k = max(1, int(round(budget * len(ids))))
        threshold = np.sort(s)[::-1][k - 1]
        p, __, __ = precision_recall_f1(y, s, threshold)
        precision[budget] = p
    return CampaignPoint(
        model=name, month=month, auroc=auroc(y, s), lift=lift, precision=precision
    )


def _point_to_payload(point: CampaignPoint) -> dict:
    """A :class:`CampaignPoint` as a JSON value.

    The budget-keyed dicts become ``[[budget, value], ...]`` pair lists
    because JSON object keys cannot be floats.
    """
    return {
        "auroc": point.auroc,
        "lift": [[b, v] for b, v in point.lift.items()],
        "precision": [[b, v] for b, v in point.precision.items()],
    }


def _point_from_payload(name: str, month: int, payload: dict) -> CampaignPoint:
    return CampaignPoint(
        model=name,
        month=month,
        auroc=float(payload["auroc"]),
        lift={float(b): float(v) for b, v in payload["lift"]},
        precision={float(b): float(v) for b, v in payload["precision"]},
    )


def compare_models(
    bundle: DatasetBundle,
    window_months: int = 2,
    alpha: float = 2.0,
    months: Sequence[int] = (20, 22, 24),
    budgets: Sequence[float] = BUDGETS,
    seed: int = 0,
    checkpoint_dir: str | Path | None = None,
) -> CampaignComparison:
    """Evaluate every implemented model at the given months and budgets.

    Trainable scorers (RFM, behavioural, sequence) are trained on a
    stratified half and scored on the other half; untrained scorers
    (stability, rules) are scored on the same test half.

    With a ``checkpoint_dir`` every finished ``(model, month)`` cell is
    journaled atomically; a rerun against the same directory skips the
    refits behind finished cells (a fully journaled stability row even
    skips the stability fit itself).
    """
    protocol = EvaluationProtocol(
        bundle,
        window_months=window_months,
        first_month=min(months),
        last_month=max(months),
    )
    train, test = protocol.train_test_split(seed=seed)
    labels = {c: int(bundle.cohorts.is_churner(c)) for c in test}
    grid = WindowGrid.monthly(bundle.calendar, window_months)
    month_to_window = {
        grid.end_month(k, bundle.calendar): k for k in range(grid.n_windows)
    }
    for month in months:
        if month not in month_to_window:
            raise EvaluationError(f"no {window_months}-month window ends at month {month}")

    journal = (
        CheckpointJournal(checkpoint_dir, schema="campaign")
        if checkpoint_dir is not None
        else None
    )
    # The tag pins the configuration, the dataset content and the exact
    # train/test split, so a reused checkpoint_dir never aliases cells
    # from a different bundle, seed or cohort selection.
    tag = (
        f"w{window_months}_a{alpha:g}_s{seed}_"
        f"b{'-'.join(f'{b:g}' for b in budgets)}_"
        f"d{bundle.fingerprint()}_ids{ids_digest(train, test)}"
        if journal is not None
        else ""
    )

    def cell(
        name: str, month: int, compute: Callable[[], CampaignPoint]
    ) -> CampaignPoint:
        """One journaled campaign cell; a hit skips the scorer refit."""
        with span("eval.cell", scorer=name, month=month):
            if journal is None:
                return compute()
            key = ("campaign", name, f"m{month}", tag)
            payload = journal.get_or_compute(
                key, lambda: _point_to_payload(compute())
            )
        return _point_from_payload(name, month, payload)

    # Fitted lazily so a fully journaled rerun skips the fit entirely.
    _stability: StabilityModel | None = None

    def stability() -> StabilityModel:
        nonlocal _stability
        if _stability is None:
            _stability = StabilityModel(
                bundle.calendar, window_months=window_months, alpha=alpha
            ).fit(bundle.log, test)
        return _stability

    trainable = {
        "rfm": RFMModel(bundle.calendar, window_months=window_months),
        "behavioral": BehavioralModel(bundle.calendar, window_months=window_months),
        "sequence": SequenceModel(bundle.calendar, window_months=window_months),
        "stability+rfm": RankAverageEnsemble(
            bundle.calendar,
            members=[
                StabilityMember(
                    StabilityModel(
                        bundle.calendar, window_months=window_months, alpha=alpha
                    )
                ),
                RFMModel(bundle.calendar, window_months=window_months),
            ],
            window_months=window_months,
        ),
    }
    rules = {
        "recency": RecencyRule(grid),
        "frequency-drop": FrequencyDropRule(grid),
        "random": RandomBaseline(seed=seed),
    }

    def fit_and_measure(
        name: str, model: WindowScorer, month: int, window: int
    ) -> CampaignPoint:
        model.fit(bundle.log, bundle.cohorts, window, train)
        return _campaign_metrics(
            name, month, model.churn_scores(bundle.log, test, window), labels, budgets
        )

    points: list[CampaignPoint] = []
    n_cells = len(months) * (1 + len(trainable) + len(rules))
    with progress(n_cells, "campaign comparison", log=logger) as reporter:
        for month in months:
            window = month_to_window[month]
            points.append(
                cell(
                    "stability",
                    month,
                    lambda k=window, m=month: _campaign_metrics(
                        "stability",
                        m,
                        stability().churn_scores(k, test),
                        labels,
                        budgets,
                    ),
                )
            )
            reporter.advance(key=f"stability m{month}")
            for name, model in trainable.items():
                points.append(
                    cell(
                        name,
                        month,
                        lambda n=name, mo=model, m=month, k=window: fit_and_measure(
                            n, mo, m, k
                        ),
                    )
                )
                reporter.advance(key=f"{name} m{month}")
            for name, rule in rules.items():
                points.append(
                    cell(
                        name,
                        month,
                        lambda n=name, r=rule, m=month, k=window: _campaign_metrics(
                            n,
                            m,
                            r.churn_scores(bundle.log, test, k),
                            labels,
                            budgets,
                        ),
                    )
                )
                reporter.advance(key=f"{name} m{month}")
    if journal is not None and (journal.hits or journal.misses or journal.invalid):
        logger.info("%s journal: %s", journal.schema, journal.resume_summary())
    return CampaignComparison(points=tuple(points), budgets=tuple(budgets))
