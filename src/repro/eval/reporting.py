"""Text rendering of experiment results.

Every experiment renders to plain text (tables and ASCII charts) so the
benchmark harness can print the same rows/series the paper reports without
a plotting stack.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.eval.ablations import AblationPoint, ExplanationQuality
from repro.eval.campaign import CampaignComparison
from repro.eval.delay import DelayAnalysis
from repro.eval.figure1 import Figure1Result
from repro.eval.figure2 import Figure2Result
from repro.eval.robustness import MechanismResult
from repro.eval.tables import DatasetStats
from repro.eval.variance import VarianceSummary
from repro.viz.ascii import line_chart

__all__ = [
    "format_table",
    "render_figure1",
    "render_figure2",
    "render_dataset_stats",
    "render_ablation",
    "render_explanation_quality",
    "render_delay",
    "render_campaign",
    "render_mechanisms",
    "render_variance",
]


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[object]], indent: str = ""
) -> str:
    """Fixed-width text table with a separator under the header."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(header[i])), *(len(row[i]) for row in cells)) if cells else len(str(header[i]))
        for i in range(len(header))
    ]
    def fmt_row(row: Sequence[str]) -> str:
        return indent + "  ".join(str(c).ljust(w) for c, w in zip(row, widths, strict=True)).rstrip()

    lines = [fmt_row([str(h) for h in header])]
    lines.append(indent + "  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def render_figure1(result: Figure1Result) -> str:
    """Figure 1 as a table plus an ASCII chart of both AUROC curves."""
    rows = [
        (month, f"{stab:.3f}", f"{rfm:.3f}")
        for month, stab, rfm in result.rows()
    ]
    table = format_table(("month", "stability AUROC", "RFM AUROC"), rows)
    chart = line_chart(
        x=result.months(),
        series={
            "stability": result.stability.values(),
            "rfm": result.rfm.values(),
        },
        title=(
            f"Figure 1 — AUROC vs months (onset at month {result.onset_month}, "
            f"w={result.window_months}mo, alpha={result.alpha:g})"
        ),
        y_range=(0.0, 1.0),
    )
    return f"{chart}\n\n{table}"


def render_figure2(result: Figure2Result, top_k: int = 4) -> str:
    """Figure 2 as a chart plus the per-drop explanation annotations."""
    values = [v if not math.isnan(v) else 0.0 for v in result.stability]
    chart = line_chart(
        x=result.months,
        series={"stability": values},
        title="Figure 2 — defecting customer stability value",
        y_range=(0.0, 1.0),
    )
    lines = [chart, ""]
    for month in sorted(result.explanations):
        names = result.explained_names(month, top_k=top_k)
        lines.append(f"month {month}: stability decrease explained by loss of "
                     f"{', '.join(names) if names else '(nothing)'}")
    lines.append("")
    lines.append(
        f"ground truth: {', '.join(result.first_loss_names)} lost in the window "
        f"ending at month {result.first_loss_month}; "
        f"{', '.join(result.second_loss_names)} lost in the window ending at "
        f"month {result.second_loss_month}"
    )
    return "\n".join(lines)


def render_dataset_stats(stats: DatasetStats) -> str:
    """The E3 statistics table, paper vs this dataset."""
    return format_table(("statistic", "paper", "this run"), stats.rows())


def render_ablation(title: str, points: Sequence[AblationPoint]) -> str:
    """One ablation sweep as a table."""
    rows = [(p.label, f"{p.auroc:.3f}") for p in points]
    return f"{title}\n{format_table(('configuration', 'AUROC'), rows)}"


def render_explanation_quality(quality: ExplanationQuality) -> str:
    """The A3 explanation-quality summary."""
    return (
        f"explanation quality (top-{quality.top_k}, {quality.n_evaluated} "
        f"drop windows): precision={quality.precision:.3f} "
        f"recall={quality.recall:.3f}"
    )


def render_delay(analysis: DelayAnalysis) -> str:
    """The A4 detection-delay summary (one operating point)."""
    rows = [
        ("calibrated beta", f"{analysis.beta:.3f}"),
        ("target false-alarm rate", f"{analysis.target_false_alarm_rate:.1%}"),
        ("realised false-alarm rate", f"{analysis.realised_false_alarm_rate:.1%}"),
        ("churners detected", f"{analysis.recall:.1%}"),
        ("median delay (months)", f"{analysis.median_delay_months:.1f}"),
        ("mean delay (months)", f"{analysis.mean_delay_months:.1f}"),
    ]
    return format_table(("metric", "value"), rows)


def render_campaign(
    comparison: CampaignComparison, months: Sequence[int], budget: float = 0.1
) -> str:
    """The A5 model-comparison table (AUROC per month + lift at a budget)."""
    months = sorted(months)
    rows = []
    for model, by_month in comparison.auroc_table():
        lift = comparison.at(model, months[-1]).lift[budget]
        rows.append(
            (model, *(f"{by_month[m]:.3f}" for m in months), f"{lift:.2f}x")
        )
    return format_table(
        ("model", *(f"AUROC m{m}" for m in months), f"lift@{budget:.0%}"), rows
    )


def render_mechanisms(
    results: Sequence[MechanismResult], months: Sequence[int]
) -> str:
    """The A7a mechanism-crossover table."""
    months = sorted(months)
    rows = []
    for result in results:
        for name, series in (
            ("stability", result.stability_auroc),
            ("rfm", result.rfm_auroc),
        ):
            rows.append(
                (result.mechanism, name, *(f"{series[m]:.3f}" for m in months))
            )
    return format_table(("mechanism", "model", *(f"m{m}" for m in months)), rows)


def render_variance(summary: VarianceSummary) -> str:
    """The S3 seed-variance table (mean ± std per month)."""
    return format_table(("month", "stability", "rfm"), summary.rows())
