"""Per-customer dossiers: everything the model knows about one customer.

The paper's pitch is *individual-level* understanding; this module renders
it.  A :class:`CustomerReport` gathers, for one customer:

* the stability trajectory (with an ASCII chart);
* every detected drop, each with its top missing-segment explanations;
* the current trend forecast (windows until the threshold crossing);
* the RFM profile at the latest window, for context.

:func:`build_customer_report` computes the dossier;
:func:`render_customer_report` renders it as plain text (used by the
``report`` CLI subcommand).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.rfm import RFMFeatures, extract_rfm
from repro.core.explanation import DropExplanation, explain_window
from repro.core.model import StabilityModel
from repro.core.trend import TrendForecast, forecast_stability
from repro.data.items import Catalog
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError
from repro.viz.ascii import line_chart

__all__ = ["CustomerReport", "build_customer_report", "render_customer_report"]


@dataclass(frozen=True)
class CustomerReport:
    """The assembled dossier of one customer."""

    customer_id: int
    months: list[int]
    stability: list[float]
    drops: dict[int, DropExplanation]  # month -> explanation
    forecast: TrendForecast | None
    rfm: RFMFeatures
    n_receipts: int
    total_spend: float


def build_customer_report(
    model: StabilityModel,
    log: TransactionLog,
    customer_id: int,
    drop_threshold: float = 0.1,
    beta: float = 0.5,
) -> CustomerReport:
    """Assemble the dossier for one fitted customer.

    Raises
    ------
    ConfigError
        On an invalid drop threshold.
    DataError
        If the customer was not fitted or has no baskets.
    """
    if not 0.0 < drop_threshold <= 1.0:
        raise ConfigError(f"drop_threshold must be in (0, 1], got {drop_threshold}")
    trajectory = model.trajectory(customer_id)
    months = [model.window_month(k) for k in range(model.n_windows)]
    stability = trajectory.values()

    drops = {
        model.window_month(k): explain_window(trajectory, k)
        for k in trajectory.drops(drop_threshold)
    }
    try:
        forecast = forecast_stability(trajectory, beta=beta)
    except ConfigError:
        forecast = None  # fewer than two defined stability values

    history = log.history(customer_id)
    rfm = extract_rfm(customer_id, history, model.grid, model.n_windows - 1)
    return CustomerReport(
        customer_id=customer_id,
        months=months,
        stability=stability,
        drops=drops,
        forecast=forecast,
        rfm=rfm,
        n_receipts=len(history),
        total_spend=sum(b.monetary for b in history),
    )


def render_customer_report(
    report: CustomerReport, catalog: Catalog, top_k: int = 3
) -> str:
    """Render a dossier as plain text."""
    lines = [
        f"customer {report.customer_id} — {report.n_receipts} receipts, "
        f"total spend {report.total_spend:,.2f}",
        "",
    ]
    plotted = [v if not math.isnan(v) else 0.0 for v in report.stability]
    lines.append(
        line_chart(
            x=report.months,
            series={"stability": plotted},
            title="stability trajectory",
            y_range=(0.0, 1.0),
            height=10,
        )
    )
    lines.append("")

    if report.drops:
        lines.append("detected drops:")
        for month in sorted(report.drops):
            explanation = report.drops[month]
            ranked = explanation.newly_missing or explanation.missing
            names = ", ".join(
                catalog.segment(item.item).name for item in ranked[:top_k]
            )
            lines.append(
                f"  month {month:>2}: stability {explanation.stability:.2f} "
                f"— stopped buying {names or '(nothing attributable)'}"
            )
    else:
        lines.append("no stability drops detected")

    if report.forecast is not None:
        forecast = report.forecast
        if forecast.windows_to_threshold is None:
            if forecast.slope < 0:
                outlook = "declining, but no crossing predicted"
            else:
                outlook = "stable or improving"
        elif forecast.windows_to_threshold <= 0.0:
            outlook = "already at/below the defection threshold"
        else:
            outlook = (
                f"predicted to cross the threshold in "
                f"{forecast.windows_to_threshold:.1f} windows"
            )
        lines.append(
            f"trend: level {forecast.level:.2f}, slope {forecast.slope:+.3f} "
            f"per window — {outlook}"
        )

    lines.append(
        f"RFM at latest window: recency {report.rfm.recency_days:.0f}d, "
        f"{report.rfm.frequency_total:.0f} trips total, "
        f"{report.rfm.monetary_per_trip:.2f}/trip"
    )
    return "\n".join(lines)
