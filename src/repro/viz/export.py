"""Export of experiment series to CSV/JSON for external plotting."""

from __future__ import annotations

import csv
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.atomicio import atomic_write_json
from repro.errors import ConfigError

__all__ = ["write_series_csv", "write_series_json"]


def _validate(x: Sequence[float], series: Mapping[str, Sequence[float]]) -> None:
    if not series:
        raise ConfigError("need at least one series to export")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ConfigError(
                f"series {name!r} has {len(ys)} values for {len(x)} x values"
            )


def write_series_csv(
    path: str | Path,
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_name: str = "x",
) -> None:
    """Write ``x`` plus one column per series to a CSV file."""
    _validate(x, series)
    path = Path(path)
    names = list(series)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_name, *names])
        for i, x_value in enumerate(x):
            writer.writerow([x_value, *(series[name][i] for name in names)])


def write_series_json(
    path: str | Path,
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_name: str = "x",
    metadata: Mapping[str, object] | None = None,
) -> None:
    """Write the series plus optional metadata as a JSON document."""
    _validate(x, series)
    payload = {
        x_name: list(x),
        "series": {name: list(ys) for name, ys in series.items()},
    }
    if metadata:
        payload["metadata"] = dict(metadata)
    atomic_write_json(path, payload, indent=2, sort_keys=False)
