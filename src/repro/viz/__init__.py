"""Terminal visualisation and series export."""

from repro.viz.ascii import histogram, line_chart
from repro.viz.export import write_series_csv, write_series_json

__all__ = ["histogram", "line_chart", "write_series_csv", "write_series_json"]
