"""ASCII line charts for terminal-rendered figures.

No plotting library is available offline, so the benchmark harness renders
the paper's figures as fixed-grid ASCII charts: one plot character per
series, a y axis with tick labels, and an x axis labelled with the series'
x values.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.errors import ConfigError

__all__ = ["line_chart", "histogram"]

_MARKERS = "*o+x#@"


def _scale(value: float, lo: float, hi: float, height: int) -> int | None:
    """Row index (0 = bottom) for a value, or ``None`` when not plottable."""
    if math.isnan(value):
        return None
    clamped = min(max(value, lo), hi)
    return int(round((clamped - lo) / (hi - lo) * (height - 1)))


def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    y_range: tuple[float, float] | None = None,
) -> str:
    """Render one or more series as an ASCII chart.

    Parameters
    ----------
    x:
        Shared x values (used for the axis labels).
    series:
        Mapping from series name to y values (``nan`` values are skipped).
    title:
        Optional title line.
    width, height:
        Plot area size in characters.
    y_range:
        Fixed ``(lo, hi)`` for the y axis; inferred from the data when
        omitted.

    Raises
    ------
    ConfigError
        On empty input or mismatched series lengths.
    """
    if not series:
        raise ConfigError("line_chart needs at least one series")
    if height < 2 or width < 2:
        raise ConfigError(f"chart area too small: {width}x{height}")
    n = len(x)
    if n == 0:
        raise ConfigError("line_chart needs at least one x value")
    for name, ys in series.items():
        if len(ys) != n:
            raise ConfigError(
                f"series {name!r} has {len(ys)} values for {n} x values"
            )

    if y_range is None:
        finite = [
            v for ys in series.values() for v in ys if not math.isnan(v)
        ]
        if not finite:
            raise ConfigError("all series values are NaN")
        lo, hi = min(finite), max(finite)
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
    else:
        lo, hi = y_range
        if hi <= lo:
            raise ConfigError(f"invalid y_range: {y_range}")

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for i, value in enumerate(ys):
            row = _scale(float(value), lo, hi, height)
            if row is None:
                continue
            col = int(round(i / max(n - 1, 1) * (width - 1)))
            grid[height - 1 - row][col] = marker

    label_width = max(len(f"{hi:.2f}"), len(f"{lo:.2f}"))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:.2f}"
        elif row_index == height - 1:
            label = f"{lo:.2f}"
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    first_label = f"{x[0]:g}"
    last_label = f"{x[-1]:g}"
    padding = width - len(first_label) - len(last_label)
    lines.append(
        " " * (label_width + 2) + first_label + " " * max(padding, 1) + last_label
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    n_bins: int = 10,
    width: int = 40,
    title: str = "",
    value_format: str = "{:.1f}",
) -> str:
    """Horizontal ASCII histogram of a sample.

    Each line is one bin: its range, a bar proportional to the count, and
    the count itself.  Used to render delay distributions in the
    benchmark artifacts.

    Raises
    ------
    ConfigError
        On empty input or non-positive bin/width settings.
    """
    if not values:
        raise ConfigError("histogram needs at least one value")
    if n_bins <= 0 or width <= 0:
        raise ConfigError(f"invalid histogram shape: {n_bins} bins, width {width}")
    finite = [float(v) for v in values if not math.isnan(float(v))]
    if not finite:
        raise ConfigError("all histogram values are NaN")
    lo, hi = min(finite), max(finite)
    if lo == hi:
        hi = lo + 1.0
    counts = [0] * n_bins
    span = hi - lo
    for value in finite:
        index = min(int((value - lo) / span * n_bins), n_bins - 1)
        counts[index] += 1
    peak = max(counts)
    edges = [lo + span * i / n_bins for i in range(n_bins + 1)]
    label_pairs = [
        f"[{value_format.format(edges[i])}, {value_format.format(edges[i + 1])})"
        for i in range(n_bins)
    ]
    label_width = max(len(label) for label in label_pairs)
    lines = [title] if title else []
    for label, count in zip(label_pairs, counts, strict=True):
        bar = "#" * (round(count / peak * width) if peak else 0)
        lines.append(f"{label.rjust(label_width)} |{bar} {count}")
    return "\n".join(lines)
