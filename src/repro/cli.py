"""Command-line interface.

Subcommands
-----------
``generate``   Generate a synthetic dataset and write it to disk.
``figure1``    Run the Figure 1 experiment (AUROC curves) and print it.
``figure2``    Run the Figure 2 case study and print it.
``stats``      Print the dataset-statistics table (E3).
``tune``       Run the 5-fold CV parameter search (E4).
``explain``    Explain one customer's stability at one window.
``bench``      Time StabilityModel fit backends and emit perf telemetry.
``obs``        Summarize a trace JSONL emitted via ``--trace-out``.
``lint``       Statically check the determinism/atomicity invariants.
``record``     Record a synthetic scenario as a replayable basket stream.
``serve``      Serve a recorded stream: score, checkpoint, status API.
``soak``       Chaos/soak the serving layer under fault schedules + SLOs.

Global telemetry flags (before the subcommand): ``--trace-out`` writes
the command's span trace as JSONL, ``--metrics-out`` writes the metrics
registry as JSON, and ``-v``/``-vv`` surface the library's INFO/DEBUG
logs (progress heartbeats, executor waves, checkpoint resume summaries)
on stderr.

Run ``python -m repro.cli <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import logging
import sys
from contextlib import nullcontext
from pathlib import Path

from repro.config import ExperimentConfig
from repro.core.engines import available_engines
from repro.core.model import StabilityModel
from repro.core.tuning import tune_stability_model
from repro.data.io import write_cohorts_json, write_log_csv
from repro.eval.figure1 import run_figure1
from repro.eval.figure2 import run_figure2
from repro.eval.reporting import (
    format_table,
    render_dataset_stats,
    render_figure1,
    render_figure2,
)
from repro.eval.tables import dataset_stats
from repro.obs import TelemetrySession
from repro.synth.scenarios import paper_scenario

__all__ = ["main", "build_parser"]

#: Marker the idempotent logging setup tags its handler with.
_LOG_HANDLER_FLAG = "_repro_cli_handler"


def _configure_logging(verbosity: int) -> None:
    """Point the ``repro`` logger at stderr at the requested level.

    Idempotent: re-entry (tests calling :func:`main` repeatedly) adjusts
    the existing handler's level instead of stacking duplicates.
    """
    root = logging.getLogger("repro")
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO
        if verbosity == 1
        else logging.DEBUG
    )
    handler = next(
        (h for h in root.handlers if getattr(h, _LOG_HANDLER_FLAG, False)), None
    )
    if verbosity <= 0:
        if handler is not None:
            root.removeHandler(handler)
            root.setLevel(logging.NOTSET)
        return
    if handler is None:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        setattr(handler, _LOG_HANDLER_FLAG, True)
        root.addHandler(handler)
    handler.setLevel(level)
    root.setLevel(level)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-attrition",
        description=(
            "Reproduction of the EDBT 2016 customer-stability attrition model"
        ),
    )
    parser.add_argument(
        "--loyal", type=int, default=150, help="loyal customers to simulate"
    )
    parser.add_argument(
        "--churners", type=int, default=150, help="defecting customers to simulate"
    )
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="surface library logs on stderr (-v INFO, -vv DEBUG)",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="record a span trace and write it here as JSONL",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="record the metrics registry and write it here as JSON",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument(
        "--out", type=Path, required=True, help="output directory"
    )

    figure1 = sub.add_parser("figure1", help="run the Figure 1 experiment")
    figure1.add_argument("--window-months", type=int, default=2)
    figure1.add_argument("--alpha", type=float, default=2.0)
    figure1.add_argument(
        "--backend",
        choices=available_engines(),
        default="batch",
        help="stability engine (all are bit-identical; batch is fastest)",
    )
    figure1.add_argument(
        "--retries",
        type=int,
        default=2,
        help=(
            "pool retry waves before a failed shard degrades to the "
            "in-process fallback (batch backend only)"
        ),
    )
    figure1.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker processes for the batch backend (-1 = all cores)",
    )
    figure1.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help=(
            "journal directory making the sweep resumable: finished "
            "AUROC cells are written atomically and skipped on rerun"
        ),
    )

    sub.add_parser("figure2", help="run the Figure 2 case study")
    sub.add_parser("stats", help="print dataset statistics (E3)")

    tune = sub.add_parser("tune", help="run the CV parameter search (E4)")
    tune.add_argument("--folds", type=int, default=5)

    explain = sub.add_parser("explain", help="explain one customer at one window")
    explain.add_argument("--customer", type=int, required=True)
    explain.add_argument("--window", type=int, required=True)
    explain.add_argument("--top-k", type=int, default=5)

    delay = sub.add_parser(
        "delay", help="detection-delay analysis at a false-alarm budget"
    )
    delay.add_argument(
        "--far", type=float, default=0.1, help="target loyal false-alarm rate"
    )

    compare = sub.add_parser(
        "compare", help="compare all models (AUROC + lift) at key months"
    )
    compare.add_argument(
        "--months", type=int, nargs="+", default=[20, 22, 24]
    )
    compare.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help=(
            "journal directory making the comparison resumable: finished "
            "(model, month) cells are written atomically and skipped on rerun"
        ),
    )

    losses = sub.add_parser(
        "losses", help="population loss characterization (paper's future work)"
    )
    losses.add_argument("--min-share", type=float, default=0.03)
    losses.add_argument("--top", type=int, default=10)

    report = sub.add_parser("report", help="full dossier for one customer")
    report.add_argument("--customer", type=int, required=True)
    report.add_argument("--top-k", type=int, default=3)

    quality = sub.add_parser("quality", help="profile a transaction CSV")
    quality.add_argument("--log", type=Path, help="CSV to profile (default: generated)")
    quality.add_argument(
        "--lenient",
        action="store_true",
        help=(
            "quarantine malformed rows instead of aborting and print "
            "the quarantine report (only with --log)"
        ),
    )

    export = sub.add_parser("export", help="export Figure 1 series to CSV/JSON")
    export.add_argument("--out", type=Path, required=True, help="output file (.csv or .json)")

    bench = sub.add_parser(
        "bench", help="benchmark StabilityModel fit backends (perf telemetry)"
    )
    bench.add_argument(
        "--backend",
        choices=("all",) + available_engines(),
        default="all",
        help="backend to time (default: all of them)",
    )
    bench.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[25, 50, 100, 200],
        help="per-cohort sizes; total customers is twice each value",
    )
    bench.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    bench.add_argument(
        "--n-jobs", type=int, default=1, help="worker processes for the batch backend"
    )
    bench.add_argument(
        "--json", type=Path, default=None, help="write machine-readable telemetry here"
    )
    bench.add_argument(
        "--protocol-size",
        type=int,
        default=200,
        help=(
            "per-cohort size for the eval-protocol ROC-sweep scenario "
            "(0 disables it)"
        ),
    )
    bench.add_argument(
        "--resilience-size",
        type=int,
        default=100,
        help=(
            "per-cohort size for the resilient-executor overhead scenario "
            "(0 disables it)"
        ),
    )
    bench.add_argument(
        "--telemetry-size",
        type=int,
        default=200,
        help=(
            "per-cohort size for the telemetry-overhead scenario "
            "(0 disables it)"
        ),
    )
    bench.add_argument(
        "--slab-sizes",
        type=int,
        nargs="*",
        default=None,
        help=(
            "total-customer sizes for the out-of-core slab grid "
            "(mmap vs in-RAM; omit to skip, e.g. --slab-sizes 1000 10000 100000)"
        ),
    )
    bench.add_argument(
        "--slab-million",
        action="store_true",
        help="append a 1,000,000-customer cell to the slab grid (slow)",
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "statically check the determinism/atomicity/typing invariants "
            "(AST rules DET/IO/ERR/FLT/OBS/TYP, DESIGN.md §8)"
        ),
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    record = sub.add_parser(
        "record",
        help="record a synthetic scenario as a replayable basket stream",
    )
    record.add_argument(
        "--out", type=Path, required=True, help="stream file to write (JSONL)"
    )
    record.add_argument(
        "--months", type=int, default=28, help="study length in months"
    )
    record.add_argument(
        "--onset-month", type=int, default=18, help="mean attrition onset month"
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "serve a recorded stream: sharded scoring, per-batch durable "
            "checkpoints, status/score API"
        ),
    )
    serve.add_argument(
        "stream", type=Path, help="recorded stream file (see `record`)"
    )
    serve.add_argument(
        "--checkpoint-dir",
        type=Path,
        required=True,
        help=(
            "durable run directory (cursor + per-shard state + manifest); "
            "an existing valid checkpoint there is resumed"
        ),
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="checkpoint after at least this many baskets (whole days)",
    )
    serve.add_argument(
        "--n-shards", type=int, default=1, help="customer shard count"
    )
    serve.add_argument(
        "--parallel",
        action="store_true",
        help="process shards in worker processes (bit-identical either way)",
    )
    serve.add_argument("--window-months", type=int, default=2)
    serve.add_argument("--alpha", type=float, default=2.0)
    serve.add_argument(
        "--beta", type=float, default=0.5, help="alarm threshold on stability"
    )
    serve.add_argument(
        "--first-alarm-window",
        type=int,
        default=0,
        help="suppress alarms before this window index",
    )
    serve.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop (resumable) after this many batches this run",
    )
    serve.add_argument(
        "--status-port",
        type=int,
        default=0,
        help="status API port (0 = ephemeral, printed on stderr)",
    )
    serve.add_argument(
        "--no-api",
        action="store_true",
        help="do not start the HTTP status API",
    )
    serve.add_argument(
        "--parity-check",
        action="store_true",
        help=(
            "after a finished run, recompute the offline batch sweep and "
            "fail (exit 1) unless the score tables are bit-identical"
        ),
    )
    serve.add_argument(
        "--metrics-stream-out",
        type=Path,
        default=None,
        help=(
            "append live window snapshots (JSONL) here — the feed "
            "`obs tail` follows"
        ),
    )
    serve.add_argument(
        "--flight-dir",
        type=Path,
        default=None,
        help=(
            "flight-recorder output directory: a cursor fallback flushes "
            "the recent-telemetry ring to flight-<commit>.jsonl there"
        ),
    )
    serve.add_argument(
        "--publish-interval",
        type=float,
        default=2.0,
        help="minimum seconds between live metrics publishes",
    )

    soak = sub.add_parser(
        "soak",
        help=(
            "chaos/soak the serving layer: fault-scheduled load replay "
            "with enforced latency SLOs"
        ),
    )
    soak.add_argument(
        "stream", type=Path, help="recorded stream file (see `record`)"
    )
    soak.add_argument(
        "--workdir",
        type=Path,
        required=True,
        help="scratch directory for per-loop checkpoint dirs",
    )
    soak.add_argument(
        "--chaos",
        choices=("none", "smoke"),
        default="none",
        help=(
            "fault schedule: 'smoke' injects one fault per site "
            "(torn cursor, worker crash, slow shard, kill/resume, "
            "checkpoint I/O error, torn state) at batches 1..6; "
            "'none' soaks fault-free"
        ),
    )
    soak.add_argument(
        "--loops",
        type=int,
        default=1,
        help="full stream replays (ignored with --duration)",
    )
    soak.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="soak by wall clock instead of loop count",
    )
    soak.add_argument(
        "--rate",
        type=float,
        default=None,
        help="cap ingest at this many baskets/second (default unthrottled)",
    )
    soak.add_argument("--batch-size", type=int, default=256)
    soak.add_argument("--n-shards", type=int, default=2)
    soak.add_argument(
        "--parallel",
        action="store_true",
        help="worker-process shards (required for crash/slow faults)",
    )
    soak.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="per-wave shard timeout in seconds (slow faults trip it)",
    )
    soak.add_argument(
        "--slow-seconds",
        type=float,
        default=1.0,
        help="injected slow-shard stall for the smoke schedule",
    )
    soak.add_argument("--slo-p50-ms", type=float, default=None)
    soak.add_argument("--slo-p95-ms", type=float, default=None)
    soak.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        help="fail the soak if p99 per-batch score latency exceeds this",
    )
    soak.add_argument(
        "--min-throughput",
        type=float,
        default=None,
        help="fail the soak below this many baskets/second overall",
    )
    soak.add_argument(
        "--bench-out",
        type=Path,
        default=None,
        help="merge the soak scenario into this BENCH_serve.json artifact",
    )
    soak.add_argument(
        "--keep-checkpoints",
        action="store_true",
        help="keep per-loop checkpoint dirs instead of pruning them",
    )
    soak.add_argument("--window-months", type=int, default=2)
    soak.add_argument("--alpha", type=float, default=2.0)
    soak.add_argument("--beta", type=float, default=0.5)
    soak.add_argument("--first-alarm-window", type=int, default=0)
    soak.add_argument(
        "--status-port",
        type=int,
        default=None,
        help=(
            "bind the status API (with /metrics) on this port for the "
            "duration of the soak (0 = ephemeral; default: no API)"
        ),
    )
    soak.add_argument(
        "--flight-dir",
        type=Path,
        default=None,
        help=(
            "flight-recorder output directory (default: <workdir>/flight); "
            "every injected fault and SLO violation flushes an artifact"
        ),
    )
    soak.add_argument(
        "--metrics-stream-out",
        type=Path,
        default=None,
        help="append live window snapshots (JSONL) here for `obs tail`",
    )
    soak.add_argument(
        "--publish-interval",
        type=float,
        default=1.0,
        help="minimum seconds between live metrics publishes",
    )
    soak.add_argument(
        "--pin-telemetry-overhead",
        action="store_true",
        help=(
            "also measure the live plane's serve overhead (off vs on, "
            "bit-identical scores required) and merge the verdict into "
            "--bench-out under 'telemetry_plane'"
        ),
    )

    obs = sub.add_parser(
        "obs", help="inspect telemetry artifacts (traces, manifests)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="aggregate a trace JSONL into a per-span table"
    )
    summarize.add_argument(
        "trace", type=Path, help="trace JSONL written via --trace-out"
    )
    tail = obs_sub.add_parser(
        "tail",
        help=(
            "live terminal dashboard over a metrics snapshot stream "
            "(see serve/soak --metrics-stream-out)"
        ),
    )
    tail.add_argument(
        "stream", type=Path, help="window-snapshot JSONL being appended"
    )
    tail.add_argument(
        "--follow",
        action="store_true",
        help="keep redrawing as new snapshots arrive (Ctrl-C to stop)",
    )
    tail.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between redraws in --follow mode",
    )
    tail.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after this many rendered frames (tests/CI)",
    )
    return parser


def _dataset(args: argparse.Namespace):
    return paper_scenario(
        n_loyal=args.loyal, n_churners=args.churners, seed=args.seed
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    args.out.mkdir(parents=True, exist_ok=True)
    write_log_csv(dataset.log, args.out / "transactions.csv")
    write_cohorts_json(dataset.cohorts, args.out / "cohorts.json")
    from repro.data.io import write_catalog_jsonl

    write_catalog_jsonl(dataset.catalog, args.out / "catalog.jsonl")
    print(f"wrote {dataset.log.n_baskets} receipts for "
          f"{dataset.log.n_customers} customers to {args.out}")
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    config = ExperimentConfig(
        window_months=args.window_months,
        alpha=args.alpha,
        backend=args.backend,
        retries=args.retries,
        n_jobs=args.n_jobs,
    )
    result = run_figure1(
        dataset.bundle, config=config, checkpoint_dir=args.checkpoint_dir
    )
    if args.checkpoint_dir is not None:
        from repro.obs import build_manifest, get_metrics, get_tracer, write_manifest

        manifest = build_manifest(
            "figure1",
            config=config,
            dataset_fingerprint=dataset.bundle.fingerprint(),
            seed=args.seed,
            execution=result.execution,
            tracer=get_tracer(),
            metrics=get_metrics(),
        )
        path = write_manifest(args.checkpoint_dir, manifest)
        print(f"wrote run manifest to {path}")
    print(render_figure1(result))
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    del args
    print(render_figure2(run_figure2()))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    print(render_dataset_stats(dataset_stats(dataset.bundle)))
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    outcome = tune_stability_model(
        dataset.log, dataset.cohorts, dataset.calendar, n_splits=args.folds
    )
    rows = [
        (
            f"w={p['window_months']}mo alpha={p['alpha']:g}",
            f"{score:.3f}",
        )
        for p, score, _ in sorted(
            outcome.search.table, key=lambda e: -e[1]
        )
    ]
    print(format_table(("configuration", "mean CV AUROC"), rows))
    print(
        f"\nselected: window={outcome.best_window_months} months, "
        f"alpha={outcome.best_alpha:g} (AUROC {outcome.best_score:.3f}); "
        f"paper selected window=2, alpha=2"
    )
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = _dataset(args)
    if args.customer not in dataset.log:
        print(f"customer {args.customer} not in the dataset", file=sys.stderr)
        return 1
    model = StabilityModel(dataset.calendar).fit(dataset.log, [args.customer])
    explanation = model.explain(args.customer, args.window, top_k=args.top_k)
    print(
        f"customer {args.customer}, window {args.window} "
        f"(ends month {model.window_month(args.window)}): "
        f"stability={explanation.stability:.3f}"
    )
    rows = [
        (
            dataset.catalog.segment(item.item).name,
            f"{item.significance:.3f}",
            f"{item.share:.1%}",
        )
        for item in explanation.missing
    ]
    if rows:
        print(format_table(("missing segment", "significance", "share"), rows))
    else:
        print("no significant segment is missing in this window")
    return 0


def _cmd_delay(args: argparse.Namespace) -> int:
    from repro.eval.delay import detection_delay
    from repro.eval.reporting import render_delay

    dataset = _dataset(args)
    analysis = detection_delay(dataset.bundle, target_false_alarm_rate=args.far)
    print(render_delay(analysis))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.eval.campaign import compare_models
    from repro.eval.reporting import render_campaign

    dataset = _dataset(args)
    comparison = compare_models(
        dataset.bundle,
        months=tuple(args.months),
        budgets=(0.1,),
        checkpoint_dir=args.checkpoint_dir,
    )
    print(render_campaign(comparison, args.months, budget=0.1))
    return 0


def _cmd_losses(args: argparse.Namespace) -> int:
    from repro.core.characterization import profile_population

    dataset = _dataset(args)
    churners = sorted(dataset.cohorts.churners)
    model = StabilityModel(dataset.calendar).fit(dataset.log, churners)
    profile = profile_population(
        (model.trajectory(c) for c in churners), min_share=args.min_share
    )
    rows = [
        (
            dataset.catalog.segment(s.item).name,
            s.n_losses,
            f"{s.abrupt_rate:.0%}",
            f"{s.recovery_rate:.0%}",
            f"{s.mean_share:.1%}",
        )
        for s in profile.top_lost(args.top)
    ]
    print(f"{profile.n_events} loss events across {profile.n_customers} churners\n")
    print(
        format_table(
            ("segment", "losses", "abrupt", "recovered", "mean share"), rows
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.customer_report import build_customer_report, render_customer_report

    dataset = _dataset(args)
    if args.customer not in dataset.log:
        print(f"customer {args.customer} not in the dataset", file=sys.stderr)
        return 1
    model = StabilityModel(dataset.calendar).fit(dataset.log, [args.customer])
    report = build_customer_report(model, dataset.log, args.customer)
    print(render_customer_report(report, dataset.catalog, top_k=args.top_k))
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    from repro.data.io import read_log_csv
    from repro.data.quality import (
        profile_log,
        render_quality_report,
        render_quarantine_report,
    )

    if args.log is not None:
        if args.lenient:
            log, quarantine = read_log_csv(args.log, on_error="quarantine")
            if not quarantine.is_clean:
                print(render_quarantine_report(quarantine))
                print()
        else:
            log = read_log_csv(args.log)
        calendar = None
    else:
        dataset = _dataset(args)
        log = dataset.log
        calendar = dataset.calendar
    print(render_quality_report(profile_log(log, calendar=calendar)))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.viz.export import write_series_csv, write_series_json

    dataset = _dataset(args)
    result = run_figure1(dataset.bundle)
    months = result.months()
    series = {
        "stability_auroc": result.stability.values(),
        "rfm_auroc": result.rfm.values(),
    }
    if args.out.suffix == ".json":
        write_series_json(
            args.out,
            months,
            series,
            x_name="month",
            metadata={
                "onset_month": result.onset_month,
                "window_months": result.window_months,
                "alpha": result.alpha,
            },
        )
    else:
        write_series_csv(args.out, months, series, x_name="month")
    print(f"wrote Figure 1 series to {args.out}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.errors import SchemaError
    from repro.obs import read_trace_jsonl, render_span_summary, summarize_spans

    if args.obs_command == "summarize":
        try:
            records = read_trace_jsonl(args.trace)
        except (OSError, SchemaError) as exc:
            # Exit 2 = unusable input (missing/corrupt artifact), kept
            # distinct from exit 1 (the command ran and found a problem)
            # so scripts can tell the two apart.
            print(f"obs summarize: cannot read trace: {exc}", file=sys.stderr)
            return 2
        if not records:
            print(f"{args.trace}: trace is empty")
            return 0
        print(f"{args.trace}: {len(records)} span(s)")
        print(render_span_summary(summarize_spans(records)))
    elif args.obs_command == "tail":
        from repro.obs.tail import tail_stream

        try:
            frames = tail_stream(
                args.stream,
                sys.stdout,
                follow=args.follow,
                interval_s=args.interval,
                max_frames=args.frames,
            )
        except SchemaError as exc:
            print(f"obs tail: cannot read stream: {exc}", file=sys.stderr)
            return 2
        print(f"rendered {frames} frame(s)", file=sys.stderr)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval.benchmarking import (
        protocol_telemetry,
        render_scaling,
        resilience_telemetry,
        scaling_telemetry,
        slab_grid_telemetry,
        telemetry_overhead,
        write_scaling_json,
    )

    backends = (
        available_engines() if args.backend == "all" else (args.backend,)
    )
    telemetry = scaling_telemetry(
        sizes=tuple(args.sizes),
        seed=args.seed,
        backends=backends,
        repeat=args.repeat,
        n_jobs=args.n_jobs,
    )
    if args.protocol_size > 0:
        telemetry["eval_protocol"] = protocol_telemetry(
            size=args.protocol_size, seed=args.seed, repeat=args.repeat
        )
    if args.resilience_size > 0:
        telemetry["resilient_executor"] = resilience_telemetry(
            size=args.resilience_size,
            seed=args.seed,
            repeat=args.repeat,
            n_jobs=max(args.n_jobs, 2),
        )
    if args.telemetry_size > 0:
        telemetry["telemetry_overhead"] = telemetry_overhead(
            size=args.telemetry_size, seed=args.seed, repeat=args.repeat
        )
    slab_sizes = list(args.slab_sizes) if args.slab_sizes else []
    if args.slab_million:
        slab_sizes.append(1_000_000)
    if slab_sizes:
        telemetry["slab_grid"] = slab_grid_telemetry(
            sizes=tuple(slab_sizes), seed=args.seed
        )
    print(f"stability fit scaling (best-of-{args.repeat} wall clock)")
    print(render_scaling(telemetry))
    if args.json is not None:
        write_scaling_json(args.json, telemetry)
        print(f"wrote telemetry to {args.json}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.synth.stream import record_stream, stream_fingerprint

    dataset = paper_scenario(
        n_loyal=args.loyal,
        n_churners=args.churners,
        seed=args.seed,
        n_months=args.months,
        onset_month=args.onset_month,
    )
    baskets = sorted(dataset.log, key=lambda b: (b.day, b.customer_id))
    path = record_stream(
        baskets,
        args.out,
        calendar=dataset.calendar,
        meta={
            "seed": args.seed,
            "n_loyal": args.loyal,
            "n_churners": args.churners,
        },
    )
    print(
        f"recorded {len(baskets)} baskets / "
        f"{dataset.log.n_customers} customers to {path} "
        f"(fingerprint {stream_fingerprint(path)})"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.obs import (
        FlightRecorder,
        MetricsPublisher,
        MetricsRegistry,
        metrics_enabled,
        use_metrics,
    )
    from repro.serve import (
        StatusBoard,
        StatusServer,
        offline_sweep_stream,
        serve_stream,
    )

    if not args.stream.exists():
        print(f"stream file not found: {args.stream}", file=sys.stderr)
        return 1
    config = ExperimentConfig(
        window_months=args.window_months, alpha=args.alpha
    )
    stop_requested = {"flag": False}

    def _request_stop(signum: int, frame: object) -> None:
        del frame
        stop_requested["flag"] = True
        print(
            f"signal {signum}: stopping after the current batch commits "
            "(rerun to resume)",
            file=sys.stderr,
        )

    previous = {
        sig: signal.signal(sig, _request_stop)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    board = StatusBoard()
    server: StatusServer | None = None
    # The live telemetry plane rides along whenever it has a consumer:
    # the status API (/metrics), a JSONL stream file, or a flight dir.
    plane_on = (
        not args.no_api
        or args.metrics_stream_out is not None
        or args.flight_dir is not None
    )
    publisher = None
    if plane_on:
        publisher = MetricsPublisher(
            board=board,
            flight=(
                FlightRecorder(args.flight_dir)
                if args.flight_dir is not None
                else None
            ),
            stream_path=args.metrics_stream_out,
            interval_s=args.publish_interval,
        )
    # The publisher samples the active registry; when no --metrics-out
    # session installed one, give the plane its own private registry
    # (scores stay bit-identical either way — pinned by the bench).
    registry_cm = (
        use_metrics(MetricsRegistry())
        if plane_on and not metrics_enabled()
        else nullcontext()
    )
    try:
        if not args.no_api:
            server = StatusServer(board, port=args.status_port)
            print(
                f"status API on http://127.0.0.1:{server.start()}/status",
                file=sys.stderr,
            )
        with registry_cm:
            result = serve_stream(
                args.stream,
                args.checkpoint_dir,
                batch_size=args.batch_size,
                n_shards=args.n_shards,
                parallel=args.parallel,
                config=config,
                beta=args.beta,
                first_alarm_window=args.first_alarm_window,
                status=board,
                publisher=publisher,
                max_batches=args.max_batches,
                should_stop=lambda: stop_requested["flag"],
            )
    finally:
        if server is not None:
            server.stop()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    counters = result.counters
    print(
        f"served {result.batches_this_run} batch(es) this run "
        f"({result.batches_reworked} reworked), cursor at "
        f"{result.day_batches_consumed} day(s)"
        f"{' [resumed]' if result.resumed else ''}"
    )
    print(
        format_table(
            ("counter", "value"),
            [
                ("ingested", counters.ingested),
                ("scored", counters.scored),
                ("flagged", counters.flagged),
                ("checkpointed", counters.checkpointed),
            ],
        )
    )
    flagged = sum(1 for f in result.flags.values() if f)
    print(
        f"{flagged}/{len(result.flags)} customers flagged; "
        f"score fingerprint {result.fingerprint()}"
    )
    if not result.finished:
        print(
            f"interrupted; rerun with the same --checkpoint-dir to resume "
            f"from {result.checkpoint_dir}",
            file=sys.stderr,
        )
        return 3
    if args.parity_check:
        reference = offline_sweep_stream(
            args.stream,
            config=config,
            beta=args.beta,
            first_alarm_window=args.first_alarm_window,
        )
        if reference.fingerprint() != result.fingerprint():
            print(
                f"PARITY MISMATCH: offline sweep fingerprint "
                f"{reference.fingerprint()} != served "
                f"{result.fingerprint()}",
                file=sys.stderr,
            )
            return 1
        print(
            f"parity OK: offline sweep matches bit-for-bit "
            f"({reference.fingerprint()})"
        )
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.errors import ConfigError
    from repro.eval.benchmarking import merge_scaling_json
    from repro.obs import FlightRecorder, MetricsPublisher
    from repro.serve import StatusBoard, StatusServer
    from repro.soak import (
        ChaosSchedule,
        SoakPlan,
        live_plane_overhead,
        render_soak,
        run_soak,
        stream_shape,
        write_bench,
    )

    if not args.stream.exists():
        print(f"stream file not found: {args.stream}", file=sys.stderr)
        return 1
    config = ExperimentConfig(
        window_months=args.window_months, alpha=args.alpha
    )
    board = StatusBoard()
    server: StatusServer | None = None
    flight_dir = (
        args.flight_dir if args.flight_dir is not None else args.workdir / "flight"
    )
    publisher = MetricsPublisher(
        board=board,
        flight=FlightRecorder(flight_dir),
        stream_path=args.metrics_stream_out,
        interval_s=args.publish_interval,
    )
    try:
        plan = SoakPlan(
            mode="duration" if args.duration is not None else "loops",
            loops=args.loops,
            duration_s=args.duration if args.duration is not None else 0.0,
            rate=args.rate,
            batch_size=args.batch_size,
            n_shards=args.n_shards,
            parallel=args.parallel,
            shard_timeout_s=args.shard_timeout,
            slo_p50_ms=args.slo_p50_ms,
            slo_p95_ms=args.slo_p95_ms,
            slo_p99_ms=args.slo_p99_ms,
            min_throughput=args.min_throughput,
        )
        chaos = None
        if args.chaos == "smoke":
            n_batches, _ = stream_shape(args.stream, plan.batch_size)
            chaos = ChaosSchedule.smoke(
                n_batches, slow_seconds=args.slow_seconds
            )
        if args.status_port is not None:
            server = StatusServer(board, port=args.status_port)
            print(
                f"status API on http://127.0.0.1:{server.start()}/status "
                "(live exposition on /metrics)",
                file=sys.stderr,
            )
        report = run_soak(
            args.stream,
            args.workdir,
            plan,
            chaos,
            config=config,
            beta=args.beta,
            first_alarm_window=args.first_alarm_window,
            keep_checkpoints=args.keep_checkpoints,
            status=board,
            publisher=publisher,
        )
    except ConfigError as exc:
        print(f"soak configuration error: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.stop()
    print(render_soak(report))
    if publisher.flight is not None and publisher.flight.flushed:
        print(
            f"flight recorder: {len(publisher.flight.flushed)} artifact(s) "
            f"in {flight_dir}",
            file=sys.stderr,
        )
    if args.bench_out is not None:
        write_bench(report, args.bench_out)
        print(f"wrote bench artifact to {args.bench_out}", file=sys.stderr)
    if args.pin_telemetry_overhead:
        verdict = live_plane_overhead(
            args.stream, batch_size=args.batch_size
        )
        print(
            f"live plane overhead: {verdict['overhead_pct']:.2f}% "
            f"(budget {verdict['budget_pct']}%, "
            f"{'ok' if verdict['ok'] else 'OVER BUDGET'}; scores bit-identical)"
        )
        if args.bench_out is not None:
            merge_scaling_json(args.bench_out, {"telemetry_plane": verdict})
        if not verdict["ok"]:
            return 1
    return 0 if report.passed else 1


_COMMANDS = {
    "bench": _cmd_bench,
    "lint": _cmd_lint,
    "record": _cmd_record,
    "serve": _cmd_serve,
    "soak": _cmd_soak,
    "obs": _cmd_obs,
    "generate": _cmd_generate,
    "report": _cmd_report,
    "quality": _cmd_quality,
    "export": _cmd_export,
    "figure1": _cmd_figure1,
    "figure2": _cmd_figure2,
    "stats": _cmd_stats,
    "tune": _cmd_tune,
    "explain": _cmd_explain,
    "delay": _cmd_delay,
    "compare": _cmd_compare,
    "losses": _cmd_losses,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    session = TelemetrySession(args.trace_out, args.metrics_out)
    with session:
        code = _COMMANDS[args.command](args)
    if session.trace_out is not None:
        print(f"wrote trace to {session.trace_out}", file=sys.stderr)
    if session.metrics_out is not None:
        print(f"wrote metrics to {session.metrics_out}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
