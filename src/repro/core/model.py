"""The public facade of the paper's contribution: :class:`StabilityModel`.

The model binds together an :class:`~repro.config.ExperimentConfig`, a
significance rule and the stability/explanation machinery, and exposes
the operations the evaluation protocol and a retailer's application code
need:

* ``fit(log)`` — compute the stability trajectory of every customer;
  also accepts a pre-built
  :class:`~repro.data.population.PopulationFrame` so the encoding cost
  is paid once per dataset, not once per model;
* ``trajectory(customer)`` — inspect one customer;
* ``churn_scores(window)`` — continuous churn score per customer at an
  evaluation window, ready for ROC analysis or campaign ranking;
* ``explain(customer, window, k)`` — the paper's argmax-missing-item
  explanation, extended to top-K.

Engine selection goes through the registry in
:mod:`repro.core.engines`: ``backend="incremental"|"vectorized"|"batch"``
are registered implementations of one protocol, not an if/elif chain.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

import numpy as np

from repro.config import ExperimentConfig
from repro.core.batch import BatchStability
from repro.core.detector import Alarm, ThresholdDetector
from repro.core.engines import FitSpec, frame_windowed_history, get_engine
from repro.core.explanation import DropExplanation, explain_window
from repro.core.significance import ExponentialSignificance, SignificanceFunction
from repro.core.stability import (
    StabilityTrajectory,
    WindowStability,
    stability_trajectory,
)
from repro.core.windowing import Window, windowed_history
from repro.data.calendar import StudyCalendar
from repro.data.population import PopulationFrame
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, DataError, NotFittedError

if TYPE_CHECKING:
    from repro.runtime.executor import ExecutionReport

__all__ = ["StabilityModel"]


class StabilityModel:
    """Customer-stability attrition model (Gautrais et al., EDBT 2016).

    Parameters
    ----------
    calendar:
        Study calendar the transaction log's day offsets refer to.
    window_months:
        Window span ``w`` in whole months (the paper uses 2).
    alpha:
        Base of the exponential significance rule (the paper uses 2).
        Ignored when ``significance`` is given explicitly.
    significance:
        Custom significance rule; overrides ``alpha``.
    item_weights:
        Optional per-item weights (e.g. segment prices) producing
        revenue-weighted stability; see
        :func:`~repro.core.stability.stability_trajectory`.
    config:
        The validated :class:`~repro.config.ExperimentConfig` carrying
        ``window_months`` / ``alpha`` / ``backend`` / ``n_jobs`` /
        ``counting`` in one object.  When given, ``window_months`` and
        ``alpha`` must be left at their defaults.

        Engine selection lives on the config: ``backend`` names a
        registered fit/score engine (:mod:`repro.core.engines`) —
        ``"incremental"`` (default, flexible, every significance rule /
        counting scheme / item weighting, full per-window significance
        snapshots), ``"vectorized"`` (per-customer numpy kernel) or
        ``"batch"`` (population-scale columnar engine, optionally
        sharded over ``n_jobs`` worker processes).  The numpy backends
        support only the paper's exponential significance with the
        ``"paper"`` counting scheme and no item weights
        (a :class:`~repro.errors.ConfigError` otherwise); their
        stability values agree exactly with the incremental engine
        (differentially tested), and :meth:`explain` transparently
        recomputes missing significance snapshots through the
        incremental engine.

    Examples
    --------
    >>> from repro.data import Basket, StudyCalendar, TransactionLog
    >>> calendar = StudyCalendar.paper()
    >>> log = TransactionLog()
    >>> for month in range(6):
    ...     day = calendar.month_start_day(month)
    ...     log.add(Basket.of(customer_id=7, day=day, items=[1, 2]))
    >>> model = StabilityModel(calendar, window_months=2, alpha=2).fit(log)
    >>> model.trajectory(7).at(2).stability
    1.0
    """

    def __init__(
        self,
        calendar: StudyCalendar,
        window_months: int = 2,
        alpha: float = 2.0,
        significance: SignificanceFunction | None = None,
        item_weights: dict[int, float] | None = None,
        config: ExperimentConfig | None = None,
    ) -> None:
        if config is None:
            # Convenience construction: fold the loose kwargs into the
            # canonical config.  When a non-exponential rule is supplied,
            # alpha is meaningless — keep the config's default so it
            # cannot trip validation.
            if significance is not None and not isinstance(
                significance, ExponentialSignificance
            ):
                alpha = 2.0
            elif isinstance(significance, ExponentialSignificance):
                alpha = significance.alpha
            config = ExperimentConfig(
                window_months=window_months,
                alpha=alpha,
            )
        self.config = config
        self.calendar = calendar
        self.significance: SignificanceFunction = (
            significance if significance is not None else config.significance()
        )
        self.item_weights = dict(item_weights) if item_weights is not None else None
        self._engine = get_engine(config.backend)
        self._spec = FitSpec(
            significance=self.significance,
            counting=config.counting,
            item_weights=self.item_weights,
            n_jobs=config.n_jobs,
            retries=config.retries,
        )
        self._engine.validate(self._spec)
        self.grid = config.grid(calendar)
        self._frame: PopulationFrame | None = None
        self._trajectories: dict[int, StabilityTrajectory] | None = None
        self._batch: BatchStability | None = None
        self._fit_log: TransactionLog | None = None
        self._snapshot_cache: dict[
            tuple[int, ExperimentConfig], StabilityTrajectory
        ] = {}

    @classmethod
    def from_config(
        cls, calendar: StudyCalendar, config: ExperimentConfig
    ) -> StabilityModel:
        """The model a validated config describes."""
        return cls(calendar, config=config)

    # ------------------------------------------------------------------
    # Legacy attribute shims
    # ------------------------------------------------------------------
    @property
    def window_months(self) -> int:
        return self.config.window_months

    @property
    def counting(self) -> str:
        return self.config.counting

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def n_jobs(self) -> int:
        return self.config.n_jobs

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        log: TransactionLog | PopulationFrame,
        customers: Iterable[int] | None = None,
    ) -> StabilityModel:
        """Compute stability trajectories for customers in the log.

        Parameters
        ----------
        log:
            Segment-level transaction log, or a pre-built
            :class:`~repro.data.population.PopulationFrame` on this
            model's grid (the frame is reused as-is — zero re-encoding).
        customers:
            Restrict to these customers (default: everyone in the log /
            frame).
        """
        frame = self._as_frame(log, customers)
        self._frame = frame
        self._fit_log = frame.log
        self._batch = None
        self._snapshot_cache = {}
        result = self._engine.fit(frame, self._spec)
        if result.batch is not None:
            self._batch = result.batch
            self._trajectories = {}
        else:
            self._trajectories = result.trajectories
        return self

    def _as_frame(
        self,
        log: TransactionLog | PopulationFrame,
        customers: Iterable[int] | None,
    ) -> PopulationFrame:
        if isinstance(log, PopulationFrame):
            if log.grid != self.grid:
                raise ConfigError(
                    "PopulationFrame grid does not match the model's grid; "
                    "build the frame with the same ExperimentConfig"
                )
            if customers is None:
                return log
            if log.log is None:
                raise ConfigError(
                    "cannot restrict a log-less PopulationFrame to a "
                    "customer subset; pass the TransactionLog instead"
                )
            return PopulationFrame.from_log(log.log, self.grid, customers)
        return PopulationFrame.from_log(log, self.grid, customers)

    def _alpha(self) -> float:
        """The exponential base (numpy backends are gated to this rule)."""
        assert isinstance(self.significance, ExponentialSignificance)
        return self.significance.alpha

    def _batch_trajectory(self, customer_id: int) -> StabilityTrajectory:
        assert self._batch is not None and self._trajectories is not None
        try:
            row = self._batch.row_of(customer_id)
        except ConfigError:
            raise DataError(f"customer {customer_id} was not fitted") from None
        items_per_window = self._batch.population.window_items(row)
        records = tuple(
            WindowStability(
                window=Window(
                    index=k,
                    begin_day=self.grid.boundaries[k],
                    end_day=self.grid.boundaries[k + 1],
                    items=items_per_window[k],
                ),
                stability=float(self._batch.stability[row, k]),
                kept_mass=float(self._batch.kept_mass[row, k]),
                total_mass=float(self._batch.total_mass[row, k]),
                significances={},
            )
            for k in range(self._batch.population.n_windows)
        )
        trajectory = StabilityTrajectory(customer_id=customer_id, records=records)
        self._trajectories[customer_id] = trajectory
        return trajectory

    @property
    def is_fitted(self) -> bool:
        return self._trajectories is not None or self._batch is not None

    @property
    def execution_report(self) -> ExecutionReport | None:
        """The resilient executor's report for the last sharded batch fit.

        ``None`` unless the fit ran ``backend="batch"`` with ``n_jobs >
        1`` (serial fits have no workers to isolate).  See
        :class:`~repro.runtime.executor.ExecutionReport` for what it
        records (retries, degradations, wall time).
        """
        return self._batch.execution if self._batch is not None else None

    def _fitted(self) -> dict[int, StabilityTrajectory]:
        if self._trajectories is None:
            raise NotFittedError("StabilityModel used before fit")
        return self._trajectories

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        """Number of windows on the model's grid."""
        return self.grid.n_windows

    def customers(self) -> list[int]:
        """Sorted customers with a fitted trajectory."""
        trajectories = self._fitted()
        if self._batch is not None:
            return [int(c) for c in self._batch.customer_ids]
        return sorted(trajectories)

    def trajectory(self, customer_id: int) -> StabilityTrajectory:
        """Stability trajectory of one fitted customer.

        Under the batch backend trajectories materialise lazily from the
        population arrays (and are cached); see the ``backend`` parameter
        for what lazily-built records do and do not carry.
        """
        trajectories = self._fitted()
        if self._batch is not None and customer_id not in trajectories:
            return self._batch_trajectory(customer_id)
        try:
            return trajectories[customer_id]
        except KeyError:
            raise DataError(f"customer {customer_id} was not fitted") from None

    def stability_at(self, customer_id: int, window_index: int) -> float:
        """``Stability_i^k`` (``nan`` when undefined)."""
        if self._batch is not None:
            self._fitted()
            try:
                row = self._batch.row_of(customer_id)
            except ConfigError:
                raise DataError(f"customer {customer_id} was not fitted") from None
            if not 0 <= window_index < self._batch.population.n_windows:
                raise ConfigError(
                    f"window index {window_index} out of range "
                    f"[0, {self._batch.population.n_windows})"
                )
            return float(self._batch.stability[row, window_index])
        return self.trajectory(customer_id).at(window_index).stability

    def churn_scores(
        self, window_index: int, customers: Iterable[int] | None = None
    ) -> dict[int, float]:
        """Churn score (``1 - stability``) per customer at a window.

        Higher means more likely defecting; undefined stability maps to a
        neutral 0.5 (see :meth:`StabilityTrajectory.churn_score`).  Under
        the batch backend the whole population is read off the stability
        matrix in one vectorised slice.
        """
        selected = list(customers) if customers is not None else self.customers()
        if self._batch is not None:
            self._fitted()
            if not 0 <= window_index < self._batch.population.n_windows:
                raise ConfigError(
                    f"window index {window_index} out of range "
                    f"[0, {self._batch.population.n_windows})"
                )
            ids = np.asarray(selected, dtype=np.int64)
            known = self._batch.customer_ids
            rows = np.searchsorted(known, ids)
            rows_safe = np.minimum(rows, len(known) - 1) if len(known) else rows
            if not len(known) or (known[rows_safe] != ids).any():
                missing = (
                    selected[0]
                    if not len(known)
                    else int(ids[known[rows_safe] != ids][0])
                )
                raise DataError(f"customer {missing} was not fitted")
            stability = self._batch.stability[rows_safe, window_index]
            churn = np.where(np.isnan(stability), 0.5, 1.0 - stability)
            return {
                int(customer_id): float(score)
                for customer_id, score in zip(ids, churn, strict=True)
            }
        return {
            customer_id: self.trajectory(customer_id).churn_score(window_index)
            for customer_id in selected
        }

    def _snapshot_trajectory(self, customer_id: int) -> StabilityTrajectory:
        """A trajectory with full significance snapshots, whatever backend.

        The numpy backends drop per-window snapshots for speed; when the
        explanation layer needs them this recomputes one customer through
        the incremental engine, memoised per ``(customer, config)`` so a
        second ``explain()`` on the same customer does no kernel work.
        """
        if self.config.backend == "incremental":
            return self.trajectory(customer_id)
        self.trajectory(customer_id)  # validates fitted state + customer id
        key = (customer_id, self.config)
        if key not in self._snapshot_cache:
            if self._fit_log is not None:
                windows = windowed_history(
                    self._fit_log.history(customer_id), self.grid
                )
            else:
                # Log-less fit (slab-backed / sharded frame): rebuild the
                # windowed history from the columnar levels instead.
                assert self._frame is not None
                windows = frame_windowed_history(
                    self._frame, self._frame.row_of(customer_id)
                )
            self._snapshot_cache[key] = stability_trajectory(
                customer_id,
                windows,
                significance=self.significance,
                counting=self.config.counting,
                item_weights=self.item_weights,
            )
        return self._snapshot_cache[key]

    def explain(
        self, customer_id: int, window_index: int, top_k: int = 5
    ) -> DropExplanation:
        """Top-K most significant items the customer stopped buying."""
        explanation = explain_window(
            self._snapshot_trajectory(customer_id), window_index
        )
        return DropExplanation(
            customer_id=explanation.customer_id,
            window_index=explanation.window_index,
            stability=explanation.stability,
            missing=explanation.top_items(top_k),
            newly_missing=explanation.newly_missing[:top_k],
        )

    def detect(self, beta: float, first_month: int = 12) -> list[Alarm]:
        """First alarm per customer under the paper's threshold rule.

        ``first_month`` is the burn-in: windows ending before it are not
        monitored (stability is noisy while significance counts are
        small).  The default matches the start of the paper's evaluation
        axis.
        """
        detector = ThresholdDetector(beta)
        first_window = next(
            (
                k
                for k in range(self.n_windows)
                if self.window_month(k) >= first_month
            ),
            self.n_windows,
        )
        if self._batch is not None:
            self._fitted()
            return self._detect_batch(detector.beta, first_window)
        alarms = []
        for customer_id in self.customers():
            alarm = detector.first_alarm(
                self.trajectory(customer_id), first_window=first_window
            )
            if alarm is not None:
                alarms.append(alarm)
        return alarms

    def _detect_batch(self, beta: float, first_window: int) -> list[Alarm]:
        """Vectorised first-alarm scan over the batch stability matrix."""
        assert self._batch is not None
        stability = self._batch.stability[:, first_window:]
        if stability.shape[1] == 0:
            return []
        with np.errstate(invalid="ignore"):
            fired = ~np.isnan(stability) & (stability <= beta)
        has_alarm = fired.any(axis=1)
        first_offsets = np.argmax(fired, axis=1)
        return [
            Alarm(
                customer_id=int(self._batch.customer_ids[row]),
                window_index=int(first_window + first_offsets[row]),
                stability=float(stability[row, first_offsets[row]]),
            )
            for row in np.flatnonzero(has_alarm)
        ]

    def window_month(self, window_index: int) -> int:
        """Months elapsed at the end of a window (Figure 1's x axis)."""
        return self.grid.end_month(window_index, self.calendar)
