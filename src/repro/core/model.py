"""The public facade of the paper's contribution: :class:`StabilityModel`.

The model binds together a window grid, a significance rule and the
stability/explanation machinery, and exposes the operations the
evaluation protocol and a retailer's application code need:

* ``fit(log)`` — compute the stability trajectory of every customer;
* ``trajectory(customer)`` — inspect one customer;
* ``churn_scores(window)`` — continuous churn score per customer at an
  evaluation window, ready for ROC analysis or campaign ranking;
* ``explain(customer, window, k)`` — the paper's argmax-missing-item
  explanation, extended to top-K.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.detector import Alarm, ThresholdDetector
from repro.core.explanation import DropExplanation, explain_window
from repro.core.significance import ExponentialSignificance, SignificanceFunction
from repro.core.stability import StabilityTrajectory, stability_trajectory
from repro.core.windowing import WindowGrid, windowed_history
from repro.data.calendar import StudyCalendar
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, DataError, NotFittedError

__all__ = ["StabilityModel"]


class StabilityModel:
    """Customer-stability attrition model (Gautrais et al., EDBT 2016).

    Parameters
    ----------
    calendar:
        Study calendar the transaction log's day offsets refer to.
    window_months:
        Window span ``w`` in whole months (the paper uses 2).
    alpha:
        Base of the exponential significance rule (the paper uses 2).
        Ignored when ``significance`` is given explicitly.
    significance:
        Custom significance rule; overrides ``alpha``.
    counting:
        Absence-counting scheme, see
        :class:`~repro.core.significance.SignificanceTracker`.
    item_weights:
        Optional per-item weights (e.g. segment prices) producing
        revenue-weighted stability; see
        :func:`~repro.core.stability.stability_trajectory`.

    Examples
    --------
    >>> from repro.data import Basket, StudyCalendar, TransactionLog
    >>> calendar = StudyCalendar.paper()
    >>> log = TransactionLog()
    >>> for month in range(6):
    ...     day = calendar.month_start_day(month)
    ...     log.add(Basket.of(customer_id=7, day=day, items=[1, 2]))
    >>> model = StabilityModel(calendar, window_months=2, alpha=2).fit(log)
    >>> model.trajectory(7).at(2).stability
    1.0
    """

    def __init__(
        self,
        calendar: StudyCalendar,
        window_months: int = 2,
        alpha: float = 2.0,
        significance: SignificanceFunction | None = None,
        counting: str = "paper",
        item_weights: dict[int, float] | None = None,
    ) -> None:
        if window_months <= 0:
            raise ConfigError(f"window_months must be positive, got {window_months}")
        self.calendar = calendar
        self.window_months = int(window_months)
        self.significance = (
            significance if significance is not None else ExponentialSignificance(alpha)
        )
        self.counting = counting
        self.item_weights = dict(item_weights) if item_weights is not None else None
        self.grid = WindowGrid.monthly(calendar, self.window_months)
        self._trajectories: dict[int, StabilityTrajectory] | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, log: TransactionLog, customers: Iterable[int] | None = None) -> "StabilityModel":
        """Compute stability trajectories for customers in the log.

        Parameters
        ----------
        log:
            Segment-level transaction log.
        customers:
            Restrict to these customers (default: everyone in the log).
        """
        selected = list(customers) if customers is not None else log.customers()
        trajectories: dict[int, StabilityTrajectory] = {}
        for customer_id in selected:
            windows = windowed_history(log.history(customer_id), self.grid)
            trajectories[customer_id] = stability_trajectory(
                customer_id,
                windows,
                significance=self.significance,
                counting=self.counting,
                item_weights=self.item_weights,
            )
        self._trajectories = trajectories
        return self

    @property
    def is_fitted(self) -> bool:
        return self._trajectories is not None

    def _fitted(self) -> dict[int, StabilityTrajectory]:
        if self._trajectories is None:
            raise NotFittedError("StabilityModel used before fit")
        return self._trajectories

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        """Number of windows on the model's grid."""
        return self.grid.n_windows

    def customers(self) -> list[int]:
        """Sorted customers with a fitted trajectory."""
        return sorted(self._fitted())

    def trajectory(self, customer_id: int) -> StabilityTrajectory:
        """Stability trajectory of one fitted customer."""
        trajectories = self._fitted()
        try:
            return trajectories[customer_id]
        except KeyError:
            raise DataError(f"customer {customer_id} was not fitted") from None

    def stability_at(self, customer_id: int, window_index: int) -> float:
        """``Stability_i^k`` (``nan`` when undefined)."""
        return self.trajectory(customer_id).at(window_index).stability

    def churn_scores(
        self, window_index: int, customers: Iterable[int] | None = None
    ) -> dict[int, float]:
        """Churn score (``1 - stability``) per customer at a window.

        Higher means more likely defecting; undefined stability maps to a
        neutral 0.5 (see :meth:`StabilityTrajectory.churn_score`).
        """
        selected = list(customers) if customers is not None else self.customers()
        return {
            customer_id: self.trajectory(customer_id).churn_score(window_index)
            for customer_id in selected
        }

    def explain(
        self, customer_id: int, window_index: int, top_k: int = 5
    ) -> DropExplanation:
        """Top-K most significant items the customer stopped buying."""
        explanation = explain_window(self.trajectory(customer_id), window_index)
        return DropExplanation(
            customer_id=explanation.customer_id,
            window_index=explanation.window_index,
            stability=explanation.stability,
            missing=explanation.top_items(top_k),
            newly_missing=explanation.newly_missing[:top_k],
        )

    def detect(self, beta: float, first_month: int = 12) -> list[Alarm]:
        """First alarm per customer under the paper's threshold rule.

        ``first_month`` is the burn-in: windows ending before it are not
        monitored (stability is noisy while significance counts are
        small).  The default matches the start of the paper's evaluation
        axis.
        """
        detector = ThresholdDetector(beta)
        first_window = next(
            (
                k
                for k in range(self.n_windows)
                if self.window_month(k) >= first_month
            ),
            self.n_windows,
        )
        alarms = []
        for customer_id in self.customers():
            alarm = detector.first_alarm(
                self.trajectory(customer_id), first_window=first_window
            )
            if alarm is not None:
                alarms.append(alarm)
        return alarms

    def window_month(self, window_index: int) -> int:
        """Months elapsed at the end of a window (Figure 1's x axis)."""
        return self.grid.end_month(window_index, self.calendar)
