"""Population-scale batched stability engine.

The third implementation of the paper's stability definition, built for
whole-population throughput rather than per-customer clarity:

* the transaction log is encoded **once** into flat columnar arrays
  (:meth:`~repro.data.transactions.TransactionLog.to_columnar`), then
  windowed and deduplicated into ``(customer, item, window)`` presence
  triples grouped CSR-style by ``(customer, item)`` pair — the
  :class:`~repro.data.population.PopulationFrame` data plane, which
  since its promotion to :mod:`repro.data` also feeds the evaluation
  protocol and the RFM baselines;
* significance and stability for **all customers × all windows** come out
  of a handful of numpy segment operations
  (:func:`stability_matrix`): per-pair shifted cumulative presence
  counts, the log-space saturated exponential rule (identical to
  :class:`~repro.core.significance.ExponentialSignificance`), and
  empty-segment-safe ``reduceat`` sums over the customer axis;
* scoring one window for the whole population
  (:func:`batch_churn_scores`) slices the cumulative-count math at ``k``
  — no per-customer trajectory recomputation;
* the customer axis shards across worker processes (``n_jobs``) for
  multi-core fits, behind the fault-isolating
  :func:`~repro.runtime.executor.run_sharded` protocol: a shard whose
  worker dies (OOM kill, pickling failure, timeout) is retried with
  backoff and finally recomputed serially in-process, so the fit always
  completes with bit-identical results and an attached
  :class:`~repro.runtime.executor.ExecutionReport`;
* a frame memory-mapped from an on-disk slab store
  (:meth:`PopulationFrame.from_slabs`, ``store_path`` set) fits
  **out-of-core**: the serial path runs the kernel one store shard at a
  time so the dense per-shard matrices are the only transient
  allocation, and the sharded path sends workers a slab *reference*
  (store path + customer row range) instead of a pickled frame — each
  worker maps the store itself, keeping fork/spawn payloads and
  per-worker RSS flat as the population grows.

Like :mod:`repro.core.vectorized`, only the exponential significance and
the ``"paper"`` counting scheme are supported; anything else stays on the
flexible incremental engine.  Exact agreement with both other
implementations is pinned by differential tests.
"""

from __future__ import annotations

import math
import os
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.significance import validate_alpha
from repro.core.windowing import WindowGrid
from repro.data.population import PopulationFrame
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError
from repro.obs import span, timed_stage
from repro.obs.metrics import STAGE_NORMALIZE, STAGE_SIGNIFICANCE
from repro.runtime.executor import ExecutionReport, run_sharded
from repro.runtime.faults import FaultPlan

__all__ = [
    "PopulationFrame",
    "BatchStability",
    "stability_matrix",
    "batch_churn_scores",
    "significance_from_counts",
]

#: Saturation cap matching ExponentialSignificance._MAX_LOG.
_MAX_LOG = 700.0


def significance_from_counts(
    counts: np.ndarray, n_prior_windows: int | np.ndarray, alpha: float = 2.0
) -> np.ndarray:
    """Exponential significance from prior-presence counts, vectorised.

    ``counts[i]`` is ``c`` for one item; ``n_prior_windows`` is ``k``
    (scalar or per-element), so ``l = k - c`` and the margin is
    ``c - l = 2c - k``.  The score is computed in log space with the same
    saturation cap as the scalar rule, and is 0 where ``c == 0``.

    This is the one significance kernel shared by the batch engine, the
    single-window population scorer and the streaming monitor's window
    close.
    """
    counts = np.asarray(counts, dtype=np.float64)
    margin = 2.0 * counts - np.asarray(n_prior_windows, dtype=np.float64)
    significance = np.exp(np.minimum(margin * math.log(alpha), _MAX_LOG))
    return np.where(counts > 0.0, significance, 0.0)


def _segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum ``values`` over contiguous row segments ``[offsets[i], offsets[i+1])``.

    Empty segments sum to 0 (plain ``np.add.reduceat`` would repeat the
    boundary row instead).  Each segment is summed independently
    left-to-right, so huge (saturated) values in one customer cannot
    contaminate another's sum — which a cumsum-and-subtract scheme would
    do through catastrophic cancellation.
    """
    starts = offsets[:-1]
    out_shape = (len(starts),) + values.shape[1:]
    out = np.zeros(out_shape, dtype=np.float64)
    # reduceat over the non-empty starts only: segments tile the row axis,
    # so each non-empty start's successor in the index list is exactly its
    # own end (empty segments collapse to the same boundary), and the last
    # one runs to the end of the array.  Feeding empty starts to reduceat
    # instead would repeat boundary rows and corrupt neighbouring sums.
    nonempty = starts < offsets[1:]
    if nonempty.any():
        out[nonempty] = np.add.reduceat(values, starts[nonempty], axis=0)
    return out


@dataclass(frozen=True)
class BatchStability:
    """Stability of every customer at every window, plus the evidence sums.

    ``stability``, ``kept_mass`` and ``total_mass`` all have shape
    ``(n_customers, n_windows)``; row order matches
    ``population.customer_ids``.  Stability is NaN where undefined (no
    prior significance mass), matching the incremental engine.

    ``execution`` carries the resilient executor's
    :class:`~repro.runtime.executor.ExecutionReport` for sharded fits
    (``None`` for the serial path, which has no workers to isolate).
    """

    population: PopulationFrame
    stability: np.ndarray
    kept_mass: np.ndarray
    total_mass: np.ndarray
    execution: ExecutionReport | None = None

    @property
    def customer_ids(self) -> np.ndarray:
        return self.population.customer_ids

    def row_of(self, customer_id: int) -> int:
        row = int(np.searchsorted(self.customer_ids, customer_id))
        if row >= len(self.customer_ids) or self.customer_ids[row] != customer_id:
            raise ConfigError(f"customer {customer_id} not in the batch result")
        return row


def _stability_kernel(
    population: PopulationFrame, alpha: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The dense per-shard kernel: ``(stability, kept, total)`` matrices.

    The two stages are individually timed (spans + stage histograms)
    when telemetry is on; inside a sharded fit those spans are recorded
    in the worker and merged back by the resilient executor.
    """
    n_pairs, n_windows = population.n_pairs, population.n_windows
    with timed_stage(
        STAGE_SIGNIFICANCE, pairs=n_pairs, windows=n_windows
    ):
        presence = np.zeros((n_pairs, n_windows), dtype=np.float64)
        if n_pairs:
            presence[population.pair_rows(), population.triple_window] = 1.0
        prior = np.zeros_like(presence)
        prior[:, 1:] = np.cumsum(presence, axis=1)[:, :-1]
        window_index = np.arange(n_windows, dtype=np.float64)
        significance = significance_from_counts(prior, window_index, alpha)
    with timed_stage(STAGE_NORMALIZE, customers=population.n_customers):
        total = _segment_sum(significance, population.pair_offsets)
        kept = _segment_sum(significance * presence, population.pair_offsets)
        with np.errstate(invalid="ignore", divide="ignore"):
            stability = np.where(total > 0.0, kept / total, np.nan)
    return stability, kept, total


def _shard_worker(
    args: tuple[PopulationFrame, float],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    population, alpha = args
    return _stability_kernel(population, alpha)


def _stack_parts(
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-shard ``(stability, kept, total)`` row blocks."""
    return (
        np.vstack([p[0] for p in parts]),
        np.vstack([p[1] for p in parts]),
        np.vstack([p[2] for p in parts]),
    )


def _clip_bounds(
    bounds: list[tuple[int, int]], lo: int, hi: int
) -> list[tuple[int, int]]:
    """The store shard ranges intersected with customer rows ``[lo, hi)``."""
    clipped = [
        (max(b_lo, lo), min(b_hi, hi))
        for b_lo, b_hi in bounds
        if min(b_hi, hi) > max(b_lo, lo)
    ]
    return clipped or ([(lo, hi)] if hi > lo else [])


def _out_of_core_kernel(
    population: PopulationFrame, alpha: float, lo: int, hi: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The kernel over rows ``[lo, hi)`` of a slab-backed frame, chunked.

    Runs one store shard at a time so the dense significance/presence
    matrices — the fit's dominant allocation — never exceed one shard's
    worth; the memory-mapped columns page in and out underneath.  Row
    blocks concatenate to exactly the single-kernel result because
    customers are independent and :func:`_segment_sum` reduces each
    customer's segment in isolation.
    """
    from repro.data.slabs import open_slab_store

    assert population.store_path is not None
    store = open_slab_store(population.store_path)
    bounds = _clip_bounds(store.shard_bounds(), lo, hi)
    if not bounds:
        return _stability_kernel(population.shard(lo, hi), alpha)
    return _stack_parts(
        [
            _stability_kernel(population.shard(b_lo, b_hi), alpha)
            for b_lo, b_hi in bounds
        ]
    )


def _slab_shard_worker(
    args: tuple[str, int, int, float],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Worker entry for slab-reference tasks: map the store, fit a range.

    The task is ``(store_path, lo, hi, alpha)`` — a few hundred bytes on
    the wire regardless of population size.  The worker memory-maps the
    store itself and chunks over its shard layout, so worker RSS is
    bounded by one store shard, not the task's whole row range.
    """
    store_path, lo, hi, alpha = args
    from repro.data.slabs import open_slab_store

    frame = open_slab_store(store_path).frame()
    return _out_of_core_kernel(frame, alpha, lo, hi)


def _resolve_n_jobs(n_jobs: int | None) -> int:
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


def _shard_tasks(
    population: PopulationFrame, alpha: float, n_jobs: int
) -> list[tuple[PopulationFrame, float]]:
    bounds = np.linspace(0, population.n_customers, n_jobs + 1).astype(int)
    return [
        (population.shard(int(lo), int(hi)), alpha)
        for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
        if hi > lo
    ]


def _slab_shard_tasks(
    population: PopulationFrame, alpha: float, n_jobs: int
) -> list[tuple[str, int, int, float]]:
    """Slab-reference tasks: ``(store_path, lo, hi, alpha)`` per worker."""
    assert population.store_path is not None
    bounds = np.linspace(0, population.n_customers, n_jobs + 1).astype(int)
    return [
        (population.store_path, int(lo), int(hi), alpha)
        for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
        if hi > lo
    ]


def stability_matrix(
    population: PopulationFrame,
    alpha: float = 2.0,
    n_jobs: int | None = 1,
    retries: int = 2,
    shard_timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
) -> BatchStability:
    """Stability of all customers at all windows in batched numpy ops.

    With ``n_jobs > 1`` the customer axis is split into contiguous shards
    computed in worker processes (``n_jobs = -1`` uses every core).
    Sharding is exact: customers are independent, so the result is
    identical to the single-process kernel.

    Sharded fits run under the resilient protocol of
    :func:`~repro.runtime.executor.run_sharded`: a shard whose worker
    dies or exceeds ``shard_timeout`` is retried up to ``retries`` times
    with backoff and finally recomputed serially in-process, so the fit
    always completes with bit-identical results; what the runtime had to
    absorb is attached as ``BatchStability.execution``.  ``fault_plan``
    deterministically injects worker faults for tests
    (:class:`~repro.runtime.faults.FaultPlan`).
    """
    validate_alpha(alpha)
    n_jobs = _resolve_n_jobs(n_jobs)
    n_customers = population.n_customers
    slab_backed = population.store_path is not None
    with span("fit.batch", customers=n_customers, n_jobs=n_jobs):
        if n_jobs <= 1 or n_customers < 2 * n_jobs:
            if slab_backed:
                stability, kept, total = _out_of_core_kernel(
                    population, alpha, 0, n_customers
                )
            else:
                stability, kept, total = _stability_kernel(population, alpha)
            return BatchStability(population, stability, kept, total)
        if slab_backed:
            parts, report = run_sharded(
                _slab_shard_worker,
                _slab_shard_tasks(population, alpha, n_jobs),
                max_workers=n_jobs,
                retries=retries,
                timeout=shard_timeout,
                fault_plan=fault_plan,
            )
        else:
            shards = _shard_tasks(population, alpha, n_jobs)
            parts, report = run_sharded(
                _shard_worker,
                shards,
                max_workers=len(shards),
                retries=retries,
                timeout=shard_timeout,
                fault_plan=fault_plan,
            )
        stability, kept, total = _stack_parts(parts)
    return BatchStability(population, stability, kept, total, execution=report)


def _stability_matrix_bare(
    population: PopulationFrame, alpha: float = 2.0, n_jobs: int = 2
) -> BatchStability:
    """The pre-resilience sharded fit: bare ``ProcessPoolExecutor.map``.

    Kept (private) as the benchmarking baseline the resilient executor's
    fault-free overhead is measured against; one dead worker aborts the
    whole fit here.
    """
    validate_alpha(alpha)
    shards = _shard_tasks(population, alpha, _resolve_n_jobs(n_jobs))
    with ProcessPoolExecutor(max_workers=len(shards)) as executor:
        parts = list(executor.map(_shard_worker, shards))
    stability = np.vstack([p[0] for p in parts])
    kept = np.vstack([p[1] for p in parts])
    total = np.vstack([p[2] for p in parts])
    return BatchStability(population, stability, kept, total)


def batch_churn_scores(
    log: TransactionLog,
    grid: WindowGrid,
    window_index: int,
    customers: Iterable[int] | None = None,
    alpha: float = 2.0,
) -> dict[int, float]:
    """Churn scores (``1 - stability``) for a population at one window.

    Unlike a trajectory fit, this slices the cumulative-count math at
    ``window_index``: only presences strictly before ``k`` feed the
    significance counts and only presence *at* ``k`` feeds the kept mass,
    so the cost is one pass over the triples regardless of how many
    windows the grid has.  Undefined stability maps to the neutral 0.5.
    """
    if not 0 <= window_index < grid.n_windows:
        raise ConfigError(
            f"window index {window_index} out of range [0, {grid.n_windows})"
        )
    validate_alpha(alpha)
    population = PopulationFrame.from_log(log, grid, customers)
    pair_rows = population.pair_rows()
    before = population.triple_window < window_index
    prior = np.bincount(
        pair_rows[before], minlength=population.n_pairs
    ).astype(np.float64)
    present = np.zeros(population.n_pairs, dtype=np.float64)
    present[pair_rows[population.triple_window == window_index]] = 1.0
    significance = significance_from_counts(prior, window_index, alpha)
    total = _segment_sum(significance, population.pair_offsets)
    kept = _segment_sum(significance * present, population.pair_offsets)
    with np.errstate(invalid="ignore", divide="ignore"):
        churn = np.where(total > 0.0, 1.0 - kept / total, 0.5)
    return {
        int(customer_id): float(score)
        for customer_id, score in zip(population.customer_ids, churn, strict=True)
    }
