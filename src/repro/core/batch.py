"""Population-scale batched stability engine.

The third implementation of the paper's stability definition, built for
whole-population throughput rather than per-customer clarity:

* the transaction log is encoded **once** into flat columnar arrays
  (:meth:`~repro.data.transactions.TransactionLog.to_columnar`), then
  windowed and deduplicated into ``(customer, item, window)`` presence
  triples grouped CSR-style by ``(customer, item)`` pair
  (:class:`PopulationWindows`);
* significance and stability for **all customers × all windows** come out
  of a handful of numpy segment operations
  (:func:`stability_matrix`): per-pair shifted cumulative presence
  counts, the log-space saturated exponential rule (identical to
  :class:`~repro.core.significance.ExponentialSignificance`), and
  empty-segment-safe ``reduceat`` sums over the customer axis;
* scoring one window for the whole population
  (:func:`batch_churn_scores`) slices the cumulative-count math at ``k``
  — no per-customer trajectory recomputation;
* the customer axis shards across a ``ProcessPoolExecutor``
  (``n_jobs``) for multi-core fits.

Like :mod:`repro.core.vectorized`, only the exponential significance and
the ``"paper"`` counting scheme are supported; anything else stays on the
flexible incremental engine.  Exact agreement with both other
implementations is pinned by differential tests.
"""

from __future__ import annotations

import math
import os
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.significance import validate_alpha
from repro.core.windowing import WindowGrid
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError

__all__ = [
    "PopulationWindows",
    "BatchStability",
    "encode_population",
    "stability_matrix",
    "batch_churn_scores",
    "significance_from_counts",
]

#: Saturation cap matching ExponentialSignificance._MAX_LOG.
_MAX_LOG = 700.0


def significance_from_counts(
    counts: np.ndarray, n_prior_windows: int | np.ndarray, alpha: float = 2.0
) -> np.ndarray:
    """Exponential significance from prior-presence counts, vectorised.

    ``counts[i]`` is ``c`` for one item; ``n_prior_windows`` is ``k``
    (scalar or per-element), so ``l = k - c`` and the margin is
    ``c - l = 2c - k``.  The score is computed in log space with the same
    saturation cap as the scalar rule, and is 0 where ``c == 0``.

    This is the one significance kernel shared by the batch engine, the
    single-window population scorer and the streaming monitor's window
    close.
    """
    counts = np.asarray(counts, dtype=np.float64)
    margin = 2.0 * counts - np.asarray(n_prior_windows, dtype=np.float64)
    significance = np.exp(np.minimum(margin * math.log(alpha), _MAX_LOG))
    return np.where(counts > 0.0, significance, 0.0)


def _segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Sum ``values`` over contiguous row segments ``[offsets[i], offsets[i+1])``.

    Empty segments sum to 0 (plain ``np.add.reduceat`` would repeat the
    boundary row instead).  Each segment is summed independently
    left-to-right, so huge (saturated) values in one customer cannot
    contaminate another's sum — which a cumsum-and-subtract scheme would
    do through catastrophic cancellation.
    """
    starts = offsets[:-1]
    out_shape = (len(starts),) + values.shape[1:]
    out = np.zeros(out_shape, dtype=np.float64)
    # reduceat over the non-empty starts only: segments tile the row axis,
    # so each non-empty start's successor in the index list is exactly its
    # own end (empty segments collapse to the same boundary), and the last
    # one runs to the end of the array.  Feeding empty starts to reduceat
    # instead would repeat boundary rows and corrupt neighbouring sums.
    nonempty = starts < offsets[1:]
    if nonempty.any():
        out[nonempty] = np.add.reduceat(values, starts[nonempty], axis=0)
    return out


@dataclass(frozen=True)
class PopulationWindows:
    """All customers' windowed presence, as CSR-grouped triples.

    The deduplicated ``(customer, item, window)`` presence triples are
    sorted by customer, then item, then window.  Two CSR levels index
    them: ``pair_offsets`` groups customers over the ``(customer, item)``
    pair axis, and ``triple_offsets`` groups pairs over the triple axis.

    Attributes
    ----------
    customer_ids:
        Distinct customer ids, ascending, shape ``(C,)``.
    n_windows:
        Number of windows ``W`` on the grid.
    pair_offsets:
        Shape ``(C + 1,)``: customer ``i`` owns pairs
        ``pair_offsets[i]:pair_offsets[i+1]``.
    pair_items:
        Shape ``(P,)``: raw item id of each pair.
    triple_offsets:
        Shape ``(P + 1,)``: pair ``j`` is present in windows
        ``triple_window[triple_offsets[j]:triple_offsets[j+1]]``
        (strictly increasing within a pair).
    triple_window:
        Shape ``(T,)``: window index of each presence triple.
    item_vocab:
        Sorted distinct item ids across the population (the shared
        vocabulary).
    """

    customer_ids: np.ndarray
    n_windows: int
    pair_offsets: np.ndarray
    pair_items: np.ndarray
    triple_offsets: np.ndarray
    triple_window: np.ndarray
    item_vocab: np.ndarray

    @property
    def n_customers(self) -> int:
        return len(self.customer_ids)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_items)

    def pair_rows(self) -> np.ndarray:
        """Pair index owning each triple."""
        return np.repeat(
            np.arange(self.n_pairs, dtype=np.int64), np.diff(self.triple_offsets)
        )

    def window_items(self, customer_row: int) -> list[frozenset[int]]:
        """Reconstruct one customer's per-window item sets ``u_k``."""
        sets: list[set[int]] = [set() for _ in range(self.n_windows)]
        lo, hi = self.pair_offsets[customer_row], self.pair_offsets[customer_row + 1]
        for pair in range(lo, hi):
            item = int(self.pair_items[pair])
            for t in range(self.triple_offsets[pair], self.triple_offsets[pair + 1]):
                sets[self.triple_window[t]].add(item)
        return [frozenset(s) for s in sets]

    def shard(self, lo: int, hi: int) -> "PopulationWindows":
        """The sub-population of customer rows ``[lo, hi)`` (rebased CSR)."""
        pair_lo, pair_hi = self.pair_offsets[lo], self.pair_offsets[hi]
        triple_lo = self.triple_offsets[pair_lo]
        triple_hi = self.triple_offsets[pair_hi]
        return PopulationWindows(
            customer_ids=self.customer_ids[lo:hi],
            n_windows=self.n_windows,
            pair_offsets=self.pair_offsets[lo : hi + 1] - pair_lo,
            pair_items=self.pair_items[pair_lo:pair_hi],
            triple_offsets=self.triple_offsets[pair_lo : pair_hi + 1] - triple_lo,
            triple_window=self.triple_window[triple_lo:triple_hi],
            item_vocab=self.item_vocab,
        )


def encode_population(
    log: TransactionLog,
    grid: WindowGrid,
    customers: Iterable[int] | None = None,
) -> PopulationWindows:
    """Windowed presence triples for a whole population, in one pass.

    Baskets outside the grid are dropped (same rule as
    :func:`~repro.core.windowing.windowed_history`); item sets are
    deduplicated per ``(customer, window)``.
    """
    columnar = log.to_columnar(customers)
    boundaries = np.asarray(grid.boundaries, dtype=np.int64)
    n_windows = grid.n_windows
    window = np.searchsorted(boundaries, columnar.days, side="right") - 1
    valid = (columnar.days >= boundaries[0]) & (columnar.days < boundaries[-1])
    cust = columnar.customer_rows()[valid]
    window = window[valid]
    items = columnar.items[valid]

    # Sort + dedupe the (customer, item, window) triples.  When the ids
    # fit, pack each triple into one int64 so a single sort does the job;
    # otherwise fall back to a 3-key lexsort.
    if len(cust):
        item_span = int(items.max()) + 1 if items.min() >= 0 else 0
        span = columnar.n_customers * item_span * n_windows
        if item_span and span < 2**62:
            key = (cust * item_span + items) * n_windows + window
            if span <= max(1 << 22, 2 * len(key)) and span <= 1 << 25:
                # Dense key space: a presence bitmap + flatnonzero yields
                # the sorted unique keys in O(rows + span), skipping the
                # comparison sort inside np.unique entirely.
                flags = np.zeros(span, dtype=bool)
                flags[key] = True
                key = np.flatnonzero(flags)
            else:
                key = np.unique(key)
            window = key % n_windows
            pair_key = key // n_windows
            cust, items = pair_key // item_span, pair_key % item_span
        else:
            order = np.lexsort((window, items, cust))
            cust, items, window = cust[order], items[order], window[order]
            keep = np.r_[
                True,
                (cust[1:] != cust[:-1])
                | (items[1:] != items[:-1])
                | (window[1:] != window[:-1]),
            ]
            cust, items, window = cust[keep], items[keep], window[keep]
        new_pair = np.r_[True, (cust[1:] != cust[:-1]) | (items[1:] != items[:-1])]
        pair_starts = np.flatnonzero(new_pair)
    else:
        pair_starts = np.empty(0, dtype=np.int64)
    triple_offsets = np.r_[pair_starts, len(window)].astype(np.int64)
    pair_items = items[pair_starts]
    pair_cust = cust[pair_starts]
    pair_offsets = np.searchsorted(
        pair_cust, np.arange(columnar.n_customers + 1, dtype=np.int64)
    )
    return PopulationWindows(
        customer_ids=columnar.customer_ids,
        n_windows=n_windows,
        pair_offsets=pair_offsets.astype(np.int64),
        pair_items=pair_items,
        triple_offsets=triple_offsets,
        triple_window=window,
        item_vocab=np.unique(pair_items),
    )


@dataclass(frozen=True)
class BatchStability:
    """Stability of every customer at every window, plus the evidence sums.

    ``stability``, ``kept_mass`` and ``total_mass`` all have shape
    ``(n_customers, n_windows)``; row order matches
    ``population.customer_ids``.  Stability is NaN where undefined (no
    prior significance mass), matching the incremental engine.
    """

    population: PopulationWindows
    stability: np.ndarray
    kept_mass: np.ndarray
    total_mass: np.ndarray

    @property
    def customer_ids(self) -> np.ndarray:
        return self.population.customer_ids

    def row_of(self, customer_id: int) -> int:
        row = int(np.searchsorted(self.customer_ids, customer_id))
        if row >= len(self.customer_ids) or self.customer_ids[row] != customer_id:
            raise ConfigError(f"customer {customer_id} not in the batch result")
        return row


def _stability_kernel(
    population: PopulationWindows, alpha: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The dense per-shard kernel: ``(stability, kept, total)`` matrices."""
    n_pairs, n_windows = population.n_pairs, population.n_windows
    presence = np.zeros((n_pairs, n_windows), dtype=np.float64)
    if n_pairs:
        presence[population.pair_rows(), population.triple_window] = 1.0
    prior = np.zeros_like(presence)
    prior[:, 1:] = np.cumsum(presence, axis=1)[:, :-1]
    window_index = np.arange(n_windows, dtype=np.float64)
    significance = significance_from_counts(prior, window_index, alpha)
    total = _segment_sum(significance, population.pair_offsets)
    kept = _segment_sum(significance * presence, population.pair_offsets)
    with np.errstate(invalid="ignore", divide="ignore"):
        stability = np.where(total > 0.0, kept / total, np.nan)
    return stability, kept, total


def _shard_worker(args: tuple[PopulationWindows, float]):
    population, alpha = args
    return _stability_kernel(population, alpha)


def _resolve_n_jobs(n_jobs: int | None) -> int:
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if n_jobs < 1:
        raise ConfigError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


def stability_matrix(
    population: PopulationWindows, alpha: float = 2.0, n_jobs: int | None = 1
) -> BatchStability:
    """Stability of all customers at all windows in batched numpy ops.

    With ``n_jobs > 1`` the customer axis is split into contiguous shards
    computed in a ``ProcessPoolExecutor`` (``n_jobs = -1`` uses every
    core).  Sharding is exact: customers are independent, so the result
    is identical to the single-process kernel.
    """
    validate_alpha(alpha)
    n_jobs = _resolve_n_jobs(n_jobs)
    n_customers = population.n_customers
    if n_jobs <= 1 or n_customers < 2 * n_jobs:
        stability, kept, total = _stability_kernel(population, alpha)
        return BatchStability(population, stability, kept, total)
    bounds = np.linspace(0, n_customers, n_jobs + 1).astype(int)
    shards = [
        (population.shard(int(lo), int(hi)), alpha)
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    with ProcessPoolExecutor(max_workers=len(shards)) as executor:
        parts = list(executor.map(_shard_worker, shards))
    stability = np.vstack([p[0] for p in parts])
    kept = np.vstack([p[1] for p in parts])
    total = np.vstack([p[2] for p in parts])
    return BatchStability(population, stability, kept, total)


def batch_churn_scores(
    log: TransactionLog,
    grid: WindowGrid,
    window_index: int,
    customers: Iterable[int] | None = None,
    alpha: float = 2.0,
) -> dict[int, float]:
    """Churn scores (``1 - stability``) for a population at one window.

    Unlike a trajectory fit, this slices the cumulative-count math at
    ``window_index``: only presences strictly before ``k`` feed the
    significance counts and only presence *at* ``k`` feeds the kept mass,
    so the cost is one pass over the triples regardless of how many
    windows the grid has.  Undefined stability maps to the neutral 0.5.
    """
    if not 0 <= window_index < grid.n_windows:
        raise ConfigError(
            f"window index {window_index} out of range [0, {grid.n_windows})"
        )
    validate_alpha(alpha)
    population = encode_population(log, grid, customers)
    pair_rows = population.pair_rows()
    before = population.triple_window < window_index
    prior = np.bincount(
        pair_rows[before], minlength=population.n_pairs
    ).astype(np.float64)
    present = np.zeros(population.n_pairs, dtype=np.float64)
    present[pair_rows[population.triple_window == window_index]] = 1.0
    significance = significance_from_counts(prior, window_index, alpha)
    total = _segment_sum(significance, population.pair_offsets)
    kept = _segment_sum(significance * present, population.pair_offsets)
    with np.errstate(invalid="ignore", divide="ignore"):
        churn = np.where(total > 0.0, 1.0 - kept / total, 0.5)
    return {
        int(customer_id): float(score)
        for customer_id, score in zip(population.customer_ids, churn)
    }
