"""Attrition explanation: which products caused a stability decrease.

Section 2 of the paper: "When the stability of some customer decreases, we
can identify which product mainly caused this decrease.  This product is
defined as ``argmax_{p not in u_k} S(p, k)``, which is the most significant
product that was not bought in window k.  This attrition explanation can be
easily extended to a set of products."

This module implements both the single-product argmax and the top-K
extension, plus drop attribution across consecutive windows (the
"coffee loss" / "milk, sponge and cheese loss" annotations of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stability import StabilityTrajectory, WindowStability
from repro.errors import ConfigError

__all__ = ["MissingItem", "DropExplanation", "explain_window", "explain_drop", "explain_trajectory"]


@dataclass(frozen=True, slots=True)
class MissingItem:
    """One item implicated in a stability decrease.

    Attributes
    ----------
    item:
        The item id (a segment id at the paper's abstraction level).
    significance:
        ``S(item, k)`` at the explained window.
    share:
        Fraction of the window's total significance mass this item
        accounts for (how much stability was lost by missing it).
    """

    item: int
    significance: float
    share: float


@dataclass(frozen=True)
class DropExplanation:
    """Explanation of the stability level at one window.

    ``missing`` is ranked by decreasing significance; the first entry is
    the paper's ``argmax`` product.  ``newly_missing`` restricts the
    ranking to items that *were* bought in the previous window, isolating
    what changed at this window (the Figure 2 annotations).
    """

    customer_id: int
    window_index: int
    stability: float
    missing: tuple[MissingItem, ...]
    newly_missing: tuple[MissingItem, ...]

    @property
    def top_item(self) -> MissingItem | None:
        """The single most significant missing item, if any."""
        return self.missing[0] if self.missing else None

    def top_items(self, k: int) -> tuple[MissingItem, ...]:
        """The ``k`` most significant missing items."""
        if k < 0:
            raise ConfigError(f"k must be >= 0, got {k}")
        return self.missing[:k]


def _ranked_missing(record: WindowStability, items: dict[int, float]) -> tuple[MissingItem, ...]:
    total = record.total_mass
    ranked = sorted(items.items(), key=lambda pair: (-pair[1], pair[0]))
    return tuple(
        MissingItem(
            item=item,
            significance=sig,
            share=(sig / total) if total > 0 else 0.0,
        )
        for item, sig in ranked
    )


def explain_window(
    trajectory: StabilityTrajectory,
    window_index: int,
    previous_items: frozenset[int] | None = None,
) -> DropExplanation:
    """Explain the stability of one window of a trajectory.

    Parameters
    ----------
    trajectory:
        A stability trajectory produced by
        :func:`~repro.core.stability.stability_trajectory`.
    window_index:
        The window ``k`` to explain.
    previous_items:
        Items of window ``k - 1``; inferred from the trajectory when
        omitted.  Used to compute the ``newly_missing`` ranking.
    """
    record = trajectory.at(window_index)
    missing = record.missing_items()
    if previous_items is None:
        if window_index > 0:
            previous_items = trajectory.at(window_index - 1).window.items
        else:
            previous_items = frozenset()
    newly_missing = {
        item: sig for item, sig in missing.items() if item in previous_items
    }
    return DropExplanation(
        customer_id=trajectory.customer_id,
        window_index=window_index,
        stability=record.stability,
        missing=_ranked_missing(record, missing),
        newly_missing=_ranked_missing(record, newly_missing),
    )


def explain_drop(
    trajectory: StabilityTrajectory, window_index: int
) -> DropExplanation:
    """Alias of :func:`explain_window` focused on a detected drop.

    Kept as a separate entry point so call sites read naturally:
    ``explain_drop(traj, k)`` after ``traj.drops()`` flagged ``k``.
    """
    return explain_window(trajectory, window_index)


def explain_trajectory(
    trajectory: StabilityTrajectory, drop_threshold: float = 0.1
) -> list[DropExplanation]:
    """Explanations for every window flagged as a stability drop."""
    return [explain_drop(trajectory, k) for k in trajectory.drops(drop_threshold)]
