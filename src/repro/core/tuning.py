"""Hyper-parameter selection for the stability model.

Section 3.1 of the paper: "The window length for this experiment is set to
two months and the alpha parameter is set to 2.  These values were chosen
after performing a 5-fold cross-validation search."

:func:`tune_stability_model` reproduces that selection: a grid over
``(window_months, alpha)`` is scored by the mean AUROC over stratified
customer folds, measured at a reference evaluation month after the
defection onset.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.model import StabilityModel
from repro.data.cohorts import CohortLabels
from repro.data.calendar import StudyCalendar
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, EvaluationError
from repro.ml.crossval import GridSearchResult, StratifiedKFold, grid_search
from repro.ml.metrics import auroc

__all__ = ["TuningOutcome", "tune_stability_model"]


@dataclass(frozen=True)
class TuningOutcome:
    """Result of the cross-validated parameter search.

    Attributes
    ----------
    best_window_months, best_alpha:
        Selected parameters (the paper selects 2 and 2).
    best_score:
        Mean cross-validated AUROC of the selected parameters.
    search:
        The full grid-search table for reporting.
    """

    best_window_months: int
    best_alpha: float
    best_score: float
    search: GridSearchResult


def _mean_auroc_over_months(
    model: StabilityModel,
    cohorts: CohortLabels,
    customers: Sequence[int],
    first_month: int,
    last_month: int,
) -> float:
    """Mean AUROC of a fitted model over windows ending in a month range.

    Averaging over the whole defection period (rather than scoring one
    month) keeps grids with different window spans comparable: a 3-month
    grid has no window ending exactly at month 20, but it has windows
    ending inside the period.
    """
    aurocs = []
    ordered = sorted(customers)
    y_true = cohorts.label_vector(ordered)
    for k in range(model.n_windows):
        if not first_month <= model.window_month(k) <= last_month:
            continue
        scores = model.churn_scores(k, ordered)
        y_score = np.asarray([scores[c] for c in ordered])
        aurocs.append(auroc(y_true, y_score))
    if not aurocs:
        raise EvaluationError(
            f"no window of the model's grid ends within months "
            f"[{first_month}, {last_month}]"
        )
    return float(np.mean(aurocs))


def tune_stability_model(
    log: TransactionLog,
    cohorts: CohortLabels,
    calendar: StudyCalendar,
    window_grid: Sequence[int] = (1, 2, 3),
    alpha_grid: Sequence[float] = (1.5, 2.0, 3.0, 4.0),
    eval_months: tuple[int, int] | None = None,
    n_splits: int = 5,
    seed: int = 0,
) -> TuningOutcome:
    """5-fold cross-validated grid search over window span and alpha.

    The score of a grid point is the mean AUROC over held-out customer
    folds, averaged over every window ending inside ``eval_months``
    (default: the six months following the defection onset — the paper's
    "defected during the last 6 months" period).  The stability model has
    no trainable parameters, so "training" folds only pin down which
    customers the score may *not* be measured on; scoring on held-out
    customers still guards the selection against cohort idiosyncrasies,
    which is what the paper's CV is for.

    Raises
    ------
    ConfigError
        If a grid is empty.
    EvaluationError
        If no window of some grid ends inside ``eval_months``.
    """
    if not window_grid or not alpha_grid:
        raise ConfigError("window_grid and alpha_grid must be non-empty")
    if eval_months is None:
        eval_months = (cohorts.onset_month + 1, cohorts.onset_month + 6)
    first_month, last_month = eval_months
    customers = cohorts.all_customers()
    labels = cohorts.label_vector(customers)

    # Pre-fit one model per window span: trajectories do not depend on the
    # customer folds, so they are shared across folds and alphas reuse the
    # same grid only when the span matches.
    models: dict[tuple[int, float], StabilityModel] = {}
    for window_months in window_grid:
        for alpha in alpha_grid:
            model = StabilityModel(calendar, window_months=window_months, alpha=alpha)
            model.fit(log, customers)
            models[(int(window_months), float(alpha))] = model

    def score_fn(params: dict, train: np.ndarray, test: np.ndarray) -> float:
        del train  # the model is parameter-free; folds only select eval customers
        model = models[(int(params["window_months"]), float(params["alpha"]))]
        held_out = [customers[i] for i in test]
        return _mean_auroc_over_months(
            model, cohorts, held_out, first_month, last_month
        )

    folds = list(StratifiedKFold(n_splits=n_splits, seed=seed).split(labels))
    result = grid_search(
        {"window_months": list(window_grid), "alpha": list(alpha_grid)},
        score_fn,
        folds,
    )
    return TuningOutcome(
        best_window_months=int(result.best_params["window_months"]),
        best_alpha=float(result.best_params["alpha"]),
        best_score=result.best_score,
        search=result,
    )
