"""Customer stability: the paper's central quantity.

Section 2 of the paper defines the stability of customer ``i`` in window
``k`` as::

    Stability_i^k = sum_{p in u_k} S(p, k) / sum_{p in I} S(p, k)

i.e. the fraction of the total item-significance mass that the customer
*kept* buying in window ``k``.  Stability is 1 when every significant item
recurs and decreases proportionally to the significance of the missing
items.

This module computes, for a windowed history, the full stability
trajectory together with the per-window significance snapshots needed by
the explanation layer (:mod:`repro.core.explanation`).

Edge cases, pinned down by tests:

* Window 0 has no prior windows, so both sums are 0 — stability is
  *undefined* there and reported as ``nan`` (the paper's figures start
  well past the first window).
* The same applies to any window ``k`` where the customer has no prior
  purchases at all.
* New items in ``u_k`` that were never bought before have ``S = 0`` and
  therefore contribute to neither sum: buying novel products neither
  rewards nor penalises stability.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.significance import SignificanceFunction, SignificanceTracker
from repro.core.windowing import Window
from repro.errors import ConfigError

__all__ = ["WindowStability", "StabilityTrajectory", "stability_trajectory"]


@dataclass(frozen=True)
class WindowStability:
    """Stability of one customer in one window, with its evidence.

    Attributes
    ----------
    window:
        The window ``k`` this record describes.
    stability:
        ``Stability_i^k`` in [0, 1], or ``nan`` when undefined (no prior
        significance mass).
    kept_mass:
        ``sum_{p in u_k} S(p, k)`` — significance of items kept.
    total_mass:
        ``sum_{p in I} S(p, k)`` — total available significance.
    significances:
        The full snapshot ``{item: S(item, k)}`` for items with ``c > 0``,
        retained so drops can be explained after the fact.
    """

    window: Window
    stability: float
    kept_mass: float
    total_mass: float
    significances: dict[int, float]

    @property
    def defined(self) -> bool:
        """Whether stability is defined (some prior significance exists)."""
        return not math.isnan(self.stability)

    def missing_items(self) -> dict[int, float]:
        """Significance of known items *not* bought in this window."""
        return {
            item: sig
            for item, sig in self.significances.items()
            if item not in self.window.items and sig > 0.0
        }


@dataclass(frozen=True)
class StabilityTrajectory:
    """The stability series of one customer over a window grid."""

    customer_id: int
    records: tuple[WindowStability, ...]

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index: int) -> WindowStability:
        return self.records[index]

    def values(self) -> list[float]:
        """Stability values in window order (``nan`` where undefined)."""
        return [record.stability for record in self.records]

    def at(self, window_index: int) -> WindowStability:
        """Record for window ``window_index``.

        Raises
        ------
        ConfigError
            If the index is outside the trajectory.
        """
        if not 0 <= window_index < len(self.records):
            raise ConfigError(
                f"window index {window_index} out of range [0, {len(self.records)})"
            )
        return self.records[window_index]

    def churn_score(self, window_index: int) -> float:
        """``1 - stability`` at a window: higher means more likely defecting.

        Undefined stability maps to a neutral score of 0.5, so customers
        without history neither trigger nor suppress alarms.
        """
        record = self.at(window_index)
        if not record.defined:
            return 0.5
        return 1.0 - record.stability

    def drops(self, threshold: float = 0.1) -> list[int]:
        """Window indices where stability fell by more than ``threshold``
        relative to the previous defined window."""
        out: list[int] = []
        previous: float | None = None
        for record in self.records:
            if not record.defined:
                continue
            if previous is not None and previous - record.stability > threshold:
                out.append(record.window.index)
            previous = record.stability
        return out


def stability_trajectory(
    customer_id: int,
    windows: Sequence[Window],
    significance: SignificanceFunction | None = None,
    counting: str = "paper",
    item_weights: dict[int, float] | None = None,
) -> StabilityTrajectory:
    """Compute the stability series of one customer.

    Parameters
    ----------
    customer_id:
        Customer the windows belong to (carried through for reporting).
    windows:
        The windowed database ``D_i^w`` in chronological order, including
        empty windows.
    significance:
        Scoring rule; defaults to the paper's exponential rule with
        ``alpha = 2``.
    counting:
        Absence-counting scheme, see
        :class:`~repro.core.significance.SignificanceTracker`.
    item_weights:
        Optional per-item multiplicative weights (default 1.0 for every
        item).  With segment prices as weights the trajectory becomes
        **revenue-weighted stability**: losing an expensive habitual
        segment costs proportionally more stability, and explanations
        rank by weighted significance.  Weights must be positive.
    """
    if item_weights is not None:
        bad = {i: w for i, w in item_weights.items() if w <= 0}
        if bad:
            raise ConfigError(
                f"item_weights must be positive, got {dict(list(bad.items())[:3])}"
            )
    tracker = SignificanceTracker(significance, counting=counting)
    records: list[WindowStability] = []
    for window in windows:
        snapshot = tracker.significance_snapshot()
        if item_weights is not None:
            snapshot = {
                item: sig * item_weights.get(item, 1.0)
                for item, sig in snapshot.items()
            }
        total_mass = sum(snapshot.values())
        # Sorted so the sum's rounding is set-layout independent (the
        # snapshot dict itself is already in canonical order).
        kept_mass = sum(
            snapshot.get(item, 0.0) for item in sorted(window.items)
        )
        if total_mass > 0.0:
            stability = kept_mass / total_mass
        else:
            stability = math.nan
        records.append(
            WindowStability(
                window=window,
                stability=stability,
                kept_mass=kept_mass,
                total_mass=total_mass,
                significances=snapshot,
            )
        )
        tracker.observe_window(window.items)
    return StabilityTrajectory(customer_id=customer_id, records=tuple(records))
