"""Threshold-based attrition detection.

Section 3.1 of the paper: "The points on these curves are obtained using
different thresholds beta for the customer stability.  If
``Stability_i^k > beta`` the customer is considered loyal.  Otherwise, the
customer is considered as defecting on window k."

:class:`ThresholdDetector` implements that decision rule; for ROC analysis
the continuous churn score ``1 - stability`` is used directly (sweeping
``beta`` over [0, 1] traces the same curve).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stability import StabilityTrajectory
from repro.errors import ConfigError

__all__ = ["ThresholdDetector", "Alarm"]


@dataclass(frozen=True, slots=True)
class Alarm:
    """A defection alarm raised for a customer at a window."""

    customer_id: int
    window_index: int
    stability: float


@dataclass(frozen=True)
class ThresholdDetector:
    """Flags a customer as defecting when stability drops to ``beta`` or below.

    Parameters
    ----------
    beta:
        Stability threshold in [0, 1].  The paper's rule is strict:
        stability strictly above ``beta`` means loyal.
    """

    beta: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.beta <= 1.0:
            raise ConfigError(f"beta must be in [0, 1], got {self.beta}")

    def is_defecting(self, trajectory: StabilityTrajectory, window_index: int) -> bool:
        """Paper's decision rule at one window.

        Undefined stability (no purchase history yet) is treated as
        *loyal*: there is no evidence of defection.
        """
        record = trajectory.at(window_index)
        if not record.defined:
            return False
        return record.stability <= self.beta

    def alarms(
        self, trajectory: StabilityTrajectory, first_window: int = 0
    ) -> list[Alarm]:
        """All windows at or after ``first_window`` where the rule fires.

        ``first_window`` implements a burn-in: in the first windows the
        significance counts are small and stability is noisy, so a
        deployment monitors only once enough history has accumulated (the
        paper's own evaluation starts at month 12 of a 28-month study).
        """
        if first_window < 0:
            raise ConfigError(f"first_window must be >= 0, got {first_window}")
        return [
            Alarm(
                customer_id=trajectory.customer_id,
                window_index=record.window.index,
                stability=record.stability,
            )
            for record in trajectory.records
            if record.window.index >= first_window
            and record.defined
            and record.stability <= self.beta
        ]

    def first_alarm(
        self, trajectory: StabilityTrajectory, first_window: int = 0
    ) -> Alarm | None:
        """Earliest alarm, or ``None`` if the customer never trips the rule."""
        fired = self.alarms(trajectory, first_window=first_window)
        return fired[0] if fired else None
