"""Forecasting defection from the stability trend.

The abstract promises a model "able to identify customers that are likely
to defect in the **future** months" — detection *ahead of* the threshold
crossing.  This module implements the natural forecaster on top of the
stability series: fit a robust linear trend to a customer's recent
stability values and extrapolate

* the predicted stability over the next windows, and
* the number of windows until the trajectory crosses a threshold
  ``beta`` (``horizon``), with ``None`` meaning "no crossing predicted".

A ranking by imminence (:func:`rank_by_risk`) gives the retailer a
forward-looking call list: customers who are still above threshold today
but heading below it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stability import StabilityTrajectory
from repro.errors import ConfigError

__all__ = ["TrendForecast", "forecast_stability", "rank_by_risk"]


@dataclass(frozen=True)
class TrendForecast:
    """Linear-trend extrapolation of one customer's stability.

    Attributes
    ----------
    customer_id:
        The customer forecast.
    last_window:
        Index of the latest window the fit used.
    level:
        Fitted stability at ``last_window``.
    slope:
        Fitted change in stability per window (negative = declining).
    windows_to_threshold:
        Predicted number of windows from ``last_window`` until stability
        reaches ``beta`` (0 if already at/below); ``None`` when the trend
        never crosses (flat or rising).
    n_points:
        Number of stability values the fit used.
    """

    customer_id: int
    last_window: int
    level: float
    slope: float
    windows_to_threshold: float | None
    n_points: int

    def predicted_stability(self, windows_ahead: int) -> float:
        """Extrapolated stability ``windows_ahead`` windows past the fit,
        clipped into [0, 1]."""
        if windows_ahead < 0:
            raise ConfigError(f"windows_ahead must be >= 0, got {windows_ahead}")
        return float(np.clip(self.level + self.slope * windows_ahead, 0.0, 1.0))


def forecast_stability(
    trajectory: StabilityTrajectory,
    beta: float = 0.5,
    lookback: int = 4,
    upto_window: int | None = None,
) -> TrendForecast:
    """Fit a linear trend to the last ``lookback`` defined stability values.

    Parameters
    ----------
    trajectory:
        The customer's stability trajectory.
    beta:
        Defection threshold the horizon is measured against.
    lookback:
        Number of most recent *defined* windows to fit (>= 2).
    upto_window:
        Fit only windows up to this index inclusive (default: all) — used
        to backtest forecasts against later actuals.

    Raises
    ------
    ConfigError
        If fewer than two defined stability values are available.
    """
    if lookback < 2:
        raise ConfigError(f"lookback must be >= 2, got {lookback}")
    if not 0.0 <= beta <= 1.0:
        raise ConfigError(f"beta must be in [0, 1], got {beta}")
    last = len(trajectory) - 1 if upto_window is None else upto_window
    points = [
        (record.window.index, record.stability)
        for record in trajectory.records
        if record.window.index <= last and record.defined
    ]
    if len(points) < 2:
        raise ConfigError(
            f"customer {trajectory.customer_id} has {len(points)} defined "
            f"stability values; need at least 2 to fit a trend"
        )
    points = points[-lookback:]
    xs = np.asarray([p[0] for p in points], dtype=np.float64)
    ys = np.asarray([p[1] for p in points], dtype=np.float64)
    x_centred = xs - xs.mean()
    denominator = float((x_centred**2).sum())
    slope = float((x_centred * (ys - ys.mean())).sum() / denominator)
    last_window = int(xs[-1])
    level = float(ys.mean() + slope * (last_window - xs.mean()))

    if level <= beta:
        horizon: float | None = 0.0
    elif slope >= 0.0:
        horizon = None
    else:
        horizon = (beta - level) / slope
    return TrendForecast(
        customer_id=trajectory.customer_id,
        last_window=last_window,
        level=level,
        slope=slope,
        windows_to_threshold=horizon,
        n_points=len(points),
    )


def rank_by_risk(
    forecasts: list[TrendForecast], max_horizon: float | None = None
) -> list[TrendForecast]:
    """Sort forecasts by imminence of the predicted threshold crossing.

    Customers predicted to cross soonest come first; customers with no
    predicted crossing come last (ordered by slope, steepest decline
    first).  ``max_horizon`` drops forecasts whose crossing is further
    than that many windows away.
    """
    crossing = [f for f in forecasts if f.windows_to_threshold is not None]
    stable = [f for f in forecasts if f.windows_to_threshold is None]
    if max_horizon is not None:
        crossing = [f for f in crossing if f.windows_to_threshold <= max_horizon]
        stable = []
    crossing.sort(key=lambda f: (f.windows_to_threshold, f.level, f.customer_id))
    stable.sort(key=lambda f: (f.slope, f.customer_id))
    return crossing + stable
