"""Characterizing lost significant products (the paper's future work).

The paper closes with: "In the future, we plan to deepen the study of the
characterization of significant products that can explain customer
defection."  This module implements that study:

* :func:`loss_events` — turn a stability trajectory into discrete *loss
  events*: (item, window it went missing, its significance then, and
  whether the customer later *recovered* it);
* :func:`classify_loss` — label each loss as ``abrupt`` (an item at full
  presence streak vanishes) or ``fading`` (the item's presence had already
  been decaying);
* :class:`PopulationLossProfile` — aggregate loss events across a customer
  base: which segments are lost most, at what significance, how often they
  are recovered, and the department-level rollup through the taxonomy.

These are the statistics a retailer's category managers would act on: a
segment that churners abruptly abandon at high significance is a retention
lever; one that fades everywhere may be a ranging/assortment problem.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.core.stability import StabilityTrajectory
from repro.data.items import Catalog
from repro.errors import ConfigError

__all__ = [
    "LossEvent",
    "loss_events",
    "classify_loss",
    "SegmentLossSummary",
    "PopulationLossProfile",
    "profile_population",
]

#: Loss kinds assigned by :func:`classify_loss`.
LOSS_KINDS = ("abrupt", "fading")


@dataclass(frozen=True, slots=True)
class LossEvent:
    """One item going missing from a customer's basket stream.

    Attributes
    ----------
    customer_id:
        The customer losing the item.
    item:
        The lost item (segment id at the paper's abstraction level).
    window_index:
        First window in which the item is missing after a presence.
    significance:
        ``S(item, k)`` at the loss window — how much of a habit was broken.
    share:
        Fraction of the customer's total significance mass this item held.
    kind:
        ``"abrupt"`` or ``"fading"`` (see :func:`classify_loss`).
    recovered_window:
        First later window where the item reappears, or ``None`` if the
        loss is permanent within the observed horizon.
    """

    customer_id: int
    item: int
    window_index: int
    significance: float
    share: float
    kind: str
    recovered_window: int | None


def classify_loss(presence_history: list[bool], loss_position: int) -> str:
    """Classify a loss from the item's presence pattern before it.

    ``presence_history`` is the per-window presence of the item up to (not
    including) the loss window; ``loss_position`` is its length.  The loss
    is ``abrupt`` when the item was present in every one of the three
    windows preceding the loss (a clean habit break), otherwise
    ``fading``.
    """
    if loss_position <= 0:
        raise ConfigError("loss_position must be positive")
    lookback = presence_history[max(0, loss_position - 3) : loss_position]
    return "abrupt" if all(lookback) else "fading"


def loss_events(
    trajectory: StabilityTrajectory,
    min_share: float = 0.01,
) -> list[LossEvent]:
    """Extract loss events from one customer's trajectory.

    An item generates a loss event at window ``k`` when it was present in
    window ``k - 1`` but missing in ``k`` while carrying at least
    ``min_share`` of the customer's significance mass.  Recovery is the
    first later window where it reappears.
    """
    if not 0.0 <= min_share <= 1.0:
        raise ConfigError(f"min_share must be in [0, 1], got {min_share}")
    windows = [record.window.items for record in trajectory.records]
    events: list[LossEvent] = []
    seen_items = set().union(*windows) if windows else set()
    for item in sorted(seen_items):
        presence = [item in items for items in windows]
        for k in range(1, len(windows)):
            if not (presence[k - 1] and not presence[k]):
                continue
            record = trajectory.at(k)
            significance = record.significances.get(item, 0.0)
            share = (
                significance / record.total_mass if record.total_mass > 0 else 0.0
            )
            if share < min_share:
                continue
            recovered = next(
                (j for j in range(k + 1, len(windows)) if presence[j]), None
            )
            events.append(
                LossEvent(
                    customer_id=trajectory.customer_id,
                    item=item,
                    window_index=k,
                    significance=significance,
                    share=share,
                    kind=classify_loss(presence, k),
                    recovered_window=recovered,
                )
            )
    events.sort(key=lambda e: (e.window_index, -e.significance, e.item))
    return events


@dataclass(frozen=True)
class SegmentLossSummary:
    """Aggregate loss statistics of one segment across a population."""

    item: int
    n_losses: int
    n_abrupt: int
    n_recovered: int
    mean_share: float

    @property
    def recovery_rate(self) -> float:
        return self.n_recovered / self.n_losses if self.n_losses else 0.0

    @property
    def abrupt_rate(self) -> float:
        return self.n_abrupt / self.n_losses if self.n_losses else 0.0


@dataclass(frozen=True)
class PopulationLossProfile:
    """Loss characterization of a whole customer base."""

    segments: dict[int, SegmentLossSummary]
    n_customers: int
    n_events: int

    def top_lost(self, k: int = 10) -> list[SegmentLossSummary]:
        """Segments ranked by number of losses (ties: higher share first)."""
        return sorted(
            self.segments.values(),
            key=lambda s: (-s.n_losses, -s.mean_share, s.item),
        )[:k]

    def department_rollup(self, catalog: Catalog) -> dict[str, int]:
        """Loss counts aggregated to departments via the catalog."""
        rollup: Counter[str] = Counter()
        for summary in self.segments.values():
            department = catalog.segment(summary.item).department
            rollup[department] += summary.n_losses
        return dict(rollup)


def profile_population(
    trajectories: Iterable[StabilityTrajectory],
    min_share: float = 0.01,
) -> PopulationLossProfile:
    """Aggregate loss events across many customers' trajectories."""
    losses_by_item: dict[int, list[LossEvent]] = defaultdict(list)
    n_customers = 0
    n_events = 0
    for trajectory in trajectories:
        n_customers += 1
        for event in loss_events(trajectory, min_share=min_share):
            losses_by_item[event.item].append(event)
            n_events += 1
    segments = {
        item: SegmentLossSummary(
            item=item,
            n_losses=len(events),
            n_abrupt=sum(1 for e in events if e.kind == "abrupt"),
            n_recovered=sum(1 for e in events if e.recovered_window is not None),
            mean_share=float(np.mean([e.share for e in events])),
        )
        for item, events in losses_by_item.items()
    }
    return PopulationLossProfile(
        segments=segments, n_customers=n_customers, n_events=n_events
    )
