"""Engine registry: the three stability engines behind one protocol.

:class:`~repro.core.model.StabilityModel` used to hard-code an if/elif
chain over backend names.  Engines are now *registered implementations*
of one small protocol (:class:`StabilityEngine`): each consumes a
:class:`~repro.data.population.PopulationFrame` and produces an
:class:`EngineFit`, and the model (or any other caller) looks them up by
name.  Registering a new engine — a GPU kernel, an approximate sketch —
requires no change to the model or to
:class:`~repro.config.ExperimentConfig`, whose ``backend`` field
validates against this registry.

* ``"incremental"`` — the flexible per-customer reference engine: every
  significance rule, counting scheme and item weighting, full per-window
  significance snapshots.
* ``"vectorized"`` — per-customer numpy kernel
  (:mod:`repro.core.vectorized`).
* ``"batch"`` — the population-scale columnar engine
  (:mod:`repro.core.batch`), optionally sharded across processes.

The numpy engines support only the paper's exponential significance with
the ``"paper"`` counting scheme and no item weights; their stability
values agree bit-for-bit with the incremental engine (differentially
tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.batch import BatchStability, stability_matrix
from repro.core.significance import ExponentialSignificance, SignificanceFunction
from repro.core.stability import (
    StabilityTrajectory,
    WindowStability,
    stability_trajectory,
)
from repro.core.vectorized import _vectorized_masses
from repro.core.windowing import Window, windowed_history
from repro.data.population import PopulationFrame
from repro.errors import ConfigError
from repro.obs import span

import numpy as np

__all__ = [
    "FitSpec",
    "EngineFit",
    "StabilityEngine",
    "frame_windowed_history",
    "register_engine",
    "get_engine",
    "available_engines",
]


@dataclass
class FitSpec:
    """Everything an engine needs besides the frame itself.

    ``retries`` bounds the resilient executor's pool waves for sharded
    batch fits (see :func:`~repro.runtime.executor.run_sharded`); serial
    engines ignore it.
    """

    significance: SignificanceFunction
    counting: str = "paper"
    item_weights: dict[int, float] | None = None
    n_jobs: int = 1
    retries: int = 2


@dataclass
class EngineFit:
    """What an engine's fit produces.

    Exactly one of the two fields is populated: trajectory engines fill
    ``trajectories`` (keyed by customer id); the population engine fills
    ``batch`` and lets trajectories materialise lazily.
    """

    trajectories: dict[int, StabilityTrajectory] | None = None
    batch: BatchStability | None = None


@runtime_checkable
class StabilityEngine(Protocol):
    """One registered fit/score implementation."""

    name: str

    def validate(self, spec: FitSpec) -> None:
        """Raise :class:`~repro.errors.ConfigError` if the spec is
        outside this engine's envelope."""

    def fit(self, frame: PopulationFrame, spec: FitSpec) -> EngineFit:
        """Fit every customer in the frame."""


def _require_columnar(spec: FitSpec, name: str) -> None:
    """The numpy engines' envelope: exponential / paper / unweighted."""
    if not isinstance(spec.significance, ExponentialSignificance):
        raise ConfigError(
            f"backend {name!r} supports only ExponentialSignificance, "
            f"got {type(spec.significance).__name__}"
        )
    if spec.counting != "paper":
        raise ConfigError(
            f"backend {name!r} supports only the 'paper' counting "
            f"scheme, got {spec.counting!r}"
        )
    if spec.item_weights is not None:
        raise ConfigError(
            f"backend {name!r} does not support item_weights; "
            "use backend='incremental'"
        )


def _require_serial(spec: FitSpec, name: str) -> None:
    if spec.n_jobs != 1:
        raise ConfigError(
            f"n_jobs={spec.n_jobs} requires backend='batch', got {name!r}"
        )


def frame_windowed_history(frame: PopulationFrame, row: int) -> list[Window]:
    """One customer's windowed database ``D_i^w`` rebuilt from the columns.

    The log-free equivalent of :func:`~repro.core.windowing.windowed_history`
    for frames that carry no source log (slab-backed frames, shards):
    per-window item sets come from the presence triples, basket counts
    and monetary totals from the basket columns.  The basket columns are
    day-sorted with ties in history order, so the sequential monetary
    accumulation reproduces the log path's float-for-float.
    """
    grid = frame.grid
    item_sets = frame.window_items(row)
    lo, hi = int(frame.basket_offsets[row]), int(frame.basket_offsets[row + 1])
    days = frame.basket_days[lo:hi]
    monetary = frame.basket_monetary[lo:hi]
    windows: list[Window] = []
    for k in range(grid.n_windows):
        begin, end = grid.bounds(k)
        b_lo = int(np.searchsorted(days, begin, side="left"))
        b_hi = int(np.searchsorted(days, end, side="left"))
        total = 0.0
        for value in monetary[b_lo:b_hi]:
            total += float(value)
        windows.append(
            Window(
                index=k,
                begin_day=begin,
                end_day=end,
                items=item_sets[k],
                n_baskets=b_hi - b_lo,
                monetary=total,
            )
        )
    return windows


def _customer_windows(
    frame: PopulationFrame, row: int, customer_id: int
) -> list[Window]:
    """Windowed history via the source log when present, else the columns."""
    if frame.log is not None:
        return windowed_history(frame.log.history(customer_id), frame.grid)
    return frame_windowed_history(frame, row)


class IncrementalEngine:
    """Flexible reference engine: per-customer, any significance rule."""

    name = "incremental"

    def validate(self, spec: FitSpec) -> None:
        _require_serial(spec, self.name)

    def fit(self, frame: PopulationFrame, spec: FitSpec) -> EngineFit:
        trajectories: dict[int, StabilityTrajectory] = {}
        with span("engine.fit", engine=self.name, customers=frame.n_customers):
            for row, customer_id in enumerate(frame.customer_ids):
                cid = int(customer_id)
                windows = _customer_windows(frame, row, cid)
                trajectories[cid] = stability_trajectory(
                    cid,
                    windows,
                    significance=spec.significance,
                    counting=spec.counting,
                    item_weights=spec.item_weights,
                )
        return EngineFit(trajectories=trajectories)


class VectorizedEngine:
    """Per-customer numpy kernel; paper configuration only."""

    name = "vectorized"

    def validate(self, spec: FitSpec) -> None:
        _require_columnar(spec, self.name)
        _require_serial(spec, self.name)

    def fit(self, frame: PopulationFrame, spec: FitSpec) -> EngineFit:
        alpha = spec.significance.alpha  # type: ignore[attr-defined]
        trajectories: dict[int, StabilityTrajectory] = {}
        with span("engine.fit", engine=self.name, customers=frame.n_customers):
            for row, customer_id in enumerate(frame.customer_ids):
                cid = int(customer_id)
                windows = _customer_windows(frame, row, cid)
                stability, kept, total = _vectorized_masses(windows, alpha=alpha)
                trajectories[cid] = StabilityTrajectory(
                    customer_id=cid,
                    records=tuple(
                        WindowStability(
                            window=window,
                            stability=float(stability[k]),
                            kept_mass=float(kept[k]),
                            total_mass=float(total[k]),
                            significances={},
                        )
                        for k, window in enumerate(windows)
                    ),
                )
        return EngineFit(trajectories=trajectories)


class BatchEngine:
    """Population-scale columnar engine; paper configuration only."""

    name = "batch"

    def validate(self, spec: FitSpec) -> None:
        _require_columnar(spec, self.name)

    def fit(self, frame: PopulationFrame, spec: FitSpec) -> EngineFit:
        alpha = spec.significance.alpha  # type: ignore[attr-defined]
        with span("engine.fit", engine=self.name, customers=frame.n_customers):
            return EngineFit(
                batch=stability_matrix(
                    frame,
                    alpha=alpha,
                    n_jobs=spec.n_jobs,
                    retries=spec.retries,
                )
            )


_REGISTRY: dict[str, StabilityEngine] = {}


def register_engine(engine: StabilityEngine) -> StabilityEngine:
    """Register (or replace) an engine under its ``name``."""
    if not getattr(engine, "name", ""):
        raise ConfigError("engine must have a non-empty name")
    _REGISTRY[engine.name] = engine
    return engine


def get_engine(name: str) -> StabilityEngine:
    """Look an engine up by name.

    Raises
    ------
    ConfigError
        If no engine is registered under ``name``.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r}; expected one of {available_engines()}"
        ) from None


def available_engines() -> tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


register_engine(IncrementalEngine())
register_engine(VectorizedEngine())
register_engine(BatchEngine())
