"""Online (streaming) stability monitoring.

The batch :class:`~repro.core.model.StabilityModel` recomputes trajectories
from a full log; a deployed system instead sees receipts arrive one by one
and must re-score customers at every window close.  This module provides
that deployment shape:

* :class:`CustomerState` — the per-customer incremental state: the
  significance tracker plus the current window's accumulating item set;
* :class:`StabilityMonitor` — ingests baskets in timestamp order, closes
  windows as the clock advances, emits :class:`~repro.core.detector.Alarm`
  objects for customers whose stability fell to the threshold, and keeps
  the evidence needed to explain each alarm.

Memory is O(customers x items-ever-bought), independent of history length —
the property that makes the 6M-customer deployment of the paper's retailer
feasible.

Equivalence with the batch model is pinned by tests: feeding a log through
the monitor produces exactly the same stability values as
``StabilityModel.fit`` on that log.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.detector import Alarm
from repro.core.significance import ExponentialSignificance, SignificanceFunction, SignificanceTracker
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.errors import ConfigError, DataError

__all__ = ["CustomerState", "WindowCloseReport", "StabilityMonitor"]


@dataclass
class CustomerState:
    """Incremental per-customer state held by the monitor."""

    customer_id: int
    tracker: SignificanceTracker
    current_items: set[int] = field(default_factory=set)
    last_stability: float = math.nan

    def significance_snapshot(self) -> dict[int, float]:
        """``S(p, k)`` for the window currently being accumulated."""
        return self.tracker.significance_snapshot()


@dataclass(frozen=True)
class WindowCloseReport:
    """What the monitor observed when it closed one window.

    Attributes
    ----------
    window_index:
        The closed window ``k``.
    stabilities:
        Stability of every monitored customer at ``k`` (``nan`` when
        undefined).
    alarms:
        Customers whose stability fell to the threshold or below.
    """

    window_index: int
    stabilities: dict[int, float]
    alarms: tuple[Alarm, ...]


class StabilityMonitor:
    """Online stability scoring over a stream of timestamped baskets.

    Parameters
    ----------
    grid:
        The shared window grid (same construction as the batch model).
    beta:
        Alarm threshold: a customer alarms when ``stability <= beta``.
    significance:
        Scoring rule; defaults to the paper's exponential rule.
    counting:
        Absence-counting scheme (see
        :class:`~repro.core.significance.SignificanceTracker`).
    first_alarm_window:
        Burn-in: windows before this index never alarm.

    Usage
    -----
    Feed baskets in non-decreasing day order via :meth:`ingest`; it
    returns a :class:`WindowCloseReport` for every window that closed
    because time advanced past it.  Call :meth:`finish` at end of stream
    to close the remaining windows.
    """

    def __init__(
        self,
        grid: WindowGrid,
        beta: float = 0.5,
        significance: SignificanceFunction | None = None,
        counting: str = "paper",
        first_alarm_window: int = 0,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ConfigError(f"beta must be in [0, 1], got {beta}")
        if first_alarm_window < 0:
            raise ConfigError(
                f"first_alarm_window must be >= 0, got {first_alarm_window}"
            )
        self.grid = grid
        self.beta = float(beta)
        self.significance = (
            significance if significance is not None else ExponentialSignificance()
        )
        self.counting = counting
        self.first_alarm_window = int(first_alarm_window)
        self._states: dict[int, CustomerState] = {}
        self._current_window = 0
        self._last_day_seen = -1
        self._finished = False
        # Evidence from the most recently closed window, per customer:
        # {item: significance} of items that were missing in it.
        self._last_missing: dict[int, dict[int, float]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_window(self) -> int:
        """Index of the window currently accumulating baskets."""
        return self._current_window

    def customers(self) -> list[int]:
        """Sorted ids of customers seen so far."""
        return sorted(self._states)

    def state_of(self, customer_id: int) -> CustomerState:
        """The incremental state of one customer.

        Raises
        ------
        DataError
            If the customer has never appeared in the stream.
        """
        try:
            return self._states[customer_id]
        except KeyError:
            raise DataError(f"customer {customer_id} not in the stream") from None

    def register(self, customer_id: int) -> None:
        """Pre-register a customer so silent ones are scored from window 0.

        Customers only seen mid-stream are tracked from their first
        basket; registering the known customer base up front makes a
        fully silent customer produce empty windows (and eventually
        alarms) instead of being invisible.
        """
        if customer_id not in self._states:
            self._states[customer_id] = CustomerState(
                customer_id=customer_id,
                tracker=SignificanceTracker(self.significance, counting=self.counting),
            )

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def ingest(self, basket: Basket) -> list[WindowCloseReport]:
        """Feed one basket; returns reports for any windows this closes.

        Raises
        ------
        DataError
            If baskets arrive out of order, past the grid, or after
            :meth:`finish`.
        """
        if self._finished:
            raise DataError("monitor already finished")
        if basket.day < self._last_day_seen:
            raise DataError(
                f"baskets must arrive in day order: got day {basket.day} "
                f"after day {self._last_day_seen}"
            )
        window = self.grid.window_of_day(basket.day)
        if window is None:
            raise DataError(
                f"basket day {basket.day} is outside the monitor's grid"
            )
        self._last_day_seen = basket.day

        reports = []
        while self._current_window < window:
            reports.append(self._close_current_window())
        self.register(basket.customer_id)
        self._states[basket.customer_id].current_items |= basket.items
        return reports

    def ingest_many(self, baskets: Iterable[Basket]) -> list[WindowCloseReport]:
        """Feed a day-ordered iterable of baskets."""
        reports: list[WindowCloseReport] = []
        for basket in baskets:
            reports.extend(self.ingest(basket))
        return reports

    def finish(self) -> list[WindowCloseReport]:
        """Close every remaining window and end the stream."""
        if self._finished:
            return []
        reports = []
        while self._current_window < self.grid.n_windows:
            reports.append(self._close_current_window())
        self._finished = True
        return reports

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def explain_alarm(self, customer_id: int, top_k: int = 5) -> list[tuple[int, float]]:
        """Most significant items missing from the customer's last closed
        window, as ``(item, significance)`` pairs.

        The monitor keeps one window of evidence, so this explains the most
        recent :class:`WindowCloseReport` (where the alarm fired).
        """
        self.state_of(customer_id)  # validate the id
        ranked = sorted(
            self._last_missing.get(customer_id, {}).items(),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:top_k]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _close_current_window(self) -> WindowCloseReport:
        window_index = self._current_window
        stabilities: dict[int, float] = {}
        alarms: list[Alarm] = []
        for customer_id in sorted(self._states):
            state = self._states[customer_id]
            snapshot = state.tracker.significance_snapshot()
            total = sum(snapshot.values())
            kept = sum(snapshot.get(item, 0.0) for item in state.current_items)
            stability = kept / total if total > 0 else math.nan
            stabilities[customer_id] = stability
            state.last_stability = stability
            self._last_missing[customer_id] = {
                item: sig
                for item, sig in snapshot.items()
                if item not in state.current_items and sig > 0.0
            }
            if (
                window_index >= self.first_alarm_window
                and not math.isnan(stability)
                and stability <= self.beta
            ):
                alarms.append(
                    Alarm(
                        customer_id=customer_id,
                        window_index=window_index,
                        stability=stability,
                    )
                )
            state.tracker.observe_window(state.current_items)
            state.current_items = set()
        self._current_window += 1
        return WindowCloseReport(
            window_index=window_index,
            stabilities=stabilities,
            alarms=tuple(alarms),
        )
