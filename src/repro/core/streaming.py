"""Online (streaming) stability monitoring.

The batch :class:`~repro.core.model.StabilityModel` recomputes trajectories
from a full log; a deployed system instead sees receipts arrive one by one
and must re-score customers at every window close.  This module provides
that deployment shape:

* :class:`CustomerState` — the per-customer incremental state: the
  significance tracker plus the current window's accumulating item set;
* :class:`StabilityMonitor` — ingests baskets in timestamp order, closes
  windows as the clock advances, emits :class:`~repro.core.detector.Alarm`
  objects for customers whose stability fell to the threshold, and keeps
  the evidence needed to explain each alarm.

Memory is O(customers x items-ever-bought), independent of history length —
the property that makes the 6M-customer deployment of the paper's retailer
feasible.

Equivalence with the batch model is pinned by tests: feeding a log through
the monitor produces exactly the same stability values as
``StabilityModel.fit`` on that log.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.batch import _segment_sum, significance_from_counts
from repro.core.detector import Alarm
from repro.core.significance import ExponentialSignificance, SignificanceFunction, SignificanceTracker
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.errors import ConfigError, DataError

if TYPE_CHECKING:
    from repro.config import ExperimentConfig
    from repro.data.calendar import StudyCalendar

__all__ = ["CustomerState", "WindowCloseReport", "StabilityMonitor"]


@dataclass
class CustomerState:
    """Incremental per-customer state held by the monitor."""

    customer_id: int
    tracker: SignificanceTracker
    current_items: set[int] = field(default_factory=set)
    last_stability: float = math.nan

    def significance_snapshot(self) -> dict[int, float]:
        """``S(p, k)`` for the window currently being accumulated."""
        return self.tracker.significance_snapshot()


@dataclass(frozen=True)
class WindowCloseReport:
    """What the monitor observed when it closed one window.

    Attributes
    ----------
    window_index:
        The closed window ``k``.
    stabilities:
        Stability of every monitored customer at ``k`` (``nan`` when
        undefined).
    alarms:
        Customers whose stability fell to the threshold or below.
    """

    window_index: int
    stabilities: dict[int, float]
    alarms: tuple[Alarm, ...]


class StabilityMonitor:
    """Online stability scoring over a stream of timestamped baskets.

    Parameters
    ----------
    grid:
        The shared window grid (same construction as the batch model).
    beta:
        Alarm threshold: a customer alarms when ``stability <= beta``.
    significance:
        Scoring rule; defaults to the paper's exponential rule.
    counting:
        Absence-counting scheme (see
        :class:`~repro.core.significance.SignificanceTracker`).
    first_alarm_window:
        Burn-in: windows before this index never alarm.

    Usage
    -----
    Feed baskets in non-decreasing day order via :meth:`ingest`; it
    returns a :class:`WindowCloseReport` for every window that closed
    because time advanced past it.  Call :meth:`finish` at end of stream
    to close the remaining windows.
    """

    def __init__(
        self,
        grid: WindowGrid,
        beta: float = 0.5,
        significance: SignificanceFunction | None = None,
        counting: str = "paper",
        first_alarm_window: int = 0,
    ) -> None:
        if not 0.0 <= beta <= 1.0:
            raise ConfigError(f"beta must be in [0, 1], got {beta}")
        if first_alarm_window < 0:
            raise ConfigError(
                f"first_alarm_window must be >= 0, got {first_alarm_window}"
            )
        self.grid = grid
        self.beta = float(beta)
        self.significance = (
            significance if significance is not None else ExponentialSignificance()
        )
        self.counting = counting
        self.first_alarm_window = int(first_alarm_window)
        self._states: dict[int, CustomerState] = {}
        self._current_window = 0
        self._last_day_seen = -1
        self._finished = False
        # Evidence from the most recently closed window, per customer:
        # {item: significance} of items that were missing in it.
        self._last_missing: dict[int, dict[int, float]] = {}

    @classmethod
    def from_config(
        cls,
        calendar: StudyCalendar,
        config: ExperimentConfig,
        beta: float = 0.5,
        first_alarm_window: int = 0,
    ) -> StabilityMonitor:
        """Build a monitor from the shared :class:`~repro.config.ExperimentConfig`.

        Uses the config's grid (``window_months``), significance
        (``alpha``) and counting scheme, so the monitor scores exactly
        what a :class:`~repro.core.model.StabilityModel` built from the
        same config would.
        """
        return cls(
            config.grid(calendar),
            beta=beta,
            significance=config.significance(),
            counting=config.counting,
            first_alarm_window=first_alarm_window,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_window(self) -> int:
        """Index of the window currently accumulating baskets."""
        return self._current_window

    def customers(self) -> list[int]:
        """Sorted ids of customers seen so far."""
        return sorted(self._states)

    def state_of(self, customer_id: int) -> CustomerState:
        """The incremental state of one customer.

        Raises
        ------
        DataError
            If the customer has never appeared in the stream.
        """
        try:
            return self._states[customer_id]
        except KeyError:
            raise DataError(f"customer {customer_id} not in the stream") from None

    def register(self, customer_id: int) -> None:
        """Pre-register a customer so silent ones are scored from window 0.

        Customers only seen mid-stream are tracked from their first
        basket; registering the known customer base up front makes a
        fully silent customer produce empty windows (and eventually
        alarms) instead of being invisible.
        """
        if customer_id not in self._states:
            self._states[customer_id] = CustomerState(
                customer_id=customer_id,
                tracker=SignificanceTracker(self.significance, counting=self.counting),
            )

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def ingest(self, basket: Basket) -> list[WindowCloseReport]:
        """Feed one basket; returns reports for any windows this closes.

        Raises
        ------
        DataError
            If baskets arrive out of order, past the grid, or after
            :meth:`finish`.
        """
        if self._finished:
            raise DataError("monitor already finished")
        window = self.grid.window_of_day(basket.day)
        if window is None:
            raise DataError(
                f"basket day {basket.day} is outside the monitor's grid"
            )
        if window < self._current_window:
            # Out-of-order across a window boundary: the earlier window
            # has already been closed and scored, so folding this basket
            # in would silently corrupt its assignment.  Refuse with
            # enough context to find the offending record upstream.
            raise DataError(
                f"customer {basket.customer_id}: basket at day {basket.day} "
                f"predates the open window {self._current_window} (which "
                f"starts at day {self.grid.boundaries[self._current_window]}); "
                f"window {window} is already closed and baskets must arrive "
                f"in day order"
            )
        if basket.day < self._last_day_seen:
            raise DataError(
                f"customer {basket.customer_id}: baskets must arrive in day "
                f"order: got day {basket.day} after day {self._last_day_seen}"
            )
        self._last_day_seen = basket.day

        reports = []
        while self._current_window < window:
            reports.append(self._close_current_window())
        self.register(basket.customer_id)
        self._states[basket.customer_id].current_items |= basket.items
        return reports

    def ingest_many(self, baskets: Iterable[Basket]) -> list[WindowCloseReport]:
        """Feed a day-ordered iterable of baskets."""
        reports: list[WindowCloseReport] = []
        for basket in baskets:
            reports.extend(self.ingest(basket))
        return reports

    def advance_to_day(self, day: int) -> list[WindowCloseReport]:
        """Advance the stream clock to ``day`` without ingesting a basket.

        Closes (and scores) every window that ends on or before ``day``,
        exactly as ingesting a basket dated ``day`` would, but leaves all
        per-customer item sets untouched.  This is what keeps a pool of
        customer-partitioned monitors aligned: every shard sees every
        day of the stream, even days on which none of *its* customers
        shopped, so all shards close the same windows at the same time
        (see :class:`repro.serve.ShardedMonitorPool`).

        Raises
        ------
        DataError
            If ``day`` regresses, lies outside the grid, or the monitor
            is already finished.
        """
        if self._finished:
            raise DataError("monitor already finished")
        window = self.grid.window_of_day(day)
        if window is None:
            raise DataError(f"day {day} is outside the monitor's grid")
        if day < self._last_day_seen:
            raise DataError(
                f"the stream clock must advance in day order: got day "
                f"{day} after day {self._last_day_seen}"
            )
        self._last_day_seen = day
        reports = []
        while self._current_window < window:
            reports.append(self._close_current_window())
        return reports

    def finish(self) -> list[WindowCloseReport]:
        """Close every remaining window and end the stream."""
        if self._finished:
            return []
        reports = []
        while self._current_window < self.grid.n_windows:
            reports.append(self._close_current_window())
        self._finished = True
        return reports

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The monitor's complete state as a versioned JSON payload.

        This is a thin delegation to the **one** snapshot codec,
        :func:`repro.runtime.snapshot.snapshot_monitor` — the serving
        layer, the checkpoint files and the tests all read and write
        exactly this format (schema + version validated on restore, with
        the found-vs-expected version named on drift).  See
        :mod:`repro.runtime.snapshot` for the format and the round-trip
        guarantee (a restored monitor emits identical
        :class:`WindowCloseReport` objects thereafter).

        Raises
        ------
        SnapshotError
            If the monitor's configuration is not serialisable (custom
            significance rules have no stable wire format).
        """
        from repro.runtime.snapshot import snapshot_monitor

        return snapshot_monitor(self)

    @classmethod
    def from_snapshot(cls, payload: dict) -> StabilityMonitor:
        """Rebuild a monitor from a :meth:`snapshot` payload.

        Raises
        ------
        SnapshotError
            If the payload is corrupt or from an incompatible version.
        """
        from repro.runtime.snapshot import restore_monitor

        return restore_monitor(payload)

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def explain_alarm(self, customer_id: int, top_k: int = 5) -> list[tuple[int, float]]:
        """Most significant items missing from the customer's last closed
        window, as ``(item, significance)`` pairs.

        The monitor keeps one window of evidence, so this explains the most
        recent :class:`WindowCloseReport` (where the alarm fired).
        """
        self.state_of(customer_id)  # validate the id
        ranked = sorted(
            self._last_missing.get(customer_id, {}).items(),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:top_k]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _close_current_window(self) -> WindowCloseReport:
        if (
            isinstance(self.significance, ExponentialSignificance)
            and self.counting == "paper"
        ):
            return self._close_batched()
        return self._close_python()

    def _close_python(self) -> WindowCloseReport:
        """Flexible close path: one significance snapshot per customer."""
        window_index = self._current_window
        stabilities: dict[int, float] = {}
        alarms: list[Alarm] = []
        for customer_id in sorted(self._states):
            state = self._states[customer_id]
            snapshot = state.tracker.significance_snapshot()
            total = sum(snapshot.values())
            kept = sum(snapshot.get(item, 0.0) for item in state.current_items)
            stability = kept / total if total > 0 else math.nan
            self._record_close(
                state, window_index, stability, stabilities, alarms,
                missing={
                    item: sig
                    for item, sig in snapshot.items()
                    if item not in state.current_items and sig > 0.0
                },
            )
        self._current_window += 1
        return WindowCloseReport(
            window_index=window_index,
            stabilities=stabilities,
            alarms=tuple(alarms),
        )

    def _close_batched(self) -> WindowCloseReport:
        """Default-config close path reusing the batch significance kernel.

        All customers' per-item presence counts are flattened into one
        array and scored with a single vectorised
        :func:`~repro.core.batch.significance_from_counts` call plus
        segment sums — instead of one ``math.exp`` per (customer, item).
        The flattening preserves each tracker's dict order, so the sums
        (and therefore the stabilities) are bit-identical to
        :meth:`_close_python`.
        """
        window_index = self._current_window
        customer_ids = sorted(self._states)
        flat_items: list[int] = []
        flat_counts: list[int] = []
        flat_kept: list[bool] = []
        n_observed: list[int] = []
        offsets = [0]
        for customer_id in customer_ids:
            state = self._states[customer_id]
            current = state.current_items
            for item, count in state.tracker.presence_counts().items():
                flat_items.append(item)
                flat_counts.append(count)
                flat_kept.append(item in current)
            n_observed.append(state.tracker.n_windows_observed)
            offsets.append(len(flat_counts))
        offsets_arr = np.asarray(offsets, dtype=np.int64)
        counts = np.asarray(flat_counts, dtype=np.float64)
        kept_mask = np.asarray(flat_kept, dtype=np.float64)
        # Each tracker counts windows since its own registration, so the
        # prior-window count k is per customer, broadcast over its items.
        k_per_item = np.repeat(
            np.asarray(n_observed, dtype=np.float64), np.diff(offsets_arr)
        )
        significance = significance_from_counts(
            counts, k_per_item, self.significance.alpha
        )
        total = _segment_sum(significance, offsets_arr)
        kept = _segment_sum(significance * kept_mask, offsets_arr)

        stabilities: dict[int, float] = {}
        alarms: list[Alarm] = []
        for i, customer_id in enumerate(customer_ids):
            state = self._states[customer_id]
            stability = kept[i] / total[i] if total[i] > 0 else math.nan
            lo, hi = offsets[i], offsets[i + 1]
            self._record_close(
                state, window_index, stability, stabilities, alarms,
                missing={
                    item: float(sig)
                    for item, sig, was_kept in zip(
                        flat_items[lo:hi],
                        significance[lo:hi],
                        flat_kept[lo:hi],
                        strict=True,
                    )
                    if not was_kept and sig > 0.0
                },
            )
        self._current_window += 1
        return WindowCloseReport(
            window_index=window_index,
            stabilities=stabilities,
            alarms=tuple(alarms),
        )

    def _record_close(
        self,
        state: CustomerState,
        window_index: int,
        stability: float,
        stabilities: dict[int, float],
        alarms: list[Alarm],
        missing: dict[int, float],
    ) -> None:
        """Shared bookkeeping for one customer at window close."""
        stability = float(stability)
        stabilities[state.customer_id] = stability
        state.last_stability = stability
        self._last_missing[state.customer_id] = missing
        if (
            window_index >= self.first_alarm_window
            and not math.isnan(stability)
            and stability <= self.beta
        ):
            alarms.append(
                Alarm(
                    customer_id=state.customer_id,
                    window_index=window_index,
                    stability=stability,
                )
            )
        state.tracker.observe_window(state.current_items)
        state.current_items = set()
