"""The paper's contribution: the customer-stability attrition model.

Layered exactly as Section 2 of the paper:

* :mod:`repro.core.windowing` — the windowed database ``D_i^w``;
* :mod:`repro.core.significance` — item significance ``S(p, k)``;
* :mod:`repro.core.stability` — per-window stability and trajectories;
* :mod:`repro.core.explanation` — argmax / top-K missing-item explanations;
* :mod:`repro.core.detector` — the beta-threshold defection rule;
* :mod:`repro.core.model` — the :class:`StabilityModel` facade;
* :mod:`repro.core.tuning` — the paper's 5-fold CV parameter search.
"""

from repro.core.batch import (
    BatchStability,
    batch_churn_scores,
    significance_from_counts,
    stability_matrix,
)
from repro.core.characterization import (
    LossEvent,
    PopulationLossProfile,
    SegmentLossSummary,
    classify_loss,
    loss_events,
    profile_population,
)
from repro.core.detector import Alarm, ThresholdDetector
from repro.core.engines import (
    EngineFit,
    FitSpec,
    available_engines,
    frame_windowed_history,
    get_engine,
    register_engine,
)
from repro.core.explanation import (
    DropExplanation,
    MissingItem,
    explain_drop,
    explain_trajectory,
    explain_window,
)
from repro.core.model import StabilityModel
from repro.core.significance import (
    COUNTING_SCHEMES,
    validate_alpha,
    ExponentialSignificance,
    FrequencyRatioSignificance,
    ItemCounts,
    LinearSignificance,
    SignificanceFunction,
    SignificanceTracker,
)
from repro.core.stability import StabilityTrajectory, WindowStability, stability_trajectory
from repro.core.streaming import CustomerState, StabilityMonitor, WindowCloseReport
from repro.core.trend import TrendForecast, forecast_stability, rank_by_risk
from repro.core.tuning import TuningOutcome, tune_stability_model
from repro.core.vectorized import vectorized_churn_scores, vectorized_stability
from repro.core.windowing import Window, WindowGrid, windowed_history

__all__ = [
    "Alarm",
    "BatchStability",
    "COUNTING_SCHEMES",
    "EngineFit",
    "FitSpec",
    "available_engines",
    "frame_windowed_history",
    "get_engine",
    "register_engine",
    "batch_churn_scores",
    "significance_from_counts",
    "stability_matrix",
    "validate_alpha",
    "CustomerState",
    "DropExplanation",
    "LossEvent",
    "PopulationLossProfile",
    "SegmentLossSummary",
    "StabilityMonitor",
    "WindowCloseReport",
    "classify_loss",
    "loss_events",
    "profile_population",
    "ExponentialSignificance",
    "FrequencyRatioSignificance",
    "ItemCounts",
    "LinearSignificance",
    "MissingItem",
    "SignificanceFunction",
    "SignificanceTracker",
    "StabilityModel",
    "StabilityTrajectory",
    "ThresholdDetector",
    "TrendForecast",
    "TuningOutcome",
    "forecast_stability",
    "rank_by_risk",
    "Window",
    "WindowGrid",
    "WindowStability",
    "explain_drop",
    "explain_trajectory",
    "explain_window",
    "stability_trajectory",
    "tune_stability_model",
    "vectorized_churn_scores",
    "vectorized_stability",
    "windowed_history",
]
