"""Vectorised stability computation.

A second, independent implementation of the paper's stability model built
on numpy matrices instead of per-window Python sets.  For one customer:

* build the boolean **presence matrix** ``P`` of shape
  ``(n_items, n_windows)`` (``P[i, k]`` = item ``i`` in window ``k``);
* prior-presence counts: ``C[:, k] = sum_{v < k} P[:, v]`` (a shifted
  cumulative sum), and with the paper's counting scheme ``L = k - C``;
* significance ``S = alpha ** (C - L)`` masked to 0 where ``C == 0``
  (computed in log space with the same saturation cap as
  :class:`~repro.core.significance.ExponentialSignificance`);
* stability per window: ``(P * S).sum(axis=0) / S.sum(axis=0)`` with 0/0
  mapped to NaN.

The module exists for two reasons:

1. **speed** — scoring a large customer base is ~an order of magnitude
   faster than the incremental engine;
2. **differential testing** — two independent implementations of the same
   definition cross-check each other; the test suite asserts exact
   agreement on random inputs.

Only the exponential significance and the ``"paper"`` counting scheme are
supported; the flexible engine remains :mod:`repro.core.stability`, and
the population-scale batched implementation (whole log, all customers ×
all windows at once) lives in :mod:`repro.core.batch`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.significance import validate_alpha
from repro.core.stability import StabilityTrajectory, stability_trajectory
from repro.core.windowing import Window, WindowGrid
from repro.data.transactions import TransactionLog

__all__ = ["vectorized_stability", "vectorized_churn_scores"]

#: Saturation cap matching ExponentialSignificance._MAX_LOG.
_MAX_LOG = 700.0


def vectorized_stability(
    windows: Sequence[Window], alpha: float = 2.0
) -> np.ndarray:
    """Stability values of one customer's windowed history.

    Returns an array of length ``len(windows)`` with NaN where stability
    is undefined (no prior significance mass).  Exact agreement with
    :func:`~repro.core.stability.stability_trajectory` under the paper's
    counting scheme is guaranteed (and tested).
    """
    stability, _, _ = _vectorized_masses(windows, alpha)
    return stability


def _vectorized_masses(
    windows: Sequence[Window], alpha: float = 2.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(stability, kept_mass, total_mass)`` arrays for one customer."""
    validate_alpha(alpha)
    n_windows = len(windows)
    if n_windows == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy(), empty.copy()
    items = sorted({item for window in windows for item in window.items})
    if not items:
        zeros = np.zeros(n_windows, dtype=np.float64)
        return np.full(n_windows, np.nan), zeros, zeros.copy()
    index_of = {item: i for i, item in enumerate(items)}
    presence = np.zeros((len(items), n_windows), dtype=np.float64)
    for k, window in enumerate(windows):
        for item in window.items:
            presence[index_of[item], k] = 1.0

    # C[:, k] = presences strictly before window k; L = k - C (paper scheme).
    cumulative = np.cumsum(presence, axis=1)
    prior = np.zeros_like(presence)
    prior[:, 1:] = cumulative[:, :-1]
    window_index = np.arange(n_windows, dtype=np.float64)
    margin = 2.0 * prior - window_index  # C - L = C - (k - C)

    log_alpha = math.log(alpha)
    significance = np.exp(np.minimum(margin * log_alpha, _MAX_LOG))
    significance[prior == 0.0] = 0.0

    total = significance.sum(axis=0)
    kept = (significance * presence).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        stability = np.where(total > 0.0, kept / total, np.nan)
    return stability, kept, total


def vectorized_churn_scores(
    log: TransactionLog,
    grid: WindowGrid,
    window_index: int,
    customers: Iterable[int] | None = None,
    alpha: float = 2.0,
) -> dict[int, float]:
    """Churn scores (``1 - stability``) for many customers at one window.

    Drop-in fast path for
    :meth:`repro.core.model.StabilityModel.churn_scores` with default
    settings; undefined stability maps to the same neutral 0.5.

    Routed through the population batch engine
    (:func:`repro.core.batch.batch_churn_scores`): the cumulative-count
    math is sliced at ``window_index``, so no customer's full trajectory
    is recomputed just to read one window's score.
    """
    from repro.core.batch import batch_churn_scores

    return batch_churn_scores(
        log, grid, window_index, customers=customers, alpha=alpha
    )


def reference_stability(
    windows: Sequence[Window], alpha: float = 2.0
) -> StabilityTrajectory:
    """The incremental engine on the same inputs (testing convenience)."""
    from repro.core.significance import ExponentialSignificance

    return stability_trajectory(
        0, windows, significance=ExponentialSignificance(alpha)
    )
