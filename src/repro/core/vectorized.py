"""Vectorised stability computation.

A second, independent implementation of the paper's stability model built
on numpy matrices instead of per-window Python sets.  For one customer:

* build the boolean **presence matrix** ``P`` of shape
  ``(n_items, n_windows)`` (``P[i, k]`` = item ``i`` in window ``k``);
* prior-presence counts: ``C[:, k] = sum_{v < k} P[:, v]`` (a shifted
  cumulative sum), and with the paper's counting scheme ``L = k - C``;
* significance ``S = alpha ** (C - L)`` masked to 0 where ``C == 0``
  (computed in log space with the same saturation cap as
  :class:`~repro.core.significance.ExponentialSignificance`);
* stability per window: ``(P * S).sum(axis=0) / S.sum(axis=0)`` with 0/0
  mapped to NaN.

The module exists for two reasons:

1. **speed** — scoring a large customer base is ~an order of magnitude
   faster than the incremental engine;
2. **differential testing** — two independent implementations of the same
   definition cross-check each other; the test suite asserts exact
   agreement on random inputs.

Only the exponential significance and the ``"paper"`` counting scheme are
supported; the flexible engine remains :mod:`repro.core.stability`.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.stability import StabilityTrajectory, stability_trajectory
from repro.core.windowing import Window, WindowGrid, windowed_history
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError

__all__ = ["vectorized_stability", "vectorized_churn_scores"]

#: Saturation cap matching ExponentialSignificance._MAX_LOG.
_MAX_LOG = 700.0


def vectorized_stability(
    windows: Sequence[Window], alpha: float = 2.0
) -> np.ndarray:
    """Stability values of one customer's windowed history.

    Returns an array of length ``len(windows)`` with NaN where stability
    is undefined (no prior significance mass).  Exact agreement with
    :func:`~repro.core.stability.stability_trajectory` under the paper's
    counting scheme is guaranteed (and tested).
    """
    if alpha <= 0:
        raise ConfigError(f"alpha must be positive, got {alpha}")
    n_windows = len(windows)
    if n_windows == 0:
        return np.empty(0, dtype=np.float64)
    items = sorted({item for window in windows for item in window.items})
    if not items:
        return np.full(n_windows, np.nan)
    index_of = {item: i for i, item in enumerate(items)}
    presence = np.zeros((len(items), n_windows), dtype=np.float64)
    for k, window in enumerate(windows):
        for item in window.items:
            presence[index_of[item], k] = 1.0

    # C[:, k] = presences strictly before window k; L = k - C (paper scheme).
    cumulative = np.cumsum(presence, axis=1)
    prior = np.zeros_like(presence)
    prior[:, 1:] = cumulative[:, :-1]
    window_index = np.arange(n_windows, dtype=np.float64)
    margin = 2.0 * prior - window_index  # C - L = C - (k - C)

    log_alpha = math.log(alpha)
    significance = np.exp(np.minimum(margin * log_alpha, _MAX_LOG))
    significance[prior == 0.0] = 0.0

    total = significance.sum(axis=0)
    kept = (significance * presence).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        stability = np.where(total > 0.0, kept / total, np.nan)
    return stability


def vectorized_churn_scores(
    log: TransactionLog,
    grid: WindowGrid,
    window_index: int,
    customers: Iterable[int] | None = None,
    alpha: float = 2.0,
) -> dict[int, float]:
    """Churn scores (``1 - stability``) for many customers at one window.

    Drop-in fast path for
    :meth:`repro.core.model.StabilityModel.churn_scores` with default
    settings; undefined stability maps to the same neutral 0.5.
    """
    if not 0 <= window_index < grid.n_windows:
        raise ConfigError(
            f"window index {window_index} out of range [0, {grid.n_windows})"
        )
    selected = list(customers) if customers is not None else log.customers()
    scores: dict[int, float] = {}
    for customer_id in selected:
        windows = windowed_history(log.history(customer_id), grid)
        stability = vectorized_stability(windows, alpha=alpha)[window_index]
        scores[customer_id] = 0.5 if math.isnan(stability) else 1.0 - float(stability)
    return scores


def reference_stability(
    windows: Sequence[Window], alpha: float = 2.0
) -> StabilityTrajectory:
    """The incremental engine on the same inputs (testing convenience)."""
    from repro.core.significance import ExponentialSignificance

    return stability_trajectory(
        0, windows, significance=ExponentialSignificance(alpha)
    )
