"""Windowed databases: splitting purchase histories into fixed windows.

Section 2 of the paper: given a window span ``w``, the customer database
``D_i`` is divided "in consecutive non overlapping windows of time span w"
to obtain the windowed database ``D_i^w``, an ordered list of tuples
``(t^B_k, t^E_k, u_k)`` where ``u_k`` is the set of all products bought
during window ``k``.

Windows here are anchored on the **study calendar** (all customers share
the same window grid), expressed in whole months — the paper's evaluation
uses 2-month windows over a 28-month study and indexes results by month.
Day-span windows are also supported for datasets without calendar
structure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.errors import ConfigError

__all__ = ["Window", "WindowGrid", "windowed_history"]


@dataclass(frozen=True, slots=True)
class Window:
    """One window of a windowed database.

    Attributes
    ----------
    index:
        Window number ``k`` (0-based, chronological).
    begin_day, end_day:
        Half-open day-offset interval ``[begin_day, end_day)``.
    items:
        ``u_k``: the union of items bought in the window (empty when the
        customer made no purchase).
    n_baskets:
        Number of receipts in the window.
    monetary:
        Total spend in the window.
    """

    index: int
    begin_day: int
    end_day: int
    items: frozenset[int]
    n_baskets: int = 0
    monetary: float = 0.0

    @property
    def span_days(self) -> int:
        return self.end_day - self.begin_day


@dataclass(frozen=True)
class WindowGrid:
    """A shared grid of consecutive non-overlapping windows.

    Built either from whole months on a :class:`StudyCalendar`
    (:meth:`monthly`) or from a fixed day span (:meth:`daily`).
    """

    boundaries: tuple[int, ...]  # day offsets; window k = [b[k], b[k+1])
    months_per_window: int | None = None  # set when built from a calendar

    def __post_init__(self) -> None:
        if len(self.boundaries) < 2:
            raise ConfigError("a window grid needs at least one window")
        if any(b >= e for b, e in zip(self.boundaries, self.boundaries[1:], strict=False)):
            raise ConfigError("window boundaries must be strictly increasing")

    @classmethod
    def monthly(cls, calendar: StudyCalendar, months_per_window: int) -> WindowGrid:
        """Grid of ``months_per_window``-month windows covering the study.

        A trailing partial window (when the study length is not a
        multiple of the window span) is dropped, matching the paper's
        "consecutive non overlapping windows of time span w".
        """
        if months_per_window <= 0:
            raise ConfigError(f"months_per_window must be positive, got {months_per_window}")
        n_windows = calendar.n_months // months_per_window
        if n_windows == 0:
            raise ConfigError(
                f"window of {months_per_window} months does not fit in a "
                f"{calendar.n_months}-month study"
            )
        boundaries = tuple(
            calendar.month_start_day(k * months_per_window) for k in range(n_windows)
        ) + (calendar.month_start_day(n_windows * months_per_window),)
        return cls(boundaries=boundaries, months_per_window=months_per_window)

    @classmethod
    def daily(cls, total_days: int, days_per_window: int) -> WindowGrid:
        """Grid of fixed ``days_per_window`` windows over ``total_days`` days."""
        if days_per_window <= 0:
            raise ConfigError(f"days_per_window must be positive, got {days_per_window}")
        n_windows = total_days // days_per_window
        if n_windows == 0:
            raise ConfigError(
                f"window of {days_per_window} days does not fit in {total_days} days"
            )
        boundaries = tuple(k * days_per_window for k in range(n_windows + 1))
        return cls(boundaries=boundaries)

    # ------------------------------------------------------------------
    @property
    def n_windows(self) -> int:
        return len(self.boundaries) - 1

    def bounds(self, index: int) -> tuple[int, int]:
        """``(begin_day, end_day)`` of window ``index``."""
        if not 0 <= index < self.n_windows:
            raise ConfigError(f"window index {index} out of range [0, {self.n_windows})")
        return self.boundaries[index], self.boundaries[index + 1]

    def window_of_day(self, day: int) -> int | None:
        """Index of the window containing ``day`` (``None`` if outside the grid)."""
        if day < self.boundaries[0] or day >= self.boundaries[-1]:
            return None
        # Linear scan is fine: grids have at most a few dozen windows.
        for index in range(self.n_windows):
            if self.boundaries[index] <= day < self.boundaries[index + 1]:
                return index
        return None  # pragma: no cover - unreachable by construction

    def end_month(self, index: int, calendar: StudyCalendar) -> int:
        """Study month in which window ``index`` ends (inclusive month index).

        Used to place a window on the paper's "number of months" axis: a
        2-month window k covers months ``2k`` and ``2k+1`` and is plotted
        at month ``2(k+1)`` (months elapsed at its end).
        """
        begin, end = self.bounds(index)
        del begin
        return calendar.month_of_day(end - 1) + 1


def windowed_history(baskets: Sequence[Basket], grid: WindowGrid) -> list[Window]:
    """Build the windowed database ``D_i^w`` of one customer.

    Every grid window is materialised, including empty ones — a window
    with no purchases is exactly the signal the stability model reacts
    to, so it must not be silently dropped.  Baskets outside the grid are
    ignored.
    """
    per_window_items: list[set[int]] = [set() for _ in range(grid.n_windows)]
    per_window_counts = [0] * grid.n_windows
    per_window_monetary = [0.0] * grid.n_windows
    for basket in baskets:
        index = grid.window_of_day(basket.day)
        if index is None:
            continue
        per_window_items[index] |= basket.items
        per_window_counts[index] += 1
        per_window_monetary[index] += basket.monetary
    return [
        Window(
            index=k,
            begin_day=grid.boundaries[k],
            end_day=grid.boundaries[k + 1],
            items=frozenset(per_window_items[k]),
            n_baskets=per_window_counts[k],
            monetary=per_window_monetary[k],
        )
        for k in range(grid.n_windows)
    ]
