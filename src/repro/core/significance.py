"""Item significance scores ``S(p, k)``.

Section 2 of the paper: for an item ``p`` and window ``k``, with

* ``c(k)`` = number of windows **prior to** ``k`` that contain ``p``,
* ``l(k)`` = number of windows prior to ``k`` that do **not** contain ``p``,

the significance is ``S(p, k) = alpha ** (c(k) - l(k))`` if ``c(k) > 0``
and ``0`` otherwise, with ``alpha > 1`` so that habitual items dominate.
Note that by this definition ``c(k) + l(k) = k`` for every item: windows
before an item's first purchase count as misses.

The exponential form is the paper's choice; the ablation study (DESIGN.md
A1) compares it against alternatives, so the scoring rule is a small
strategy interface: callables from ``(c, l)`` to a non-negative score.
An incremental :class:`SignificanceTracker` maintains the counts while
windows stream by, giving O(items-per-window) amortised updates instead of
recomputing counts from scratch.

Two counting schemes are supported:

* ``"paper"`` (default) — the strict definition above, ``l = k - c``;
* ``"since-first-seen"`` — absences only accumulate after the item's
  first purchase, an ablation variant that does not penalise late
  adopters of a product.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ConfigError, ConfigWarning

__all__ = [
    "SignificanceFunction",
    "ExponentialSignificance",
    "FrequencyRatioSignificance",
    "LinearSignificance",
    "ItemCounts",
    "SignificanceTracker",
    "COUNTING_SCHEMES",
    "validate_alpha",
]

#: Supported counting schemes for prior-window absences.
COUNTING_SCHEMES = ("paper", "since-first-seen")


def validate_alpha(alpha: float) -> float:
    """Validate the exponential-significance base ``alpha``.

    The paper requires ``alpha > 1`` so habitual items dominate.
    ``alpha <= 0`` is rejected outright (the score is undefined);
    ``0 < alpha <= 1`` is legal arithmetic but flattens (``alpha == 1``)
    or inverts (``alpha < 1``) the significance ordering, so it emits a
    :class:`~repro.errors.ConfigWarning` instead of silently proceeding.

    Every entry point that accepts ``alpha`` — this module, the
    vectorised kernels, the batch engine and :class:`StabilityModel` —
    funnels through this single check so the behaviour stays consistent.
    """
    if alpha <= 0:
        raise ConfigError(f"alpha must be positive, got {alpha}")
    if alpha <= 1:
        warnings.warn(
            f"alpha={alpha:g} is outside the paper's alpha > 1 regime: "
            "significance no longer favours habitual items "
            "(alpha = 1 is flat, alpha < 1 inverts the ordering)",
            ConfigWarning,
            stacklevel=3,
        )
    return float(alpha)


class SignificanceFunction:
    """Base strategy: maps prior-window counts ``(c, l)`` to a score.

    Subclasses implement :meth:`score`; the convention ``S = 0`` whenever
    ``c == 0`` (an item never seen before carries no expectation) is
    enforced here so every strategy shares it.
    """

    name: str = "base"

    def score(self, c: int, l: int) -> float:
        """Score for an item seen in ``c`` prior windows, missed in ``l``."""
        raise NotImplementedError

    def __call__(self, c: int, l: int) -> float:
        if c < 0 or l < 0:
            raise ConfigError(f"counts must be non-negative, got c={c}, l={l}")
        if c == 0:
            return 0.0
        return self.score(c, l)


@dataclass(frozen=True)
class ExponentialSignificance(SignificanceFunction):
    """The paper's scoring rule: ``S = alpha ** (c - l)``.

    ``alpha`` is "a parameter of the method"; the paper generally fixes
    ``alpha > 1`` (and uses ``alpha = 2`` in the experiments) so that the
    significance grows when an item keeps recurring and shrinks
    geometrically when it is missed.

    The score is computed in log space with the exponent clamped to the
    finite double range: on long histories ``alpha ** (c - l)`` would
    overflow (``2 ** 1100`` already exceeds the largest double), and a
    saturated-but-finite score keeps the stability ratio well defined —
    only the *relative* significance of items matters to stability and to
    the argmax explanation.
    """

    alpha: float = 2.0
    name: str = field(default="exponential", init=False)

    #: |log-score| cap; exp(700) is close to the largest finite double.
    _MAX_LOG: float = field(default=700.0, init=False, repr=False)

    def __post_init__(self) -> None:
        validate_alpha(self.alpha)

    def score(self, c: int, l: int) -> float:
        log_score = (c - l) * math.log(self.alpha)
        # Underflow is harmless (math.exp returns 0.0); only cap the top.
        return math.exp(min(log_score, self._MAX_LOG))


@dataclass(frozen=True)
class FrequencyRatioSignificance(SignificanceFunction):
    """Ablation alternative: ``S = c / (c + l)`` (prior-window frequency)."""

    name: str = field(default="frequency-ratio", init=False)

    def score(self, c: int, l: int) -> float:
        return c / (c + l) if (c + l) else 0.0


@dataclass(frozen=True)
class LinearSignificance(SignificanceFunction):
    """Ablation alternative: ``S = max(c - l, 0)`` (clipped count margin)."""

    name: str = field(default="linear", init=False)

    def score(self, c: int, l: int) -> float:
        return float(max(c - l, 0))


@dataclass(frozen=True, slots=True)
class ItemCounts:
    """Prior-window counts for one item: ``c`` (present) and ``l`` (absent)."""

    c: int = 0
    l: int = 0


class SignificanceTracker:
    """Incrementally tracks ``c(k)``/``l(k)`` and significance per item.

    Usage: call :meth:`significance_snapshot` (or :meth:`significance_of`)
    *before* :meth:`observe_window` for each window in order — counts are
    defined over windows *strictly prior* to ``k``, so the snapshot for
    window ``k`` reflects windows ``0..k-1`` only.

    Internally only the presence count ``c`` and the first-seen window are
    stored per item; ``l`` is derived from the number of observed windows
    according to the counting scheme, so an update touches only the items
    present in the window.

    Examples
    --------
    >>> tracker = SignificanceTracker(ExponentialSignificance(alpha=2))
    >>> tracker.observe_window({1, 2})
    >>> tracker.significance_of(1)
    2.0
    >>> tracker.observe_window({1})
    >>> tracker.significance_of(2)  # c=1, l=1: 2 ** 0
    1.0
    """

    def __init__(
        self,
        function: SignificanceFunction | None = None,
        counting: str = "paper",
    ) -> None:
        if counting not in COUNTING_SCHEMES:
            raise ConfigError(
                f"unknown counting scheme {counting!r}; expected one of {COUNTING_SCHEMES}"
            )
        self.function = function if function is not None else ExponentialSignificance()
        self.counting = counting
        self._presence: dict[int, int] = {}  # item -> c
        self._first_seen: dict[int, int] = {}  # item -> window index of first purchase
        self._n_windows = 0

    @property
    def n_windows_observed(self) -> int:
        """Number of windows fed to :meth:`observe_window` so far."""
        return self._n_windows

    def known_items(self) -> frozenset[int]:
        """Items seen in at least one observed window (``c > 0``).

        This is the effective support of the denominator
        ``sum_{p in I} S(p, k)``: items with ``c = 0`` score 0 by
        definition, so the universe ``I`` reduces to the items the
        customer has ever bought.
        """
        return frozenset(self._presence)

    def presence_counts(self) -> dict[int, int]:
        """Per-item presence counts ``c``, in first-seen order.

        Exposed so vectorised consumers (the streaming monitor's batched
        window close) can lift the counts into arrays without one
        :meth:`counts_of` call per item.  Treat as read-only.
        """
        return self._presence

    def counts_of(self, item: int) -> ItemCounts:
        """Current ``(c, l)`` counts for an item (zeros if never seen)."""
        c = self._presence.get(item, 0)
        if c == 0:
            return ItemCounts(c=0, l=self._n_windows if self.counting == "paper" else 0)
        if self.counting == "paper":
            l = self._n_windows - c
        else:
            l = self._n_windows - self._first_seen[item] - c
        return ItemCounts(c=c, l=l)

    def significance_of(self, item: int) -> float:
        """``S(item, k)`` where ``k`` is the next window to be observed."""
        counts = self.counts_of(item)
        return self.function(counts.c, counts.l)

    def significance_snapshot(self) -> dict[int, float]:
        """``S(p, k)`` for every known item, at the next window ``k``."""
        return {item: self.significance_of(item) for item in self._presence}

    def observe_window(self, items: Iterable[int]) -> None:
        """Fold window contents ``u_k`` into the counts.

        Items are folded in sorted order so the snapshot dict's
        iteration order — and with it every downstream float
        accumulation — is a function of the window *contents*, never of
        the hash-table layout of the set that delivered them.  That is
        what lets a log-built and a column-rebuilt history produce
        bit-identical trajectories.
        """
        window_index = self._n_windows
        for item in sorted(set(items)):
            if item not in self._presence:
                self._presence[item] = 1
                self._first_seen[item] = window_index
            else:
                self._presence[item] += 1
        self._n_windows += 1
