"""The ``lint`` entry point, shared by the umbrella CLI and ``-m``.

``repro-attrition lint`` and ``python -m repro.analysis`` run the same
code: lint the given paths (default: the ``src/repro`` tree), subtract
the committed baseline, print the report, and exit non-zero when
anything *new* fired.  ``--format json --output findings.json`` is what
CI uploads as a build artifact on failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import BASELINE_NAME, Baseline
from repro.analysis.engine import all_rules, run_analysis, select_rules
from repro.errors import ConfigError, SchemaError

__all__ = ["add_lint_arguments", "run_lint", "main"]


def default_paths() -> list[Path]:
    """The tree to lint when none is given: ``src/repro`` if present,
    else the installed ``repro`` package directory."""
    src = Path("src/repro")
    if src.is_dir():
        return [src]
    import repro

    return [Path(repro.__file__).parent]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to lint (default: the src/repro tree)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            f"baseline file of grandfathered findings (default: "
            f"./{BASELINE_NAME} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding as new",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help=(
            "comma-separated rule ids or family globs to run, e.g. "
            "'SEQ001,DUR*' (default: all registered)"
        ),
    )
    parser.add_argument(
        "--graph-out",
        type=Path,
        default=None,
        help=(
            "write the project call-graph JSON (repro-callgraph schema) "
            "to this file; CI archives it next to the findings"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="report format (json is what CI archives)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report to this file (same format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.scope:<7}  {rule.summary}")
        return 0
    paths = [Path(p) for p in args.paths] or default_paths()
    try:
        rules = None if args.rules is None else select_rules(args.rules)
        if args.no_baseline:
            baseline = Baseline(entries=())
        elif args.baseline is not None:
            baseline = Baseline.load(args.baseline)
        else:
            baseline = Baseline.load_or_empty(Path.cwd() / BASELINE_NAME)
        report = run_analysis(
            paths,
            baseline=baseline,
            root=Path.cwd(),
            rules=rules,
            graph_out=args.graph_out,
        )
    except (ConfigError, SchemaError, OSError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    rendered = (
        report.render()
        if args.fmt == "text"
        else json.dumps(report.to_dict(), indent=2) + "\n"
    )
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.output is not None:
        from repro.atomicio import atomic_write_text

        atomic_write_text(
            args.output,
            rendered if rendered.endswith("\n") else rendered + "\n",
        )
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.analysis`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter for the repro stack (DESIGN.md §8)",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
