"""Intraprocedural control-flow graph with ordering queries.

Rule SEQ001 needs a *static* answer to the question PR 7's kill-site
tests probe dynamically: on every non-exceptional path through a
function, does the shard-state write happen before the cursor seal?
That is a happens-before query over a statement-level CFG, built here
from the stdlib AST:

* sequencing, ``if``/``else``, ``for``/``while`` (with ``break`` /
  ``continue`` and ``else`` clauses), ``with`` and ``match`` are wired
  as normal control flow;
* ``return`` jumps to the exit node, ``raise`` to a distinct
  *exceptional* exit;
* ``try`` bodies flow into their ``finally`` (and ``else``) normally;
  ``except`` handler bodies are **excluded** from the normal-path
  graph — the invariants checked here are about non-exceptional
  ordering, and an exception between two durable writes is exactly the
  crash case the commit protocol already tolerates.

The graph is statement-granular: each simple statement is one node and
a predicate examines the statement's expression tree (minus nested
``def``/``lambda`` bodies, which execute elsewhere).

:meth:`ControlFlowGraph.unordered` is the verifier query: statements
satisfying ``second`` that are reachable from the function entry
without first executing a statement satisfying ``first``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Callable, Iterator, Sequence

__all__ = ["ControlFlowGraph", "statement_calls"]


def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a *compound* statement evaluates itself (its
    test/iter/items), as opposed to its body, which the CFG wires as
    separate nodes.  Simple statements evaluate their whole tree."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [stmt]


def statement_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Calls executed *by* this statement: the statement's own
    expressions only (compound bodies are their own CFG nodes, nested
    ``def``/``lambda`` bodies execute elsewhere)."""
    todo: list[ast.AST] = list(_header_exprs(stmt))
    while todo:
        node = todo.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            yield node
        todo.extend(ast.iter_child_nodes(node))


@dataclass
class _Node:
    """One statement (or a synthetic entry/exit sentinel)."""

    index: int
    stmt: ast.stmt | None
    succs: set[int] = field(default_factory=set)


class ControlFlowGraph:
    """Normal-path CFG of one function (see module docstring)."""

    def __init__(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self.fn = fn
        self.nodes: list[_Node] = []
        self.entry = self._new(None)
        self.exit = self._new(None)
        self._loop_stack: list[tuple[int, int]] = []  # (head, after)
        frontier = self._build_block(fn.body, {self.entry.index})
        self._link(frontier, self.exit.index)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _new(self, stmt: ast.stmt | None) -> _Node:
        node = _Node(index=len(self.nodes), stmt=stmt)
        self.nodes.append(node)
        return node

    def _link(self, preds: set[int], succ: int) -> None:
        for pred in preds:
            self.nodes[pred].succs.add(succ)

    def _build_block(
        self, stmts: Sequence[ast.stmt], preds: set[int]
    ) -> set[int]:
        """Wire ``stmts`` after ``preds``; returns the new frontier (the
        nodes whose successor is whatever follows the block).  An empty
        frontier means the block never completes normally."""
        frontier = preds
        for stmt in stmts:
            if not frontier:
                break  # unreachable: everything above returned/raised
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _build_stmt(self, stmt: ast.stmt, preds: set[int]) -> set[int]:
        node = self._new(stmt)
        self._link(preds, node.index)
        at = {node.index}
        if isinstance(stmt, ast.Return):
            self._link(at, self.exit.index)
            return set()
        if isinstance(stmt, ast.Raise):
            return set()  # exceptional exit: off the normal-path graph
        if isinstance(stmt, ast.If):
            then_out = self._build_block(stmt.body, at)
            else_out = self._build_block(stmt.orelse, at) if stmt.orelse else at
            return then_out | else_out
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._build_loop(stmt, node, at)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_block(stmt.body, at)
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            return self._build_try(stmt, at)
        if isinstance(stmt, ast.Match):
            outs: set[int] = set()
            exhaustive = False
            for case in stmt.cases:
                outs |= self._build_block(case.body, at)
                if (
                    isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None
                    and case.guard is None
                ):
                    exhaustive = True
            return outs if exhaustive else outs | at
        if isinstance(stmt, ast.Break):
            if self._loop_stack:
                self._link(at, self._loop_stack[-1][1])
            return set()
        if isinstance(stmt, ast.Continue):
            if self._loop_stack:
                self._link(at, self._loop_stack[-1][0])
            return set()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return at  # a definition executes as one opaque statement
        return at

    def _build_loop(
        self,
        stmt: ast.For | ast.AsyncFor | ast.While,
        head: _Node,
        at: set[int],
    ) -> set[int]:
        # ``after`` is a synthetic join so break targets exist before
        # the loop body is built.
        after = self._new(None)
        self._loop_stack.append((head.index, after.index))
        body_out = self._build_block(stmt.body, at)
        self._loop_stack.pop()
        self._link(body_out, head.index)  # next iteration
        # Zero-iteration / condition-false path, then the else clause.
        else_out = self._build_block(stmt.orelse, at) if stmt.orelse else at
        self._link(else_out, after.index)
        return {after.index}

    def _build_try(self, stmt: ast.Try, at: set[int]) -> set[int]:
        body_out = self._build_block(stmt.body, at)
        else_out = (
            self._build_block(stmt.orelse, body_out)
            if stmt.orelse
            else body_out
        )
        # Handler bodies are exceptional paths: excluded by design.
        if stmt.finalbody:
            return self._build_block(stmt.finalbody, else_out)
        return else_out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def unordered(
        self,
        first: Callable[[ast.stmt], bool],
        second: Callable[[ast.stmt], bool],
    ) -> list[ast.stmt]:
        """Statements satisfying ``second`` reachable from the entry
        without executing any statement satisfying ``first`` — i.e. the
        witnesses that ``first`` does *not* happen-before ``second`` on
        all non-exceptional paths.  Empty list == the ordering holds.
        """
        violations: list[ast.stmt] = []
        seen: set[int] = set()
        todo = [self.entry.index]
        while todo:
            index = todo.pop()
            if index in seen:
                continue
            seen.add(index)
            node = self.nodes[index]
            if node.stmt is not None:
                is_first = first(node.stmt)
                if second(node.stmt) and not is_first:
                    violations.append(node.stmt)
                if is_first:
                    # Every path through here has now executed `first`;
                    # stop expanding this branch.
                    continue
            todo.extend(node.succs)
        return violations

    def reachable_without(
        self,
        target: Callable[[ast.stmt], bool],
        barrier: Callable[[ast.stmt], bool],
    ) -> bool:
        """Whether some normal path reaches a ``target`` statement
        without crossing a ``barrier`` statement first."""
        return bool(self.unordered(barrier, target))

    def reachable_from(
        self,
        source: Callable[[ast.stmt], bool],
        target: Callable[[ast.stmt], bool],
    ) -> list[ast.stmt]:
        """Statements satisfying ``target`` that can execute strictly
        *after* some statement satisfying ``source`` on a normal path —
        the witnesses that ``source`` can happen-before ``target``.
        Empty list == no such path exists."""
        starts = [
            node.index
            for node in self.nodes
            if node.stmt is not None and source(node.stmt)
        ]
        seen: set[int] = set()
        todo: list[int] = []
        for index in starts:
            todo.extend(self.nodes[index].succs)
        witnesses: list[ast.stmt] = []
        while todo:
            index = todo.pop()
            if index in seen:
                continue
            seen.add(index)
            node = self.nodes[index]
            if node.stmt is not None and target(node.stmt):
                witnesses.append(node.stmt)
            todo.extend(node.succs)
        return witnesses
