"""Project-wide analysis context: symbols + call graph, built once.

This package turns :mod:`repro.analysis` from a per-file linter into a
multi-pass project verifier (DESIGN.md §8.8).  A
:class:`ProjectContext` is built once per run over every parsed
:class:`~repro.analysis.engine.FileContext` and handed to each
registered project rule (``scope == "project"``): the cross-module
symbol table (:mod:`.symbols`), the call graph with reachability
queries and the ``--graph-out`` JSON form (:mod:`.callgraph`), and the
per-function CFG ordering queries (:mod:`.cfg`).

The build is itself observable: it runs under the
``analysis.project_build`` span and reports file/function/edge counts
through the ``analysis.project_*`` counters of the canonical taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.project.callgraph import (
    GRAPH_SCHEMA,
    GRAPH_VERSION,
    CallGraph,
    CallSite,
    render_chain,
)
from repro.analysis.project.cfg import ControlFlowGraph, statement_calls
from repro.analysis.project.symbols import FunctionInfo, SymbolTable

if TYPE_CHECKING:
    from collections.abc import Iterator, Sequence

    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding

__all__ = [
    "CallGraph",
    "CallSite",
    "ControlFlowGraph",
    "FunctionInfo",
    "GRAPH_SCHEMA",
    "GRAPH_VERSION",
    "ProjectContext",
    "SymbolTable",
    "render_chain",
    "statement_calls",
]


@dataclass(frozen=True)
class ProjectContext:
    """Everything a project rule may query, built once per lint run."""

    contexts: tuple[FileContext, ...]
    symbols: SymbolTable
    graph: CallGraph
    _by_rel: dict[str, FileContext] = field(default_factory=dict, repr=False)

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> ProjectContext:
        """Index every parsed file and wire the call graph (traced)."""
        from repro.obs import get_metrics, get_tracer
        from repro.obs import metrics as obs_metrics

        tracer = get_tracer()
        registry = get_metrics()
        with tracer.span(
            obs_metrics.SPAN_ANALYSIS_PROJECT, files=len(contexts)
        ):
            symbols = SymbolTable.build(contexts)
            graph = CallGraph.build(symbols)
        registry.counter(obs_metrics.ANALYSIS_PROJECT_FILES).inc(
            len(contexts)
        )
        registry.counter(obs_metrics.ANALYSIS_PROJECT_FUNCTIONS).inc(
            len(symbols.functions)
        )
        registry.counter(obs_metrics.ANALYSIS_PROJECT_CALL_EDGES).inc(
            graph.n_edges
        )
        return cls(
            contexts=tuple(contexts),
            symbols=symbols,
            graph=graph,
            _by_rel={ctx.rel: ctx for ctx in contexts},
        )

    def functions_in(self, prefixes: tuple[str, ...]) -> Iterator[FunctionInfo]:
        """Functions defined in modules under any of the dotted prefixes."""
        return self.symbols.in_modules(prefixes)

    def cfg(self, info: FunctionInfo) -> ControlFlowGraph:
        """The normal-path CFG of one function."""
        return ControlFlowGraph(info.node)

    def allowed(self, finding: Finding) -> bool:
        """Whether an inline pragma in the owning file silences this
        project-level finding (same contract as the per-file pass)."""
        ctx = self._by_rel.get(finding.path)
        return ctx is not None and ctx.allowed(finding.rule, finding.line)
