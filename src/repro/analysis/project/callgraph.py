"""Project call graph over the symbol table, with reachability queries.

Nodes are function quals from :class:`~repro.analysis.project.symbols.
SymbolTable`; edges are call sites.  Resolution is deliberately
conservative (DESIGN.md §8.8): a ``Name`` call resolves through the
module's imports, ``self.method()`` / ``cls.method()`` through the
enclosing class, dotted ``module.func()`` chains through the table, and
a bare ``receiver.method()`` only when exactly one class in the project
defines that method.  Anything ambiguous produces an *unresolved* call
site — recorded (the JSON dump keeps it for inspection) but never an
edge, so interprocedural rules act only on provable chains.

:meth:`CallGraph.find_path` is the workhorse of rule DUR001: a BFS from
a call site to any function satisfying a predicate, optionally refusing
to traverse into sanctioned modules (``repro.atomicio``), returning the
actual chain so a finding can name every hop.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.project.symbols import FunctionInfo, SymbolTable, _dotted

if TYPE_CHECKING:
    from collections.abc import Callable, Sequence

    from repro.analysis.engine import FileContext

__all__ = ["CallGraph", "CallSite", "GRAPH_SCHEMA", "GRAPH_VERSION"]

GRAPH_SCHEMA = "repro-callgraph"
GRAPH_VERSION = 1


def _under(module: str, prefixes: tuple[str, ...]) -> bool:
    """Whether ``module`` is one of ``prefixes`` or a submodule of one."""
    return any(
        module == p or module.startswith(f"{p}.") for p in prefixes
    )


@dataclass(frozen=True)
class CallSite:
    """One call expression inside ``caller``.

    ``callee`` is the resolved function qual or ``None``; ``label`` is
    the source-level dotted name (kept for diagnostics and the JSON
    dump even when resolution failed).
    """

    caller: str
    callee: str | None
    label: str
    line: int


def _call_label(func: ast.expr) -> tuple[str | None, str | None]:
    """``(dotted chain, trailing attribute)`` of a call's func expr."""
    if isinstance(func, ast.Name):
        return func.id, None
    if isinstance(func, ast.Attribute):
        return _dotted(func), func.attr
    return None, None


class _CallCollector(ast.NodeVisitor):
    """Call expressions of one function body, excluding nested scopes."""

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []

    def visit_Call(self, node: ast.Call) -> None:
        self.calls.append(node)
        self.generic_visit(node)

    # Nested defs/lambdas are their own graph nodes; their calls must
    # not be attributed to the enclosing function.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        del node

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        del node

    def visit_Lambda(self, node: ast.Lambda) -> None:
        del node


def function_calls(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.Call]:
    """Every call lexically inside ``node`` but not in a nested scope."""
    collector = _CallCollector()
    for stmt in node.body:
        collector.visit(stmt)
    return collector.calls


@dataclass
class CallGraph:
    """Call sites per caller, resolved against a :class:`SymbolTable`."""

    symbols: SymbolTable
    #: Caller qual -> call sites (resolved and unresolved alike).
    sites: dict[str, list[CallSite]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, symbols: SymbolTable) -> CallGraph:
        graph = cls(symbols=symbols)
        for info in symbols.iter_functions():
            graph.sites[info.qual] = [
                graph._resolve_site(info, call)
                for call in function_calls(info.node)
            ]
        return graph

    def _resolve_site(self, info: FunctionInfo, call: ast.Call) -> CallSite:
        dotted, attr = _call_label(call.func)
        label = dotted if dotted is not None else (attr or "<dynamic>")
        callee: str | None = None
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            if head in ("self", "cls") and info.class_name is not None and rest:
                class_qual = f"{info.module}.{info.class_name}"
                callee = self.symbols.classes.get(class_qual, {}).get(rest)
            if callee is None:
                callee = self.symbols.resolve(info.module, dotted)
        if callee is None and attr is not None:
            callee = self.symbols.resolve_method(attr)
        return CallSite(
            caller=info.qual, callee=callee, label=label, line=call.lineno
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callees(self, qual: str) -> list[CallSite]:
        """Resolved outgoing call sites of one function."""
        return [s for s in self.sites.get(qual, []) if s.callee is not None]

    @property
    def n_edges(self) -> int:
        return sum(len(self.callees(qual)) for qual in self.sites)

    def find_path(
        self,
        start: str,
        target: Callable[[FunctionInfo], bool],
        *,
        skip_modules: tuple[str, ...] = (),
    ) -> list[FunctionInfo] | None:
        """Shortest chain of functions from ``start`` (inclusive) to one
        satisfying ``target``, via resolved edges only.

        Functions in modules under ``skip_modules`` (exact or dotted
        prefix) terminate traversal without matching — a path *through*
        a sanctioned module does not exist as far as the caller is
        concerned.
        """
        info = self.symbols.functions.get(start)
        if info is None or _under(info.module, skip_modules):
            return None
        queue: deque[list[FunctionInfo]] = deque([[info]])
        visited = {start}
        while queue:
            path = queue.popleft()
            current = path[-1]
            if target(current):
                return path
            for site in self.callees(current.qual):
                callee = site.callee
                if callee is None or callee in visited:
                    continue
                visited.add(callee)
                nxt = self.symbols.functions.get(callee)
                if nxt is None or _under(nxt.module, skip_modules):
                    continue
                queue.append(path + [nxt])
        return None

    def reaches(
        self,
        start: str,
        target: Callable[[FunctionInfo], bool],
        *,
        skip_modules: tuple[str, ...] = (),
    ) -> bool:
        return (
            self.find_path(start, target, skip_modules=skip_modules)
            is not None
        )

    # ------------------------------------------------------------------
    # Export (--graph-out)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON document for ``--graph-out`` / the CI artifact."""
        functions = [
            {
                "qual": info.qual,
                "module": info.module,
                "path": info.ctx.rel,
                "line": info.line,
                "class": info.class_name,
            }
            for info in self.symbols.iter_functions()
        ]
        edges = []
        unresolved = 0
        for caller in sorted(self.sites):
            for site in self.sites[caller]:
                if site.callee is None:
                    unresolved += 1
                    continue
                edges.append(
                    {
                        "caller": site.caller,
                        "callee": site.callee,
                        "label": site.label,
                        "line": site.line,
                    }
                )
        return {
            "schema": GRAPH_SCHEMA,
            "version": GRAPH_VERSION,
            "n_modules": len(self.symbols.modules),
            "n_functions": len(functions),
            "n_edges": len(edges),
            "n_unresolved_calls": unresolved,
            "functions": functions,
            "edges": edges,
        }


def render_chain(path: Sequence[FunctionInfo]) -> str:
    """``a → b → c`` diagnostic form of a call chain."""
    return " -> ".join(info.qual for info in path)
