"""Cross-module symbol table: who defines what, and under which names.

The per-file rules of :mod:`repro.analysis.rules` see one
:class:`~repro.analysis.engine.FileContext` at a time, which is exactly
why they miss *wrapped* violations — a persistence module calling a
helper in another module that performs the raw write.  The project
passes close that gap, and this module is their foundation: one pass
over every parsed file collects

* every function and method definition (including nested defs, which
  carry worker closures in the fork-safety rule) as a
  :class:`FunctionInfo` keyed by its dotted qualified name,
* every import binding per module (``import a.b as c``,
  ``from a import b as c``), so a name used at a call site can be
  resolved back to the module that defines it,
* module-level simple assignments (the fork-safety rule checks worker
  functions against module-level handles and mutable state),
* a method-name index used for conservative receiver-free resolution
  (``checkpoint.write_state(...)`` resolves iff exactly one class in
  the project defines ``write_state``).

Resolution follows import chains and ``__init__`` re-exports
(``repro.serve.StatusBoard`` → ``repro.serve.api.StatusBoard``) with a
cycle guard, and answers ``None`` rather than guessing when a name
cannot be pinned to a single definition — project rules only ever act
on *provable* chains.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Iterator, Sequence

    from repro.analysis.engine import FileContext

__all__ = ["FunctionInfo", "SymbolTable"]


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, anywhere in the project.

    ``qual`` is the dotted qualified name
    (``repro.serve.checkpoint.ServeCheckpoint.commit``; nested defs
    chain through their parent as ``module.outer.inner``).
    """

    qual: str
    module: str
    name: str
    class_name: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext

    @property
    def line(self) -> int:
        return self.node.lineno


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class SymbolTable:
    """Project-wide definitions and import bindings (see module doc)."""

    #: Qualified name -> definition.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Module -> FileContext (parsed source).
    modules: dict[str, FileContext] = field(default_factory=dict)
    #: Module -> local binding name -> dotted import target.
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: Module -> name -> assigned value expr (module level, simple
    #: single-target assignments only).
    module_assigns: dict[str, dict[str, ast.expr]] = field(
        default_factory=dict
    )
    #: Method name -> quals of every class method with that name.
    methods_by_name: dict[str, list[str]] = field(default_factory=dict)
    #: Class qual (module.Class) -> method name -> function qual.
    classes: dict[str, dict[str, str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> SymbolTable:
        table = cls()
        for ctx in contexts:
            table._index_module(ctx)
        return table

    def _index_module(self, ctx: FileContext) -> None:
        module = ctx.module
        self.modules[module] = ctx
        bindings = self.imports.setdefault(module, {})
        assigns = self.module_assigns.setdefault(module, {})
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Import):
                for item in stmt.names:
                    # ``import a.b`` binds ``a``; ``import a.b as c``
                    # binds ``c`` to the full dotted module.
                    if item.asname is not None:
                        bindings[item.asname] = item.name
                    else:
                        head = item.name.split(".")[0]
                        bindings[head] = head
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module is None or stmt.level:
                    continue  # relative imports are not used in-tree
                for item in stmt.names:
                    if item.name == "*":
                        continue
                    bindings[item.asname or item.name] = (
                        f"{stmt.module}.{item.name}"
                    )
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    assigns[stmt.target.id] = stmt.value
        self._index_defs(ctx, ctx.tree.body, prefix=module, class_name=None)

    def _index_defs(
        self,
        ctx: FileContext,
        body: Sequence[ast.stmt],
        *,
        prefix: str,
        class_name: str | None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qual=qual,
                    module=ctx.module,
                    name=stmt.name,
                    class_name=class_name,
                    node=stmt,
                    ctx=ctx,
                )
                self.functions[qual] = info
                if class_name is not None:
                    self.methods_by_name.setdefault(stmt.name, []).append(
                        qual
                    )
                    self.classes.setdefault(
                        f"{ctx.module}.{class_name}", {}
                    )[stmt.name] = qual
                # Nested defs (worker closures) are functions too.
                self._index_defs(
                    ctx, stmt.body, prefix=qual, class_name=None
                )
            elif isinstance(stmt, ast.ClassDef):
                self.classes.setdefault(f"{prefix}.{stmt.name}", {})
                self._index_defs(
                    ctx,
                    stmt.body,
                    prefix=f"{prefix}.{stmt.name}",
                    class_name=stmt.name,
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every known function, in deterministic qual order."""
        for qual in sorted(self.functions):
            yield self.functions[qual]

    def in_modules(self, prefixes: tuple[str, ...]) -> Iterator[FunctionInfo]:
        """Functions whose module matches any dotted prefix exactly or
        as a package prefix (``repro.serve`` covers ``repro.serve.loop``)."""
        for info in self.iter_functions():
            if info.module in prefixes or info.module.startswith(
                tuple(f"{p}." for p in prefixes)
            ):
                yield info

    def resolve(
        self, module: str, dotted: str, *, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        """Resolve a dotted name as referenced from ``module`` to a
        function qual, chasing imports and re-exports; ``None`` when the
        name cannot be pinned to one known definition."""
        key = f"{module}:{dotted}"
        if key in _seen:
            return None  # import cycle / self re-export
        seen = _seen | {key}
        # Defined (possibly as Class.method) in this very module?
        local = f"{module}.{dotted}"
        if local in self.functions:
            return local
        head, _, rest = dotted.partition(".")
        binding = self.imports.get(module, {}).get(head)
        if binding is not None:
            target = f"{binding}.{rest}" if rest else binding
            return self._resolve_absolute(target, _seen=seen)
        return None

    def _resolve_absolute(
        self, dotted: str, *, _seen: frozenset[str]
    ) -> str | None:
        if dotted in self.functions:
            return dotted
        # Longest known module prefix, then resolve the remainder
        # through that module's own bindings (re-export chase).
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                rest = ".".join(parts[cut:])
                return self.resolve(prefix, rest, _seen=_seen)
        return None

    def resolve_method(self, method: str) -> str | None:
        """The unique project method with this name, or ``None``.

        Receiver types are out of static reach, so ``obj.method(...)``
        resolves only when exactly one class in the whole project
        defines ``method`` — ambiguity yields no edge rather than a
        guessed one.
        """
        quals = self.methods_by_name.get(method, ())
        if len(quals) == 1:
            return quals[0]
        return None
