"""The repo-committed grandfather list: :class:`Baseline`.

A baseline entry acknowledges one existing finding so it stops failing
the build while every *new* finding still does.  Entries match on
``(rule, path, stripped line text)`` — content, not line numbers — so
edits elsewhere in a file don't orphan them.  Every entry carries a
one-line ``justification``; an entry that no longer matches anything is
reported as stale so the file shrinks toward empty instead of rotting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.errors import SchemaError

__all__ = ["Baseline", "BaselineEntry", "BASELINE_NAME"]

#: Conventional baseline filename at the repo root.
BASELINE_NAME = "lint-baseline.json"

_SCHEMA = "repro-lint-baseline"
_VERSION = 1


@dataclass(frozen=True, slots=True)
class BaselineEntry:
    """One grandfathered finding with its justification."""

    rule: str
    path: str
    line_text: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        """Whether this entry covers ``finding``."""
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.line_text == finding.line_text
        )

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line_text": self.line_text,
            "justification": self.justification,
        }


@dataclass(frozen=True)
class Baseline:
    """An ordered set of :class:`BaselineEntry` records."""

    entries: tuple[BaselineEntry, ...] = ()

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition ``findings`` into ``(new, baselined, unused entries)``."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        used: set[BaselineEntry] = set()
        for finding in findings:
            entry = next(
                (e for e in self.entries if e.matches(finding)), None
            )
            if entry is None:
                new.append(finding)
            else:
                baselined.append(finding)
                used.add(entry)
        unused = [e for e in self.entries if e not in used]
        return new, baselined, unused

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path | str) -> Baseline:
        """Read a baseline file.

        Raises
        ------
        SchemaError
            If the file is not a valid baseline document (corrupt
            grandfather lists must never silently allow findings).
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as exc:
            raise SchemaError(f"{path}: cannot read baseline: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: baseline is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
            raise SchemaError(f"{path}: not a {_SCHEMA} document")
        if payload.get("version") != _VERSION:
            raise SchemaError(
                f"{path}: unsupported baseline version {payload.get('version')!r}"
            )
        raw = payload.get("entries")
        if not isinstance(raw, list):
            raise SchemaError(f"{path}: baseline entries must be a list")
        entries = []
        for i, item in enumerate(raw):
            if not isinstance(item, dict):
                raise SchemaError(f"{path}: entry {i} is not an object")
            try:
                entry = BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    line_text=str(item["line_text"]),
                    justification=str(item["justification"]),
                )
            except KeyError as exc:
                raise SchemaError(
                    f"{path}: entry {i} is missing field {exc.args[0]!r}"
                ) from None
            if not entry.justification.strip():
                raise SchemaError(
                    f"{path}: entry {i} ({entry.rule} in {entry.path}) has an "
                    "empty justification — every grandfathered finding must "
                    "say why"
                )
            entries.append(entry)
        return cls(entries=tuple(entries))

    @classmethod
    def load_or_empty(cls, path: Path | str) -> Baseline:
        """Like :meth:`load`, but a missing file is an empty baseline."""
        if not Path(path).exists():
            return cls(entries=())
        return cls.load(path)

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": _SCHEMA,
            "version": _VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def dumps(self) -> str:
        """The canonical serialised form (indented, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2) + "\n"
