"""DET001 / DET002 — determinism of the score paths.

The headline guarantee of this reproduction is that the incremental,
vectorized and batch engines produce **bit-identical** scores, and that
a resumed (checkpointed) sweep equals an uninterrupted one.  Both die
the moment a score path consults global random state or the wall clock:

* **DET001** — the stdlib ``random`` module and NumPy's legacy
  global-state API (``np.random.rand`` & co.) draw from hidden mutable
  state; reruns and resumed sweeps diverge.  All randomness must flow
  through an explicitly *seeded* ``numpy.random.Generator``
  (``default_rng(seed)``), the way :mod:`repro.synth` spawns per-customer
  streams from one ``SeedSequence``.
* **DET002** — ``time.time()`` / ``datetime.now()`` reads make output
  depend on when a run happened.  Only the observation layer
  (:mod:`repro.obs`, which stamps manifests and spans) and the executor's
  timing code may read the clock; monotonic timers
  (``time.perf_counter`` / ``process_time``) are fine everywhere because
  they only ever feed telemetry.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Rule, register_rule
from repro.analysis.findings import Finding

__all__ = ["UnseededRandomness", "WallClockRead"]

#: numpy.random attributes that are part of the explicit-Generator API
#: (everything else on the module is the legacy global-state surface).
_NUMPY_EXPLICIT = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _numpy_aliases(tree: ast.Module) -> set[str]:
    """Names the file binds to the ``numpy`` module (``np`` etc.)."""
    aliases = {"numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def _stdlib_random_names(tree: ast.Module) -> tuple[set[str], set[str]]:
    """``(module aliases, directly imported function names)`` for stdlib random."""
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "random":
                    modules.add(item.asname or "random")
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            for item in node.names:
                functions.add(item.asname or item.name)
    return modules, functions


@register_rule
class UnseededRandomness(Rule):
    """DET001: randomness must come from an explicitly seeded Generator."""

    rule_id = "DET001"
    summary = (
        "no stdlib random / numpy legacy global-state randomness in score "
        "paths; use a seeded numpy Generator"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        numpy_aliases = _numpy_aliases(ctx.tree)
        random_modules, random_functions = _stdlib_random_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # stdlib: random.random(), random.seed(), ... via the module
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in random_modules
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random.{func.attr}() draws from hidden global "
                    "state, so reruns and resumed sweeps diverge",
                    "use numpy.random.default_rng(seed) and pass the "
                    "Generator explicitly",
                )
            # stdlib: from random import choice; choice(...)
            elif isinstance(func, ast.Name) and func.id in random_functions:
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}() from the stdlib random module draws from "
                    "hidden global state",
                    "use numpy.random.default_rng(seed) and pass the "
                    "Generator explicitly",
                )
            # numpy: np.random.<legacy>() and unseeded np.random.default_rng()
            elif (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in numpy_aliases
            ):
                if func.attr not in _NUMPY_EXPLICIT:
                    yield self.finding(
                        ctx,
                        node,
                        f"numpy.random.{func.attr}() is the legacy "
                        "global-state API; scores would depend on call order",
                        "use numpy.random.default_rng(seed) and call the "
                        "method on the Generator",
                    )
                elif func.attr == "default_rng" and not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        "default_rng() without a seed is entropy-seeded, so "
                        "every run scores differently",
                        "pass an explicit seed or SeedSequence",
                    )


@register_rule
class WallClockRead(Rule):
    """DET002: wall-clock reads only in repro.obs / executor timing."""

    rule_id = "DET002"
    summary = (
        "no time.time()/datetime.now() outside repro.obs and the executor; "
        "results must not depend on when a run happened"
    )

    #: Modules allowed to read the wall clock: the observation layer
    #: stamps manifests/spans, and the executor times waves.
    _ALLOWED_PREFIXES = ("repro.obs", "repro.runtime.executor")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            self._ALLOWED_PREFIXES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from_time_time = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any((item.asname or item.name) == "time" for item in node.names)
            for node in ast.walk(ctx.tree)
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "time.time() makes output depend on when the run happened",
                    "use time.perf_counter() for intervals, or move the "
                    "timestamp into repro.obs",
                )
            elif isinstance(func, ast.Name) and func.id == "time" and from_time_time:
                yield self.finding(
                    ctx,
                    node,
                    "time() (from time import time) reads the wall clock",
                    "use time.perf_counter() for intervals, or move the "
                    "timestamp into repro.obs",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("now", "today", "utcnow")
                and self._is_datetime_owner(func.value)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"datetime {func.attr}() reads the wall clock",
                    "take the timestamp as a parameter, or move it into "
                    "repro.obs",
                )

    @staticmethod
    def _is_datetime_owner(node: ast.expr) -> bool:
        """Whether ``node`` looks like ``datetime`` / ``date`` / ``datetime.datetime``."""
        if isinstance(node, ast.Name):
            return node.id in ("datetime", "date")
        if isinstance(node, ast.Attribute):
            return node.attr in ("datetime", "date")
        return False
