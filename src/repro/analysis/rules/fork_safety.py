"""FRK001 — everything crossing a fork boundary is fork-safe.

The resilient executor (:func:`repro.runtime.executor.run_sharded`)
ships tasks to worker *processes*.  Its bit-identical-retry guarantee
(DESIGN.md §5) assumes tasks are plain picklable values and workers
rebuild their own handles: an mmap, open file, socket, thread lock or
live HTTP server smuggled across the boundary either fails to pickle
at dispatch time or — worse — arrives as a silently broken duplicate.

FRK001 checks every dispatch site (a ``run_sharded(...)`` or
``*.submit(...)`` call) statically:

* an argument that *is* or is *bound to* an unsafe constructor call
  (``open``, ``mmap.mmap``, ``numpy.memmap``, ``socket.socket``, the
  ``threading`` lock family, ``StatusBoard`` / ``StatusServer`` /
  ``ThreadingHTTPServer``) fires at the dispatch site;
* a ``lambda`` or nested-``def`` argument fires when its body captures
  such a binding from the enclosing function;
* the worker function itself is resolved through the call graph and
  every function it can reach is checked for module-level unsafe
  handles it references and for ``global`` statements (worker-side
  mutation of module state never propagates back to the parent).
  Traversal skips :mod:`repro.obs` — worker-side telemetry install is
  the sanctioned capture-and-merge protocol of DESIGN.md §7.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro.analysis.engine import ProjectRule, register_rule
from repro.analysis.project.callgraph import render_chain

if TYPE_CHECKING:
    from collections.abc import Iterator

    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext
    from repro.analysis.project.symbols import FunctionInfo

__all__ = ["ForkSafety"]

#: Constructor name (last dotted part) -> what crossing the boundary
#: with it means.
_UNSAFE = {
    "open": "an open file handle",
    "mmap": "an mmap handle",
    "memmap": "a numpy memmap handle",
    "socket": "a live socket",
    "Lock": "a thread lock",
    "RLock": "a thread lock",
    "Condition": "a thread condition",
    "Event": "a thread event",
    "Semaphore": "a thread semaphore",
    "BoundedSemaphore": "a thread semaphore",
    "StatusBoard": "a live status board",
    "StatusServer": "a live HTTP status server",
    "ThreadingHTTPServer": "a live HTTP server",
}

#: Worker-side telemetry re-install (``use_metrics`` / ``use_tracer``
#: swapping the module-active registry) is the sanctioned
#: capture-and-merge protocol, not a fork-safety bug.
_SANCTIONED = ("repro.obs",)


def _constructor_name(expr: ast.expr) -> str | None:
    """The trailing callee name of a Call, if it is one."""
    if not isinstance(expr, ast.Call):
        return None
    func = expr.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _unsafe_reason(expr: ast.expr | None) -> str | None:
    if expr is None:
        return None
    name = _constructor_name(expr)
    return _UNSAFE.get(name) if name is not None else None


def _local_bindings(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, ast.expr]:
    """Simple single-target name assignments anywhere in the function."""
    bindings: dict[str, ast.expr] = {}
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                bindings[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                bindings[node.target.id] = node.value
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    bindings[item.optional_vars.id] = item.context_expr
    return bindings


def _is_dispatch(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "run_sharded"
    if isinstance(func, ast.Attribute):
        return func.attr in ("run_sharded", "submit")
    return False


def _loaded_names(node: ast.AST) -> set[str]:
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


@register_rule
class ForkSafety(ProjectRule):
    """FRK001: values crossing run_sharded/submit are transitively fork-safe."""

    rule_id = "FRK001"
    summary = (
        "arguments to run_sharded/submit and everything the worker "
        "function reaches must be fork-safe: no mmap/file/socket/lock/"
        "server handles, no worker-side module-state mutation"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.symbols.iter_functions():
            for call in ast.walk(info.node):
                if isinstance(call, ast.Call) and _is_dispatch(call):
                    yield from self._check_dispatch(project, info, call)

    # ------------------------------------------------------------------
    def _check_dispatch(
        self, project: ProjectContext, info: FunctionInfo, call: ast.Call
    ) -> Iterator[Finding]:
        locals_ = _local_bindings(info.node)
        module_assigns = project.symbols.module_assigns.get(info.module, {})

        def bound_reason(name: str) -> str | None:
            reason = _unsafe_reason(locals_.get(name))
            if reason is None:
                reason = _unsafe_reason(module_assigns.get(name))
            return reason

        args: list[ast.expr] = list(call.args) + [
            kw.value for kw in call.keywords if kw.value is not None
        ]
        for arg in args:
            reason = _unsafe_reason(arg)
            if reason is None and isinstance(arg, ast.Name):
                reason = bound_reason(arg.id)
            if reason is not None:
                yield info.ctx.finding(
                    self.rule_id,
                    arg,
                    f"{info.qual} passes {reason} across the fork "
                    "boundary — it cannot be pickled into a worker "
                    "process intact",
                    "pass plain picklable values and let the worker "
                    "rebuild its own handles",
                )
                continue
            if isinstance(arg, ast.Lambda):
                for name in sorted(_loaded_names(arg.body)):
                    captured = bound_reason(name)
                    if captured is not None:
                        yield info.ctx.finding(
                            self.rule_id,
                            arg,
                            f"{info.qual}: worker closure captures "
                            f"{name!r}, {captured} — the handle does "
                            "not survive the fork boundary",
                            "pass the data needed to rebuild the "
                            "resource inside the worker instead",
                        )
        # Interprocedural leg: everything the worker function reaches.
        worker = call.args[0] if call.args else None
        if isinstance(worker, ast.Name):
            qual = project.symbols.resolve(info.module, worker.id)
            if qual is not None:
                yield from self._check_worker(project, info, call, qual)

    def _check_worker(
        self,
        project: ProjectContext,
        info: FunctionInfo,
        call: ast.Call,
        worker_qual: str,
    ) -> Iterator[Finding]:
        def is_unsafe(reached: FunctionInfo) -> bool:
            if any(
                isinstance(node, ast.Global)
                for node in ast.walk(reached.node)
            ):
                return True
            assigns = project.symbols.module_assigns.get(
                reached.module, {}
            )
            return any(
                _unsafe_reason(assigns.get(name)) is not None
                for name in _loaded_names(reached.node)
            )

        path = project.graph.find_path(
            worker_qual, is_unsafe, skip_modules=_SANCTIONED
        )
        if path is None:
            return
        bad = path[-1]
        if any(isinstance(n, ast.Global) for n in ast.walk(bad.node)):
            detail = (
                "mutates module-level state via `global` — worker-side "
                "mutation never propagates back to the parent process"
            )
        else:
            detail = (
                "references a module-level unsafe handle — it does not "
                "survive the fork boundary"
            )
        yield info.ctx.finding(
            self.rule_id,
            SimpleNamespace(lineno=call.lineno),
            f"{info.qual}: worker chain {render_chain(path)} {detail}",
            "have the worker rebuild resources from plain values and "
            "return results instead of mutating shared state",
        )
