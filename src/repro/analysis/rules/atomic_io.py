"""IO001 — persisted artifacts are written atomically.

Checkpoint cells, monitor snapshots, run manifests, trace JSONL and
metrics JSON share one durability contract (DESIGN.md §6): a file under
its final name is either complete or absent — a kill mid-write must
never leave a torn artifact for a resume to ingest.  The idiom is
write-to-temp + ``os.replace``, packaged once as
:func:`repro.atomicio.atomic_write_text` /
:func:`~repro.atomicio.atomic_write_json`.

IO001 flags direct write-mode ``open`` / ``Path.open`` calls,
``write_text`` / ``write_bytes``, and streaming ``json.dump`` in the
persistence layers (``repro.runtime``, ``repro.obs``, the on-disk slab
store ``repro.data.slabs``, and the serving checkpoints
``repro.serve``) unless the enclosing function itself
performs the rename (calls ``os.replace``), i.e. *is* an inlined atomic
writer.  Streamed artifacts too large to assemble in memory route
through :class:`repro.atomicio.AtomicBinaryWriter`, which carries the
same temp-then-rename guarantee.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Rule, register_rule
from repro.analysis.findings import Finding

__all__ = ["NonAtomicWrite"]

_WRITE_MODES = frozenset("wax")


def _mode_argument(node: ast.Call, func: ast.expr) -> ast.expr | None:
    """The mode argument of an ``open``-style call, if present."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    # builtin open(path, mode) has mode second; Path.open(mode) first.
    index = 1 if isinstance(func, ast.Name) else 0
    if len(node.args) > index:
        return node.args[index]
    return None


def _is_write_mode(mode: ast.expr | None) -> bool:
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(ch in _WRITE_MODES for ch in mode.value) or "+" in mode.value
    return True  # dynamic mode: assume the worst


class _ScopeCollector(ast.NodeVisitor):
    """Per-function (and module-level) write calls and os.replace calls."""

    def __init__(self) -> None:
        #: function node (or None for module level) -> list of write calls
        self.writes: dict[ast.AST | None, list[tuple[ast.Call, str]]] = {}
        #: scopes that call os.replace themselves
        self.renames: set[ast.AST | None] = set()
        self._stack: list[ast.AST | None] = [None]

    # ------------------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        scope = self._stack[-1]
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_write_mode(_mode_argument(node, func)):
                self.writes.setdefault(scope, []).append((node, "open(..., 'w')"))
        elif isinstance(func, ast.Attribute):
            if func.attr == "open" and _is_write_mode(_mode_argument(node, func)):
                self.writes.setdefault(scope, []).append(
                    (node, ".open(..., 'w')")
                )
            elif func.attr in ("write_text", "write_bytes"):
                self.writes.setdefault(scope, []).append((node, f".{func.attr}()"))
            elif func.attr == "dump" and (
                isinstance(func.value, ast.Name) and func.value.id == "json"
            ):
                self.writes.setdefault(scope, []).append((node, "json.dump()"))
            elif (
                func.attr == "replace"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                self.renames.add(scope)
        self.generic_visit(node)


@register_rule
class NonAtomicWrite(Rule):
    """IO001: persistence layers write via the atomic helper only."""

    rule_id = "IO001"
    summary = (
        "runtime/obs/slab-store writes go through repro.atomicio (write-"
        "temp-then-rename); a torn artifact must be impossible"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module.startswith(
            (
                "repro.runtime",
                "repro.obs",
                "repro.data.slabs",
                "repro.serve",
                "repro.soak",
            )
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        collector = _ScopeCollector()
        collector.visit(ctx.tree)
        for scope, writes in collector.writes.items():
            if scope in collector.renames:
                # This function is itself an inlined write-temp-then-
                # rename; the rename makes the write atomic.
                continue
            for node, label in writes:
                yield self.finding(
                    ctx,
                    node,
                    f"non-atomic {label} in a persistence module — a kill "
                    "mid-write leaves a torn artifact under the final name",
                    "route the write through repro.atomicio."
                    "atomic_write_text/atomic_write_json",
                )
