"""DUR001 — wrapped write chains reach disk through ``repro.atomicio``.

IO001 is per-file: it flags a raw write-mode ``open`` / ``write_text``
/ ``json.dump`` *in* a persistence module.  It cannot see the wrapped
variant — a persistence function calling a helper in another module
that performs the raw write — because the sink lives outside the
file (often outside IO001's module scope entirely).  DUR001 closes
that gap with the project call graph (DESIGN.md §8.8): for every
function in a persistence layer it asks whether any resolved call
chain reaches a function that writes a file non-atomically, refusing
to traverse into ``repro.atomicio`` (the sanctioned sink — chains
ending there are exactly the durable-write discipline PR 4/7 rely on).

Division of labour with IO001: a sink *inside* the persistence scope
is IO001's finding at the sink itself; DUR001 reports only chains
whose sink lies outside that scope, so every raw write is reported
exactly once, at the most useful location.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import TYPE_CHECKING

from repro.analysis.engine import ProjectRule, register_rule
from repro.analysis.project.callgraph import _under, function_calls, render_chain
from repro.analysis.rules.atomic_io import _is_write_mode, _mode_argument

if TYPE_CHECKING:
    from collections.abc import Iterator

    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext
    from repro.analysis.project.symbols import FunctionInfo

__all__ = ["WrappedNonAtomicWrite"]

#: Modules whose functions own durable artifacts (same scope as IO001).
_PERSISTENCE = (
    "repro.runtime",
    "repro.obs",
    "repro.data.slabs",
    "repro.serve",
    "repro.soak",
)

#: The sanctioned durable-write layer: chains into it are the goal, not
#: a finding, so traversal never enters it.
_SANCTIONED = ("repro.atomicio",)


def raw_write_label(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    """How this function writes a file raw, or ``None``.

    Mirrors IO001's sink set (write-mode ``open``/``Path.open``,
    ``write_text``/``write_bytes``, ``json.dump``) and its escape hatch:
    a function that calls ``os.replace`` itself *is* an inlined atomic
    writer, not a raw sink.
    """
    label: str | None = None
    for call in function_calls(node):
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            if _is_write_mode(_mode_argument(call, func)):
                label = label or "open(..., 'w')"
        elif isinstance(func, ast.Attribute):
            if func.attr == "open" and _is_write_mode(
                _mode_argument(call, func)
            ):
                label = label or ".open(..., 'w')"
            elif func.attr in ("write_text", "write_bytes"):
                label = label or f".{func.attr}()"
            elif func.attr == "dump" and (
                isinstance(func.value, ast.Name) and func.value.id == "json"
            ):
                label = label or "json.dump()"
            elif (
                func.attr == "replace"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                return None  # inlined write-temp-then-rename
    return label


@register_rule
class WrappedNonAtomicWrite(ProjectRule):
    """DUR001: no call chain from a persistence layer ends in a raw write."""

    rule_id = "DUR001"
    summary = (
        "call chains from persistence layers reach the filesystem only "
        "through repro.atomicio; wrapped raw writes (helpers in other "
        "modules) are torn-artifact bugs IO001 cannot see"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        def is_external_raw_sink(info: FunctionInfo) -> bool:
            # Sinks inside the persistence scope are IO001 findings at
            # the sink; DUR001 owns only the wrapped/external ones.
            if _under(info.module, _PERSISTENCE):
                return False
            return raw_write_label(info.node) is not None

        for info in project.functions_in(_PERSISTENCE):
            path = project.graph.find_path(
                info.qual, is_external_raw_sink, skip_modules=_SANCTIONED
            )
            if path is None or len(path) < 2:
                continue
            if any(
                _under(hop.module, _PERSISTENCE) for hop in path[1:-1]
            ):
                # An intermediate persistence function gets its own,
                # tighter finding — report each chain once, at the last
                # persistence hop before the write leaves the scope.
                continue
            sink = path[-1]
            label = raw_write_label(sink.node) or "a raw write"
            line = info.line
            for site in project.graph.sites.get(info.qual, ()):
                if site.callee == path[1].qual:
                    line = site.line
                    break
            yield info.ctx.finding(
                self.rule_id,
                SimpleNamespace(lineno=line),
                f"write chain {render_chain(path)} ends in non-atomic "
                f"{label} outside repro.atomicio — a kill mid-write "
                "leaves a torn artifact under the final name",
                "route the sink through repro.atomicio "
                "(atomic_write_text/atomic_write_json/AtomicBinaryWriter)",
            )
