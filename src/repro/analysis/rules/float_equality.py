"""FLT001 — no float ``==`` in scoring code.

Stability scores travel three routes that must agree bit-for-bit:
computed in-process, recomputed in a worker, and replayed from a
checkpoint cell (where floats round-trip via ``repr``-exact JSON, the
PR-3 convention).  Code that branches on ``x == 0.3`` works on one route
and breaks on another the moment an intermediate is computed in a
different order.  FLT001 flags ``==`` / ``!=`` against float literals in
the scoring layers (``repro.core``, ``repro.eval``); compare with a
tolerance (``math.isclose``), restructure to an integer/ordinal
comparison, or — for persisted values — rely on the repr-exact JSON
round-trip and compare the serialised form.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Rule, register_rule
from repro.analysis.findings import Finding

__all__ = ["FloatEquality"]


@register_rule
class FloatEquality(Rule):
    """FLT001: scoring code never compares floats with ``==``/``!=``."""

    rule_id = "FLT001"
    summary = "no ==/!= against float literals in core/eval scoring code"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module.startswith(("repro.core", "repro.eval"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (operands[i], operands[i + 1])
                if any(self._is_float_literal(operand) for operand in pair):
                    yield self.finding(
                        ctx,
                        node,
                        "float equality comparison in scoring code; exact "
                        "equality is route-dependent (in-process vs worker "
                        "vs checkpoint replay)",
                        "use math.isclose / an ordinal comparison, or the "
                        "repr-exact JSON float convention for persisted "
                        "values",
                    )
                    break  # one finding per comparison chain

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        # -0.5 / +1.0 parse as UnaryOp around the literal
        if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
            return isinstance(node.operand.value, float)
        return False
