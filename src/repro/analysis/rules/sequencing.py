"""SEQ001 — the cursor seal is ordered after every shard-state write.

The serving checkpoint protocol (DESIGN.md §10) has one commit point:
``ServeCheckpoint.commit`` atomically replacing ``cursor.json``.  Its
crash-safety argument — at most one batch of rework after a kill —
holds *only* because every per-shard state write happens before the
seal on every non-exceptional path.  PR 7 probes that dynamically with
kill-site tests; SEQ001 proves the ordering statically so a refactor
of :mod:`repro.serve.checkpoint` / :mod:`repro.serve.loop` cannot
silently invert it.

The check: in any scoped function that both writes shard state
(``*.write_state(...)``) and seals (``*.commit(...)``), no
``write_state`` statement may be reachable *after* a ``commit``
statement in the function's normal-path CFG.  A write after the seal
means the sealed cursor can point past state that never became
durable — exactly the torn resume the protocol exists to rule out.
Exception paths are excluded by construction: a crash between write
and seal is the tolerated single-batch-rework case.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.engine import ProjectRule, register_rule
from repro.analysis.project.cfg import statement_calls

if TYPE_CHECKING:
    from collections.abc import Iterator

    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext

__all__ = ["CursorSealOrdering"]

#: The protocol lives in exactly these modules; elsewhere the names
#: ``write_state`` / ``commit`` carry no checkpoint meaning.
_SCOPE = ("repro.serve.checkpoint", "repro.serve.loop")


def _calls_method(stmt: ast.stmt, method: str) -> bool:
    return any(
        isinstance(call.func, ast.Attribute) and call.func.attr == method
        for call in statement_calls(stmt)
    )


def _is_state_write(stmt: ast.stmt) -> bool:
    return _calls_method(stmt, "write_state")


def _is_seal(stmt: ast.stmt) -> bool:
    return _calls_method(stmt, "commit")


@register_rule
class CursorSealOrdering(ProjectRule):
    """SEQ001: no shard-state write is reachable after the cursor seal."""

    rule_id = "SEQ001"
    summary = (
        "in serve.checkpoint/serve.loop the cursor seal (commit) comes "
        "after every shard-state write on all non-exceptional paths; a "
        "write after the seal breaks the <=1-batch-rework guarantee"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.functions_in(_SCOPE):
            body_stmts = list(ast.walk(info.node))
            has_write = any(
                isinstance(s, ast.stmt) and _is_state_write(s)
                for s in body_stmts
            )
            has_seal = any(
                isinstance(s, ast.stmt) and _is_seal(s) for s in body_stmts
            )
            if not (has_write and has_seal):
                continue
            cfg = project.cfg(info)
            for witness in cfg.reachable_from(_is_seal, _is_state_write):
                yield info.ctx.finding(
                    self.rule_id,
                    witness,
                    f"{info.qual}: shard-state write can execute after "
                    "the cursor seal (commit) on a normal path — the "
                    "sealed cursor may reference state that never became "
                    "durable",
                    "write all shard state first, then seal the cursor "
                    "as the single final commit point",
                )
