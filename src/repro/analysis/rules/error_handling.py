"""ERR001 — exceptions are handled loudly or not at all.

The resilient executor's contract (DESIGN.md §6) hinges on *which*
exceptions are caught where: ``except Exception`` marks a shard attempt
as retryable **and records it** (error list, metrics counter, structured
:class:`~repro.runtime.executor.ExecutionReport`), while
``KeyboardInterrupt`` / ``SystemExit`` must always propagate so Ctrl-C
aborts a run instead of being retried as a "shard failure".  The
checkpoint/snapshot/manifest loaders likewise convert low-level errors
into typed ``ReproError`` subclasses rather than swallowing them.

ERR001 therefore flags:

* a bare ``except:`` anywhere in ``repro`` — it catches
  ``KeyboardInterrupt``/``SystemExit`` and hides the interrupt contract;
* ``except BaseException`` that does not re-raise — same problem;
* in the runtime/obs layers, an ``except Exception`` handler that
  neither raises nor visibly records the failure (appending to an error
  list, bumping a metric, logging, or constructing a structured
  ``*Error`` / ``*Report``) — a silently swallowed infrastructure
  failure would surface later as "bit-identical results" that aren't.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Rule, register_rule
from repro.analysis.findings import Finding

__all__ = ["ExceptionDiscipline"]

#: Method calls that count as visibly recording a failure.
_RECORDING_CALLS = frozenset(
    {
        "append",
        "add",
        "inc",
        "observe",
        "log",
        "debug",
        "info",
        "warning",
        "error",
        "exception",
        "critical",
        "warn",
    }
)


def _catches(handler: ast.ExceptHandler, name: str) -> bool:
    """Whether the handler's type names ``name`` (directly or in a tuple)."""
    node = handler.type
    if node is None:
        return False
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name) and element.id == name:
            return True
        if isinstance(element, ast.Attribute) and element.attr == name:
            return True
    return False


def _handles_visibly(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or records the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _RECORDING_CALLS:
                return True
            label = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if label.endswith(("Error", "Failure", "Report", "Warning")):
                return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register_rule
class ExceptionDiscipline(Rule):
    """ERR001: no silent swallowing; interrupts always propagate."""

    rule_id = "ERR001"
    summary = (
        "no bare except; except BaseException must re-raise; runtime/obs "
        "except Exception must raise or record"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module.startswith("repro")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        strict_scope = ctx.module.startswith(("repro.runtime", "repro.obs"))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit, so "
                    "Ctrl-C during a sweep would be swallowed",
                    "catch Exception (or a narrower type) and let "
                    "interrupts propagate",
                )
            elif _catches(node, "BaseException") and not _reraises(node):
                yield self.finding(
                    ctx,
                    node,
                    "except BaseException without re-raise swallows "
                    "KeyboardInterrupt/SystemExit",
                    "re-raise after cleanup (the executor's abort path "
                    "does pool.shutdown(); raise)",
                )
            elif (
                strict_scope
                and _catches(node, "Exception")
                and not _handles_visibly(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "except Exception here neither raises nor records the "
                    "failure; a swallowed infrastructure error breaks the "
                    "bit-identical-results contract silently",
                    "re-raise as a typed ReproError, or record it "
                    "(ExecutionReport errors, metrics counter, logger)",
                )
