"""The standard rule pack.

Importing this package registers every rule with the engine registry in
:mod:`repro.analysis.engine`.  Each module encodes one family of
contracts the PR-1…PR-8 stack depends on; DESIGN.md §8 maps every rule
id to the guarantee it protects.  The first six are per-file rules;
``durability``, ``sequencing``, ``fork_safety`` and ``resources`` are
the interprocedural project passes of DESIGN.md §8.8.
"""

from repro.analysis.rules import (  # noqa: F401
    atomic_io,
    determinism,
    durability,
    error_handling,
    float_equality,
    fork_safety,
    observability,
    resources,
    sequencing,
    typing_gate,
)

__all__ = [
    "atomic_io",
    "determinism",
    "durability",
    "error_handling",
    "float_equality",
    "fork_safety",
    "observability",
    "resources",
    "sequencing",
    "typing_gate",
]
