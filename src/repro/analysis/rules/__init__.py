"""The standard rule pack.

Importing this package registers every rule with the engine registry in
:mod:`repro.analysis.engine`.  Each module encodes one family of
contracts the PR-1…PR-4 stack depends on; DESIGN.md §8 maps every rule
id to the guarantee it protects.
"""

from repro.analysis.rules import (  # noqa: F401
    atomic_io,
    determinism,
    error_handling,
    float_equality,
    observability,
    typing_gate,
)

__all__ = [
    "atomic_io",
    "determinism",
    "error_handling",
    "float_equality",
    "observability",
    "typing_gate",
]
