"""TYP001 — the strict-typed packages stay fully annotated.

The contract-bearing layers — :mod:`repro.config`, :mod:`repro.errors`,
:mod:`repro.atomicio`, :mod:`repro.core`, :mod:`repro.runtime`,
:mod:`repro.obs` and this package itself — are gated by
``mypy --strict`` in CI (see ``[tool.mypy]`` in ``pyproject.toml``).
mypy is not importable in every environment this repo runs in, so
TYP001 enforces the load-bearing prefix of that gate with the stdlib
``ast``: every function in a gated module must annotate its return type
and every parameter (including ``*args`` / ``**kwargs``; ``self`` /
``cls`` excepted).  An unannotated def is exactly where
``disallow_untyped_defs`` would fail first, and is also where type
drift between the engines' shared dataclasses starts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Rule, register_rule
from repro.analysis.findings import Finding

__all__ = ["StrictAnnotations", "GATED_MODULES", "GATED_PREFIXES"]

#: Modules gated exactly.
GATED_MODULES = frozenset(
    {"repro.config", "repro.errors", "repro.atomicio", "repro.data.slabs"}
)
#: Package prefixes gated recursively.
GATED_PREFIXES = (
    "repro.core",
    "repro.runtime",
    "repro.obs",
    "repro.analysis",
    "repro.serve",
    "repro.soak",
    "repro.eval",
    "repro.baselines",
    "repro.synth",
)


@register_rule
class StrictAnnotations(Rule):
    """TYP001: gated modules annotate every def completely."""

    rule_id = "TYP001"
    summary = (
        "strict-typed packages (config/errors/atomicio/core/runtime/obs/"
        "analysis/serve/eval/baselines/synth) must annotate every "
        "parameter and return type"
    )

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module in GATED_MODULES or ctx.module.startswith(
            GATED_PREFIXES
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            gaps = self._gaps(node)
            if gaps:
                yield self.finding(
                    ctx,
                    node,
                    f"{node.name}() is missing annotations: "
                    f"{', '.join(gaps)} (mypy --strict gate)",
                    "annotate every parameter and the return type",
                )

    @staticmethod
    def _gaps(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        gaps: list[str] = []
        if node.returns is None:
            gaps.append("return type")
        args = node.args
        positional = args.posonlyargs + args.args
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                gaps.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                gaps.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            gaps.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            gaps.append(f"**{args.kwarg.arg}")
        return gaps
