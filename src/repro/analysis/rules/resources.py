"""RES001 — resources in serve/obs/soak are released on every path.

The serving loop, telemetry plane and soak harness are the long-lived
parts of the stack: a file handle, socket, mmap or HTTP server leaked
on an exception path accumulates across batches/legs until the process
dies of fd exhaustion — precisely the slow failure the chaos harness
(DESIGN.md §11) exists to rule out.

A resource acquisition (``open``, ``socket.socket``, ``mmap.mmap``,
``ThreadingHTTPServer`` / ``StatusServer``) is considered *managed*
when:

* it is a ``with`` item (directly or wrapped, e.g.
  ``contextlib.closing(...)`` or ``stack.enter_context(...)``);
* it is assigned to ``self.<attr>`` — ownership moves to the object,
  whose own lifecycle (``stop`` / ``close``) releases it;
* it is returned directly (a factory hands ownership to its caller);
* it is bound to a name that some ``finally`` block in the same
  function releases (``close`` / ``stop`` / ``shutdown`` /
  ``server_close`` / ``abort`` / ``terminate`` / ``join``).

Anything else is reachable-leak-on-raise and fires.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.engine import ProjectRule, register_rule

if TYPE_CHECKING:
    from collections.abc import Iterator

    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext
    from repro.analysis.project.symbols import FunctionInfo

__all__ = ["ResourceDiscipline"]

_SCOPE = ("repro.serve", "repro.obs", "repro.soak")

#: Trailing callee name -> resource label.
_ACQUIRERS = {
    "open": "file handle",
    "socket": "socket",
    "mmap": "mmap handle",
    "memmap": "memmap handle",
    "ThreadingHTTPServer": "HTTP server",
    "StatusServer": "status server",
}

_RELEASERS = frozenset(
    {"close", "stop", "shutdown", "server_close", "abort", "terminate", "join"}
)


def _acquire_label(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return _ACQUIRERS.get(func.id)
    if isinstance(func, ast.Attribute):
        return _ACQUIRERS.get(func.attr)
    return None


def _parents(fn: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _finally_released(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str
) -> bool:
    """Whether some ``finally`` in this function releases ``name``."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for call in ast.walk(stmt):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _RELEASERS
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == name
                ):
                    return True
    return False


@register_rule
class ResourceDiscipline(ProjectRule):
    """RES001: serve/obs/soak resources are with/finally-managed."""

    rule_id = "RES001"
    summary = (
        "file/socket/mmap/server handles in serve, obs and soak are "
        "released on every exception path (with-statement, self-owned, "
        "or a finally block) — long-lived loops must not leak fds"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.functions_in(_SCOPE):
            yield from self._check_function(info)

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        parents = _parents(info.node)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            label = _acquire_label(node)
            if label is None:
                continue
            if self._managed(info, node, parents):
                continue
            yield info.ctx.finding(
                self.rule_id,
                node,
                f"{info.qual} acquires a {label} that is not released "
                "on exception paths — a raise here leaks it for the "
                "life of the process",
                "acquire it in a with-statement, hand ownership to "
                "self, or release it in a finally block",
            )

    def _managed(
        self,
        info: FunctionInfo,
        call: ast.Call,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        node: ast.AST = call
        while node is not info.node:
            parent = parents.get(node)
            if parent is None:
                break
            if isinstance(parent, ast.withitem):
                return True  # with open(...) [as f], possibly wrapped
            if isinstance(parent, ast.Call):
                # Argument of a managing combinator such as
                # contextlib.closing(...) or stack.enter_context(...).
                return True
            if isinstance(parent, ast.Return):
                return True  # factory: ownership moves to the caller
            if isinstance(parent, ast.Assign):
                for target in parent.targets:
                    if isinstance(target, ast.Attribute) and isinstance(
                        target.value, ast.Name
                    ) and target.value.id in ("self", "cls"):
                        return True  # ownership moves to the object
                    if isinstance(
                        target, ast.Name
                    ) and _finally_released(info.node, target.id):
                        return True
            node = parent
        return False
