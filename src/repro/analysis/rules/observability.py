"""OBS001 — span/metric names come from the canonical taxonomy.

The telemetry spine (PR 4) only stays queryable if every call site uses
the instrument names declared in :mod:`repro.obs.metrics` — a typo'd
``"executor.shard_retrys"`` counter would record faithfully and be found
by nobody.  OBS001 checks every literal name passed to
``counter()`` / ``histogram()`` against ``CANONICAL_METRIC_NAMES``,
``gauge()`` against ``CANONICAL_GAUGE_NAMES``, ``span()`` /
``timed_stage()`` against ``CANONICAL_SPAN_NAMES``, the windowed-layer
queries ``rate()`` / ``window_count()`` / ``window_summary()`` against
``CANONICAL_WINDOWED_NAMES``, and every ``obs_metrics.<CONSTANT>``
attribute reference against the module's actual exports.  The taxonomy
is imported live from :mod:`repro.obs.metrics`, never copied here, so
rule and registry cannot drift apart (a test pins this in both
directions for each set).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Rule, register_rule
from repro.analysis.findings import Finding

__all__ = ["CanonicalInstrumentNames"]

_METRIC_METHODS = frozenset({"counter", "histogram"})
_GAUGE_METHODS = frozenset({"gauge"})
_SPAN_CALLABLES = frozenset({"span", "timed_stage"})
_WINDOW_METHODS = frozenset({"rate", "window_count", "window_summary"})


def _taxonomy() -> tuple[
    frozenset[str], frozenset[str], frozenset[str], frozenset[str], frozenset[str]
]:
    """(metric, gauge, span, windowed, constant) name sets — live import."""
    from repro.obs import metrics as obs_metrics

    constants = frozenset(
        name
        for name in dir(obs_metrics)
        if name.isupper() and isinstance(getattr(obs_metrics, name), str)
    )
    return (
        obs_metrics.CANONICAL_METRIC_NAMES,
        obs_metrics.CANONICAL_GAUGE_NAMES,
        obs_metrics.CANONICAL_SPAN_NAMES,
        obs_metrics.CANONICAL_WINDOWED_NAMES,
        constants,
    )


@register_rule
class CanonicalInstrumentNames(Rule):
    """OBS001: no ad-hoc instrument/span names outside the taxonomy."""

    rule_id = "OBS001"
    summary = (
        "span/counter/gauge/histogram names must come from the canonical "
        "taxonomy in repro.obs.metrics"
    )

    def applies(self, ctx: FileContext) -> bool:
        # The observation layer itself passes names through as
        # parameters; the analysis package quotes names in messages.
        return ctx.module.startswith("repro") and not ctx.module.startswith(
            ("repro.obs", "repro.analysis")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        (
            metric_names,
            gauge_names,
            span_names,
            windowed_names,
            constant_names,
        ) = _taxonomy()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                callee = func.attr
            elif isinstance(func, ast.Name):
                callee = func.id
            else:
                continue
            if callee in _METRIC_METHODS:
                kind, canonical = "instrument", metric_names
            elif callee in _GAUGE_METHODS:
                kind, canonical = "gauge", gauge_names
            elif callee in _SPAN_CALLABLES:
                kind, canonical = "span", span_names
            elif callee in _WINDOW_METHODS:
                kind, canonical = "windowed series", windowed_names
            else:
                continue
            name_arg = node.args[0]
            if (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
                and name_arg.value not in canonical
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} name {name_arg.value!r} is not in the "
                    "canonical taxonomy of repro.obs.metrics",
                    "add the name as a constant to repro.obs.metrics "
                    "(and DESIGN.md §7) or use an existing one",
                )
            elif (
                # obs_metrics.SHARD_RETRIES style: the constant must
                # actually exist in the taxonomy module.
                isinstance(name_arg, ast.Attribute)
                and name_arg.attr.isupper()
                and name_arg.attr not in constant_names
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} name constant {name_arg.attr!r} does not "
                    "exist in repro.obs.metrics",
                    "declare the constant in the taxonomy first",
                )
            # Plain variables are out of static reach: skip.
