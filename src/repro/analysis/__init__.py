"""Machine-checked invariants: the :mod:`repro.analysis` lint engine.

PRs 1–4 built a stack whose guarantees — bit-identical scores across
engines, resumable checkpointed sweeps, observation-only telemetry —
rest on cross-cutting invariants that no unit test can pin directly:

* no unseeded randomness or wall-clock reads in score paths,
* every persisted artifact written atomically (write-then-rename),
* ``except Exception`` never swallowing a failure silently,
* no float ``==`` in scoring code,
* span/metric names drawn from the canonical taxonomy of
  :mod:`repro.obs.metrics`.

Until this package existed only code review guarded them.
:mod:`repro.analysis` makes each one a registered AST rule
(:mod:`repro.analysis.rules`) producing structured
:class:`~repro.analysis.findings.Finding` records, compared against a
repo-committed baseline (:mod:`repro.analysis.baseline`) so
grandfathered findings don't block while new ones fail the build.

Run it as ``repro-attrition lint`` or ``python -m repro.analysis``;
both exit non-zero on findings not covered by the baseline.  See
DESIGN.md §8 for the rule-by-rule contract map.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import (
    AnalysisReport,
    FileContext,
    ProjectRule,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    get_rule,
    iter_source_files,
    register_rule,
    run_analysis,
    select_rules,
)
from repro.analysis.findings import Finding

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "get_rule",
    "iter_source_files",
    "register_rule",
    "run_analysis",
    "select_rules",
]

# Importing the rule pack registers every rule with the engine.
from repro.analysis import rules as _rules  # noqa: E402,F401
