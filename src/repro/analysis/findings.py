"""The structured result of one rule firing: :class:`Finding`."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One invariant violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier, e.g. ``"DET001"``.
    path:
        Repo-relative POSIX path of the offending file.
    line:
        1-based line number of the offending node.
    message:
        What contract the code breaks, in one sentence.
    suggestion:
        How to bring the code back into compliance.
    line_text:
        The stripped source line, used for baseline matching (baselines
        key on content, not line numbers, so unrelated edits above a
        grandfathered finding don't orphan its entry).
    """

    rule: str
    path: str
    line: int
    message: str
    suggestion: str = ""
    line_text: str = field(default="", compare=False)

    def render(self) -> str:
        """One ``path:line: RULE message`` diagnostic line."""
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.suggestion:
            text += f" ({self.suggestion})"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (``--format json`` / CI artifacts)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suggestion": self.suggestion,
            "line_text": self.line_text,
        }
