"""Rule registry and file walker for the static-analysis engine.

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and
yields :class:`~repro.analysis.findings.Finding` records.  Rules are
singletons registered at import time via :func:`register_rule`;
importing :mod:`repro.analysis.rules` loads the standard pack.

Suppression happens at two levels:

* **inline pragma** — a ``# lint: allow[RULE001] reason`` comment on the
  offending line silences that rule for that line (use for patterns that
  are intentional and locally justified);
* **baseline** — a repo-committed :class:`~repro.analysis.baseline.Baseline`
  file matches findings by ``(rule, path, line text)`` so grandfathered
  violations don't block the build while anything *new* still does.
"""

from __future__ import annotations

import ast
import contextlib
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.errors import ConfigError

__all__ = [
    "AnalysisReport",
    "FileContext",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "get_rule",
    "iter_source_files",
    "register_rule",
    "run_analysis",
]

#: ``# lint: allow[DET001]`` / ``# lint: allow[DET001,FLT001] why``.
_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9_,\s]+)\]")

_RULE_ID = re.compile(r"^[A-Z]{2,8}\d{3}$")


@dataclass(frozen=True)
class FileContext:
    """One parsed source file as rules see it.

    Attributes
    ----------
    path:
        Filesystem path of the file (as given to the engine).
    rel:
        Repo-relative POSIX path reported in findings.
    module:
        Dotted module name (``repro.core.batch``); rules scope on it.
    source:
        Full file text.
    tree:
        Parsed ``ast`` module node.
    lines:
        Source split into lines (for pragma checks and line text).
    """

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def finding(
        self, rule: str, node: ast.AST, message: str, suggestion: str = ""
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` in this file."""
        line = getattr(node, "lineno", 1)
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            message=message,
            suggestion=suggestion,
            line_text=text,
        )

    def allowed(self, rule: str, line: int) -> bool:
        """Whether an inline pragma on ``line`` silences ``rule``."""
        if not 0 < line <= len(self.lines):
            return False
        match = _PRAGMA.search(self.lines[line - 1])
        if match is None:
            return False
        allowed = {part.strip() for part in match.group(1).split(",")}
        return rule in allowed


class Rule:
    """Base class for one statically checkable invariant.

    Subclasses set :attr:`rule_id` and :attr:`summary`, restrict their
    scope via :meth:`applies`, and implement :meth:`check`.
    """

    #: Stable identifier, e.g. ``"DET001"``.
    rule_id: str = ""
    #: One-line description of the protected contract.
    summary: str = ""

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule inspects ``ctx`` at all (default: yes)."""
        del ctx
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per violation in ``ctx``."""
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, suggestion: str = ""
    ) -> Finding:
        """Shorthand for :meth:`FileContext.finding` with this rule's id."""
        return ctx.finding(self.rule_id, node, message, suggestion)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not _RULE_ID.match(rule.rule_id):
        raise ConfigError(f"invalid rule id {rule.rule_id!r} on {cls.__name__}")
    if rule.rule_id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id.

    Raises
    ------
    ConfigError
        If no rule with that id is registered.
    """
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigError(
            f"unknown rule {rule_id!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


# ----------------------------------------------------------------------
# File walking / module naming
# ----------------------------------------------------------------------
def iter_source_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, skipping ``__pycache__``."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for path in sorted(entry.rglob("*.py")):
                if "__pycache__" not in path.parts:
                    yield path
        elif entry.suffix == ".py":
            yield entry
        else:
            raise ConfigError(f"not a Python file or directory: {entry}")


def _module_name(path: Path) -> str:
    """Dotted module name inferred from a ``src``-layout path."""
    parts = path.with_suffix("").parts
    for anchor in ("src", "repro"):
        if anchor in parts:
            start = parts.index(anchor)
            if anchor == "src":
                start += 1
            dotted = parts[start:]
            if dotted and dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return path.stem


def _relative(path: Path, root: Path | None) -> str:
    if root is not None:
        with contextlib.suppress(ValueError):
            return path.resolve().relative_to(root.resolve()).as_posix()
    return path.as_posix()


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def analyze_file(
    path: Path | str,
    *,
    module: str | None = None,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Run rules over one file; pragma-suppressed findings are dropped.

    ``module`` overrides the inferred dotted module name (tests use this
    to place fixture files in a target package's scope).  A file that
    does not parse yields a single ``SYN000`` finding rather than
    raising, so one broken file cannot hide findings in the rest of a
    sweep.
    """
    path = Path(path)
    source = path.read_text()
    rel = _relative(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="SYN000",
                path=rel,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
                suggestion="fix the syntax error so the invariants can be checked",
            )
        ]
    ctx = FileContext(
        path=path,
        rel=rel,
        module=module if module is not None else _module_name(path),
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )
    found: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.allowed(finding.rule, finding.line):
                found.append(finding)
    return found


def analyze_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Run rules over every file under ``paths``.

    Returns ``(findings, n_files)`` with findings ordered by path then
    line.
    """
    rules = tuple(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    n_files = 0
    for path in iter_source_files(paths):
        n_files += 1
        findings.extend(analyze_file(path, root=root, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, n_files


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one lint run, split against the baseline."""

    new: tuple[Finding, ...]
    baselined: tuple[Finding, ...]
    unused_baseline: tuple[BaselineEntry, ...]
    n_files: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing new fired (baselined findings are fine)."""
        return not self.new

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines: list[str] = [finding.render() for finding in self.new]
        for entry in self.unused_baseline:
            lines.append(
                f"{entry.path}: baseline entry for {entry.rule} "
                f"({entry.line_text!r}) no longer matches anything — remove it"
            )
        lines.append(
            f"{self.n_files} file(s): {len(self.new)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.unused_baseline)} stale baseline entr(y/ies)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form for CI artifacts."""
        return {
            "schema": "repro-lint-report",
            "version": 1,
            "n_files": self.n_files,
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "unused_baseline": [e.to_dict() for e in self.unused_baseline],
        }


def run_analysis(
    paths: Sequence[Path | str],
    *,
    baseline: Baseline | None = None,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> AnalysisReport:
    """Lint ``paths`` and split the findings against ``baseline``."""
    findings, n_files = analyze_paths(paths, root=root, rules=rules)
    if baseline is None:
        baseline = Baseline(entries=())
    new, baselined, unused = baseline.split(findings)
    return AnalysisReport(
        new=tuple(new),
        baselined=tuple(baselined),
        unused_baseline=tuple(unused),
        n_files=n_files,
    )
