"""Rule registry and file walker for the static-analysis engine.

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and
yields :class:`~repro.analysis.findings.Finding` records.  Rules are
singletons registered at import time via :func:`register_rule`;
importing :mod:`repro.analysis.rules` loads the standard pack.

Suppression happens at two levels:

* **inline pragma** — a ``# lint: allow[RULE001] reason`` comment on the
  offending line silences that rule for that line (use for patterns that
  are intentional and locally justified);
* **baseline** — a repo-committed :class:`~repro.analysis.baseline.Baseline`
  file matches findings by ``(rule, path, line text)`` so grandfathered
  violations don't block the build while anything *new* still does.
"""

from __future__ import annotations

import ast
import contextlib
import fnmatch
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.analysis.project import ProjectContext

__all__ = [
    "AnalysisReport",
    "FileContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "get_rule",
    "iter_source_files",
    "register_rule",
    "run_analysis",
    "select_rules",
]

#: ``# lint: allow[DET001]`` / ``# lint: allow[DET001,FLT001] why``.
_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9_,\s]+)\]")

_RULE_ID = re.compile(r"^[A-Z]{2,8}\d{3}$")


@dataclass(frozen=True)
class FileContext:
    """One parsed source file as rules see it.

    Attributes
    ----------
    path:
        Filesystem path of the file (as given to the engine).
    rel:
        Repo-relative POSIX path reported in findings.
    module:
        Dotted module name (``repro.core.batch``); rules scope on it.
    source:
        Full file text.
    tree:
        Parsed ``ast`` module node.
    lines:
        Source split into lines (for pragma checks and line text).
    """

    path: Path
    rel: str
    module: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def finding(
        self, rule: str, node: ast.AST, message: str, suggestion: str = ""
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` in this file."""
        line = getattr(node, "lineno", 1)
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule,
            path=self.rel,
            line=line,
            message=message,
            suggestion=suggestion,
            line_text=text,
        )

    def allowed(self, rule: str, line: int) -> bool:
        """Whether an inline pragma on ``line`` silences ``rule``."""
        if not 0 < line <= len(self.lines):
            return False
        match = _PRAGMA.search(self.lines[line - 1])
        if match is None:
            return False
        allowed = {part.strip() for part in match.group(1).split(",")}
        return rule in allowed


class Rule:
    """Base class for one statically checkable invariant.

    Subclasses set :attr:`rule_id` and :attr:`summary`, restrict their
    scope via :meth:`applies`, and implement :meth:`check`.
    """

    #: Stable identifier, e.g. ``"DET001"``.
    rule_id: str = ""
    #: One-line description of the protected contract.
    summary: str = ""
    #: ``"file"`` rules see one file at a time; ``"project"`` rules run
    #: once per sweep over the cross-module :class:`ProjectContext`.
    scope: str = "file"

    def applies(self, ctx: FileContext) -> bool:
        """Whether this rule inspects ``ctx`` at all (default: yes)."""
        del ctx
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield one finding per violation in ``ctx``."""
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, suggestion: str = ""
    ) -> Finding:
        """Shorthand for :meth:`FileContext.finding` with this rule's id."""
        return ctx.finding(self.rule_id, node, message, suggestion)


class ProjectRule(Rule):
    """Base class for an interprocedural (project-scope) invariant.

    Subclasses implement :meth:`check_project` against the cross-module
    :class:`~repro.analysis.project.ProjectContext`.  Running one on a
    single file (``analyze_file``, the fixture suites) still works:
    :meth:`check` wraps the lone file in a one-file project.
    """

    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Yield one finding per violation anywhere in the project."""
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.analysis.project import ProjectContext

        yield from self.check_project(ProjectContext.build([ctx]))


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = cls()
    if not _RULE_ID.match(rule.rule_id):
        raise ConfigError(f"invalid rule id {rule.rule_id!r} on {cls.__name__}")
    if rule.rule_id in _REGISTRY:
        raise ConfigError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id.

    Raises
    ------
    ConfigError
        If no rule with that id is registered.
    """
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise ConfigError(
            f"unknown rule {rule_id!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def select_rules(spec: str) -> list[Rule]:
    """Rules matching a comma-separated id/glob spec (``--rules``).

    Each element is either an exact rule id (``SEQ001``) or an
    ``fnmatch`` family glob (``DUR*``, ``?RK001``).  Order follows the
    registry (sorted by id), duplicates collapse.

    Raises
    ------
    ConfigError
        On an unknown exact id, or a glob that matches nothing.
    """
    chosen: dict[str, Rule] = {}
    for part in spec.split(","):
        pattern = part.strip()
        if not pattern:
            continue
        if not any(ch in pattern for ch in "*?["):
            rule = get_rule(pattern)
            chosen.setdefault(rule.rule_id, rule)
            continue
        matched = [
            rule
            for rule in all_rules()
            if fnmatch.fnmatchcase(rule.rule_id, pattern)
        ]
        if not matched:
            raise ConfigError(
                f"rule glob {pattern!r} matches no registered rule; "
                f"registered: {', '.join(sorted(_REGISTRY))}"
            )
        for rule in matched:
            chosen.setdefault(rule.rule_id, rule)
    if not chosen:
        raise ConfigError(f"empty rule selection {spec!r}")
    return sorted(chosen.values(), key=lambda rule: rule.rule_id)


# ----------------------------------------------------------------------
# File walking / module naming
# ----------------------------------------------------------------------
def iter_source_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, skipping ``__pycache__``."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for path in sorted(entry.rglob("*.py")):
                if "__pycache__" not in path.parts:
                    yield path
        elif entry.suffix == ".py":
            yield entry
        else:
            raise ConfigError(f"not a Python file or directory: {entry}")


def _module_name(path: Path) -> str:
    """Dotted module name inferred from a ``src``-layout path."""
    parts = path.with_suffix("").parts
    for anchor in ("src", "repro"):
        if anchor in parts:
            start = parts.index(anchor)
            if anchor == "src":
                start += 1
            dotted = parts[start:]
            if dotted and dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return path.stem


def _relative(path: Path, root: Path | None) -> str:
    if root is not None:
        with contextlib.suppress(ValueError):
            return path.resolve().relative_to(root.resolve()).as_posix()
    return path.as_posix()


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
def _parse_file(
    path: Path, *, module: str | None, root: Path | None
) -> FileContext | Finding:
    """Parse one file into a :class:`FileContext`, or a ``SYN000``
    finding when the file does not parse — one broken file must not
    hide findings in the rest of a sweep."""
    source = path.read_text()
    rel = _relative(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return Finding(
            rule="SYN000",
            path=rel,
            line=exc.lineno or 1,
            message=f"file does not parse: {exc.msg}",
            suggestion="fix the syntax error so the invariants can be checked",
        )
    return FileContext(
        path=path,
        rel=rel,
        module=module if module is not None else _module_name(path),
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )


def _check_file(ctx: FileContext, rules: Iterable[Rule]) -> list[Finding]:
    """Run file-scope checks (and any project rules passed explicitly,
    via their single-file fallback) over one parsed file."""
    found: list[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.allowed(finding.rule, finding.line):
                found.append(finding)
    return found


def analyze_file(
    path: Path | str,
    *,
    module: str | None = None,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Run rules over one file; pragma-suppressed findings are dropped.

    ``module`` overrides the inferred dotted module name (tests use this
    to place fixture files in a target package's scope).  Project-scope
    rules see the file as a one-file project.
    """
    parsed = _parse_file(Path(path), module=module, root=root)
    if isinstance(parsed, Finding):
        return [parsed]
    return _check_file(parsed, rules if rules is not None else all_rules())


def analyze_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Run rules over every file under ``paths``.

    Returns ``(findings, n_files)`` with findings ordered by path then
    line.  File-scope rules run per file; project-scope rules run once
    over the whole sweep's :class:`~repro.analysis.project.ProjectContext`.
    """
    findings, n_files, _ = _analyze_project(paths, root=root, rules=rules)
    return findings, n_files


def _analyze_project(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> tuple[list[Finding], int, ProjectContext | None]:
    """Full sweep: per-file pass, then one project pass.

    Returns ``(findings, n_files, project)``; ``project`` is ``None``
    when no project-scope rule was selected (the cross-module index is
    only built when something will query it).
    """
    rules = tuple(rules) if rules is not None else all_rules()
    file_rules = [rule for rule in rules if rule.scope != "project"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    findings: list[Finding] = []
    contexts: list[FileContext] = []
    n_files = 0
    for path in iter_source_files(paths):
        n_files += 1
        parsed = _parse_file(path, module=None, root=root)
        if isinstance(parsed, Finding):
            findings.append(parsed)
            continue
        contexts.append(parsed)
        findings.extend(_check_file(parsed, file_rules))
    project: ProjectContext | None = None
    if project_rules:
        from repro.obs import get_metrics
        from repro.obs import metrics as obs_metrics

        from repro.analysis.project import ProjectContext

        project = ProjectContext.build(contexts)
        n_project_findings = 0
        for rule in project_rules:
            for finding in rule.check_project(project):  # type: ignore[attr-defined]
                if not project.allowed(finding):
                    findings.append(finding)
                    n_project_findings += 1
        get_metrics().counter(
            obs_metrics.ANALYSIS_PROJECT_FINDINGS
        ).inc(n_project_findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, n_files, project


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one lint run, split against the baseline."""

    new: tuple[Finding, ...]
    baselined: tuple[Finding, ...]
    unused_baseline: tuple[BaselineEntry, ...]
    n_files: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing new fired (baselined findings are fine)."""
        return not self.new

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines: list[str] = [finding.render() for finding in self.new]
        for entry in self.unused_baseline:
            lines.append(
                f"{entry.path}: baseline entry for {entry.rule} "
                f"({entry.line_text!r}) no longer matches anything — remove it"
            )
        lines.append(
            f"{self.n_files} file(s): {len(self.new)} new finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.unused_baseline)} stale baseline entr(y/ies)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form for CI artifacts."""
        return {
            "schema": "repro-lint-report",
            "version": 1,
            "n_files": self.n_files,
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "unused_baseline": [e.to_dict() for e in self.unused_baseline],
        }


def run_analysis(
    paths: Sequence[Path | str],
    *,
    baseline: Baseline | None = None,
    root: Path | None = None,
    rules: Iterable[Rule] | None = None,
    graph_out: Path | None = None,
) -> AnalysisReport:
    """Lint ``paths`` and split the findings against ``baseline``.

    ``graph_out`` writes the sweep's call-graph JSON document
    (``--graph-out``); when no project rule ran, the graph is built on
    demand so the dump is always available for inspection.
    """
    findings, n_files, project = _analyze_project(
        paths, root=root, rules=rules
    )
    if graph_out is not None:
        if project is None:
            from repro.analysis.project import ProjectContext

            parsed = [
                p
                for p in (
                    _parse_file(path, module=None, root=root)
                    for path in iter_source_files(paths)
                )
                if isinstance(p, FileContext)
            ]
            project = ProjectContext.build(parsed)
        from repro.atomicio import atomic_write_json

        atomic_write_json(graph_out, project.graph.to_dict())
    if baseline is None:
        baseline = Baseline(entries=())
    new, baselined, unused = baseline.split(findings)
    return AnalysisReport(
        new=tuple(new),
        baselined=tuple(baselined),
        unused_baseline=tuple(unused),
        n_files=n_files,
    )
