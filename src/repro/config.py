"""The one validated experiment configuration: :class:`ExperimentConfig`.

Before this module existed every layer re-declared the same knobs as
loose keyword arguments — ``alpha`` and ``window_months`` appeared in the
model, the evaluation protocol, the figures, the ablations, the RFM
baseline and the CLI, each with its own (or no) validation.
:class:`ExperimentConfig` is the single frozen dataclass they all share:
construct it once, validate it once, and pass it by reference down the
data → core → eval → baselines → cli spine.

The legacy keyword arguments still work everywhere for one release (they
are folded into a config internally); new code should build a config
explicitly::

    >>> config = ExperimentConfig(window_months=2, alpha=2.0, backend="batch")
    >>> config.window_months
    2
    >>> config.evolve(alpha=4.0).alpha
    4.0
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # imported lazily at runtime to keep repro.config
    # importable from inside repro.core modules without a cycle
    from repro.core.significance import ExponentialSignificance
    from repro.core.windowing import WindowGrid
    from repro.data.calendar import StudyCalendar

__all__ = ["ExperimentConfig", "DEFAULT_BETA_GRID"]

#: Default alarm-threshold sweep used by ROC-style analyses.
DEFAULT_BETA_GRID: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 10))


@dataclass(frozen=True)
class ExperimentConfig:
    """Every shared experiment knob, validated on construction.

    Attributes
    ----------
    window_months:
        Window span ``w`` in whole months (the paper uses 2).
    alpha:
        Base of the exponential significance rule (the paper uses 2);
        validated through :func:`~repro.core.significance.validate_alpha`
        (``alpha <= 0`` raises, ``alpha <= 1`` warns).
    beta_grid:
        Alarm thresholds swept by ROC / detection-delay analyses, each in
        ``[0, 1]``, strictly increasing.
    first_month, last_month:
        Inclusive month range of the evaluation axis (paper: 12 to 24).
    backend:
        Name of the registered stability engine
        (:mod:`repro.core.engines`); validated lazily against the
        registry so externally registered engines are accepted.
    n_jobs:
        Worker processes for the batch engine (``-1`` = all cores).
    retries:
        Pool retry waves the resilient shard executor attempts before a
        failed shard degrades to the serial in-process fallback
        (:func:`~repro.runtime.executor.run_sharded`); only sharded
        batch fits consult it.
    counting:
        Absence-counting scheme, see
        :class:`~repro.core.significance.SignificanceTracker`.

    The dataclass is frozen and hashable, so it can key memoisation
    caches (e.g. the per-``(customer, config)`` explanation cache of
    :class:`~repro.core.model.StabilityModel`).
    """

    window_months: int = 2
    alpha: float = 2.0
    beta_grid: tuple[float, ...] = DEFAULT_BETA_GRID
    first_month: int = 12
    last_month: int = 24
    backend: str = "incremental"
    n_jobs: int = 1
    retries: int = 2
    counting: str = "paper"

    def __post_init__(self) -> None:
        from repro.core.significance import COUNTING_SCHEMES, validate_alpha

        if self.window_months <= 0:
            raise ConfigError(
                f"window_months must be positive, got {self.window_months}"
            )
        validate_alpha(self.alpha)
        if not self.beta_grid:
            raise ConfigError("beta_grid must not be empty")
        object.__setattr__(self, "beta_grid", tuple(float(b) for b in self.beta_grid))
        if any(not 0.0 <= b <= 1.0 for b in self.beta_grid):
            raise ConfigError(f"beta_grid values must be in [0, 1], got {self.beta_grid}")
        if any(b >= e for b, e in zip(self.beta_grid, self.beta_grid[1:], strict=False)):
            raise ConfigError("beta_grid must be strictly increasing")
        if self.first_month > self.last_month:
            raise ConfigError(
                f"first_month {self.first_month} > last_month {self.last_month}"
            )
        if self.counting not in COUNTING_SCHEMES:
            raise ConfigError(
                f"unknown counting scheme {self.counting!r}; "
                f"expected one of {COUNTING_SCHEMES}"
            )
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ConfigError(f"n_jobs must be >= 1 or -1, got {self.n_jobs}")
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        # Engine names live in the registry; imported lazily because
        # repro.core.engines itself consumes this module's configs.
        from repro.core.engines import available_engines

        if self.backend not in available_engines():
            raise ConfigError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {available_engines()}"
            )

    # ------------------------------------------------------------------
    def grid(self, calendar: StudyCalendar) -> WindowGrid:
        """The monthly window grid this config induces on a calendar."""
        from repro.core.windowing import WindowGrid

        return WindowGrid.monthly(calendar, self.window_months)

    def significance(self) -> ExponentialSignificance:
        """The paper's exponential significance rule at this ``alpha``."""
        from repro.core.significance import ExponentialSignificance

        return ExponentialSignificance(self.alpha)

    def evolve(self, **changes: object) -> ExperimentConfig:
        """A new validated config with the given fields replaced."""
        return dataclasses.replace(self, **changes)
