"""Unbounded-scale synthetic purchase streams for the slab data plane.

The scenario generator (:mod:`repro.synth.generator`) builds rich,
per-customer :class:`~repro.data.basket.Basket` objects — faithful but
far too slow and memory-hungry for 100k+ customer benchmarks.  This
module generates the same *shape* of data (habitual assortments, repeat
visits, per-receipt spend) directly as columnar
:class:`~repro.data.slabs.SlabChunk` batches, one bounded chunk of
customers at a time, so a million-customer stream never holds more than
``chunk_customers`` worth of rows in RAM.

Determinism: a single :class:`numpy.random.Generator` seeded once drives
the whole stream, so identical parameters produce identical chunks —
the slab-vs-in-RAM differential benchmarks depend on replaying the same
stream twice.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import json
from collections.abc import Iterable, Iterator
from pathlib import Path

import numpy as np

from repro.atomicio import AtomicBinaryWriter
from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.slabs import SlabChunk
from repro.data.streams import DayBatch, iter_day_batches
from repro.errors import ConfigError, SchemaError

__all__ = [
    "synthetic_slab_stream",
    "RECORDED_STREAM_SCHEMA",
    "RECORDED_STREAM_VERSION",
    "record_stream",
    "read_stream_header",
    "stream_calendar",
    "replay_stream",
    "stream_fingerprint",
]


def synthetic_slab_stream(
    n_customers: int,
    n_days: int,
    *,
    seed: int = 13,
    vocab_size: int = 1000,
    items_per_customer: int = 8,
    baskets_per_customer: int = 30,
    items_per_basket: int = 3,
    chunk_customers: int = 2048,
) -> Iterator[SlabChunk]:
    """Yield a deterministic purchase stream as bounded slab chunks.

    Each customer holds a fixed assortment of ``items_per_customer``
    products drawn from a ``vocab_size`` catalogue and makes
    ``baskets_per_customer`` visits on uniform random days in
    ``[0, n_days)``, each visit buying ``items_per_basket`` of their
    assortment (with repetition — the presence encoding deduplicates).
    Peak working set is one chunk: ``O(chunk_customers *
    baskets_per_customer * items_per_basket)`` rows.
    """
    if n_customers < 0:
        raise ConfigError(f"n_customers must be >= 0, got {n_customers}")
    if n_days < 1:
        raise ConfigError(f"n_days must be >= 1, got {n_days}")
    if items_per_customer > vocab_size:
        raise ConfigError(
            f"items_per_customer={items_per_customer} exceeds "
            f"vocab_size={vocab_size}"
        )
    if chunk_customers < 1:
        raise ConfigError(f"chunk_customers must be >= 1, got {chunk_customers}")
    rng = np.random.default_rng(seed)
    for first in range(0, n_customers, chunk_customers):
        size = min(chunk_customers, n_customers - first)
        # Customer ids are 1-based so id 0 never collides with "missing".
        ids = np.arange(first + 1, first + size + 1, dtype=np.int64)
        # Per-customer assortment: first items_per_customer slots of a
        # random permutation of the catalogue (vectorised, no replacement).
        keys = rng.random((size, vocab_size))
        assortment = np.argpartition(keys, items_per_customer - 1, axis=1)[
            :, :items_per_customer
        ].astype(np.int64)

        baskets = baskets_per_customer
        days = rng.integers(0, n_days, size=(size, baskets), dtype=np.int64)
        monetary = np.round(rng.uniform(5.0, 50.0, size=(size, baskets)), 2)
        picks = rng.integers(
            0, items_per_customer, size=(size, baskets, items_per_basket)
        )
        items = np.take_along_axis(
            assortment[:, None, :].repeat(baskets, axis=1), picks, axis=2
        )
        yield SlabChunk(
            basket_customer=np.repeat(ids, baskets),
            basket_day=days.reshape(-1),
            basket_monetary=monetary.reshape(-1),
            item_customer=np.repeat(ids, baskets * items_per_basket),
            item_day=np.repeat(days.reshape(-1), items_per_basket),
            item_id=items.reshape(-1),
        )


# ----------------------------------------------------------------------
# Recorded streams: the record-workload-then-replay harness.
#
# A *recorded stream* is the serving layer's deterministic test fixture:
# a JSONL file whose first line is a self-describing header and whose
# every subsequent line is one day's baskets.  Recording a synthetic
# scenario once and replaying the file through `repro.serve` makes every
# serving test exactly reproducible — same bytes in, same scores out —
# and the file's content fingerprint is what the serve checkpoint cursor
# pins itself to.
# ----------------------------------------------------------------------

RECORDED_STREAM_SCHEMA = "repro.recorded-stream"
RECORDED_STREAM_VERSION = 1


def record_stream(
    baskets: Iterable[Basket],
    path: str | Path,
    *,
    calendar: StudyCalendar,
    meta: dict[str, object] | None = None,
) -> Path:
    """Record a day-ordered basket stream as a JSONL fixture, atomically.

    The file is written through
    :class:`~repro.atomicio.AtomicBinaryWriter` (write-temp-then-rename),
    so a killed recording never leaves a truncated fixture under the
    final name.  Line 1 is the header (schema, version, the calendar the
    day offsets refer to, optional metadata); every further line is one
    :class:`~repro.data.streams.DayBatch` as
    ``{"day": d, "baskets": [[customer_id, [items...], monetary], ...]}``.
    Monetary values serialise at ``repr`` precision, so a record/replay
    round trip is bit-exact.

    Raises
    ------
    DataError
        If the basket stream is not day-ordered (via
        :func:`~repro.data.streams.iter_day_batches`).
    """
    path = Path(path)
    header = {
        "schema": RECORDED_STREAM_SCHEMA,
        "version": RECORDED_STREAM_VERSION,
        "calendar": {
            "start": calendar.start.isoformat(),
            "n_months": calendar.n_months,
        },
        "meta": dict(meta) if meta else {},
    }
    with AtomicBinaryWriter(path) as writer:
        writer.write((json.dumps(header, sort_keys=True) + "\n").encode())
        for batch in iter_day_batches(baskets):
            line = {
                "day": batch.day,
                "baskets": [
                    [
                        basket.customer_id,
                        sorted(basket.items),
                        basket.monetary,
                    ]
                    for basket in batch.baskets
                ],
            }
            writer.write((json.dumps(line, sort_keys=True) + "\n").encode())
    return path


def _header_error(path: Path, reason: str) -> SchemaError:
    return SchemaError(f"{path}: not a recorded stream ({reason})")


def read_stream_header(path: str | Path) -> dict[str, object]:
    """Read and validate the header line of a recorded stream.

    Raises
    ------
    SchemaError
        If the file is missing, empty, unparseable, from a foreign
        schema, or from an incompatible version (the message names the
        found and expected versions).
    """
    path = Path(path)
    try:
        with path.open() as handle:
            first = handle.readline()
    except OSError as exc:
        raise _header_error(path, f"cannot read: {exc}") from exc
    if not first:
        raise _header_error(path, "empty file")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise _header_error(path, "corrupt header line") from exc
    if not isinstance(header, dict):
        raise _header_error(path, "header is not an object")
    if header.get("schema") != RECORDED_STREAM_SCHEMA:
        raise _header_error(
            path, f"schema {header.get('schema')!r} is not {RECORDED_STREAM_SCHEMA!r}"
        )
    if header.get("version") != RECORDED_STREAM_VERSION:
        raise _header_error(
            path,
            f"found version {header.get('version')!r}, expected version "
            f"{RECORDED_STREAM_VERSION}",
        )
    cal = header.get("calendar")
    if not isinstance(cal, dict) or "start" not in cal or "n_months" not in cal:
        raise _header_error(path, "missing or malformed calendar")
    return header


def stream_calendar(header: dict[str, object]) -> StudyCalendar:
    """The :class:`~repro.data.calendar.StudyCalendar` a header declares."""
    cal = header["calendar"]
    assert isinstance(cal, dict)
    return StudyCalendar(
        start=_dt.date.fromisoformat(str(cal["start"])),
        n_months=int(str(cal["n_months"])),
    )


def replay_stream(
    path: str | Path, *, skip_days: int = 0
) -> Iterator[DayBatch]:
    """Replay a recorded stream as day batches, in recorded order.

    ``skip_days`` drops the first N day batches without parsing their
    baskets — the serve cursor's resume path ("skip already-fetched
    pages").  Validation failures raise
    :class:`~repro.errors.SchemaError` naming the offending line; day
    regressions raise it too (a recorded fixture is day-ordered by
    construction, so regression means the file was edited or torn).
    """
    path = Path(path)
    if skip_days < 0:
        raise ConfigError(f"skip_days must be >= 0, got {skip_days}")
    read_stream_header(path)  # validate before yielding anything
    last_day = -1
    with path.open() as handle:
        handle.readline()  # header, validated above
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            if line_no - 2 < skip_days:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(
                    f"{path}:{line_no}: corrupt or truncated day batch"
                ) from exc
            batch = _parse_day_batch(path, line_no, payload)
            if batch.day <= last_day and last_day >= 0:
                raise SchemaError(
                    f"{path}:{line_no}: day {batch.day} does not advance "
                    f"past day {last_day}"
                )
            last_day = batch.day
            yield batch


def _parse_day_batch(path: Path, line_no: int, payload: object) -> DayBatch:
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("day"), int)
        or not isinstance(payload.get("baskets"), list)
    ):
        raise SchemaError(f"{path}:{line_no}: malformed day batch")
    day = payload["day"]
    baskets = []
    for record in payload["baskets"]:
        if not isinstance(record, list) or len(record) != 3:
            raise SchemaError(
                f"{path}:{line_no}: malformed basket record {record!r}"
            )
        customer_id, items, monetary = record
        try:
            baskets.append(
                Basket.of(
                    customer_id=int(customer_id),
                    day=day,
                    items=[int(item) for item in items],
                    monetary=float(monetary),
                )
            )
        except (TypeError, ValueError) as exc:
            raise SchemaError(f"{path}:{line_no}: {exc}") from exc
    return DayBatch(day=day, baskets=tuple(baskets))


def stream_fingerprint(path: str | Path) -> str:
    """Short content digest of a recorded stream file.

    The serve checkpoint stores this next to its cursor: a cursor is
    only valid against the exact bytes it was recorded over, so a
    re-recorded or edited stream invalidates the cursor (triggering the
    restart-from-head fallback) instead of resuming into the wrong data.
    """
    digest = hashlib.sha1()
    path = Path(path)
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()[:16]
