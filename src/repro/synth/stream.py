"""Unbounded-scale synthetic purchase streams for the slab data plane.

The scenario generator (:mod:`repro.synth.generator`) builds rich,
per-customer :class:`~repro.data.basket.Basket` objects — faithful but
far too slow and memory-hungry for 100k+ customer benchmarks.  This
module generates the same *shape* of data (habitual assortments, repeat
visits, per-receipt spend) directly as columnar
:class:`~repro.data.slabs.SlabChunk` batches, one bounded chunk of
customers at a time, so a million-customer stream never holds more than
``chunk_customers`` worth of rows in RAM.

Determinism: a single :class:`numpy.random.Generator` seeded once drives
the whole stream, so identical parameters produce identical chunks —
the slab-vs-in-RAM differential benchmarks depend on replaying the same
stream twice.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.data.slabs import SlabChunk
from repro.errors import ConfigError

__all__ = ["synthetic_slab_stream"]


def synthetic_slab_stream(
    n_customers: int,
    n_days: int,
    *,
    seed: int = 13,
    vocab_size: int = 1000,
    items_per_customer: int = 8,
    baskets_per_customer: int = 30,
    items_per_basket: int = 3,
    chunk_customers: int = 2048,
) -> Iterator[SlabChunk]:
    """Yield a deterministic purchase stream as bounded slab chunks.

    Each customer holds a fixed assortment of ``items_per_customer``
    products drawn from a ``vocab_size`` catalogue and makes
    ``baskets_per_customer`` visits on uniform random days in
    ``[0, n_days)``, each visit buying ``items_per_basket`` of their
    assortment (with repetition — the presence encoding deduplicates).
    Peak working set is one chunk: ``O(chunk_customers *
    baskets_per_customer * items_per_basket)`` rows.
    """
    if n_customers < 0:
        raise ConfigError(f"n_customers must be >= 0, got {n_customers}")
    if n_days < 1:
        raise ConfigError(f"n_days must be >= 1, got {n_days}")
    if items_per_customer > vocab_size:
        raise ConfigError(
            f"items_per_customer={items_per_customer} exceeds "
            f"vocab_size={vocab_size}"
        )
    if chunk_customers < 1:
        raise ConfigError(f"chunk_customers must be >= 1, got {chunk_customers}")
    rng = np.random.default_rng(seed)
    for first in range(0, n_customers, chunk_customers):
        size = min(chunk_customers, n_customers - first)
        # Customer ids are 1-based so id 0 never collides with "missing".
        ids = np.arange(first + 1, first + size + 1, dtype=np.int64)
        # Per-customer assortment: first items_per_customer slots of a
        # random permutation of the catalogue (vectorised, no replacement).
        keys = rng.random((size, vocab_size))
        assortment = np.argpartition(keys, items_per_customer - 1, axis=1)[
            :, :items_per_customer
        ].astype(np.int64)

        baskets = baskets_per_customer
        days = rng.integers(0, n_days, size=(size, baskets), dtype=np.int64)
        monetary = np.round(rng.uniform(5.0, 50.0, size=(size, baskets)), 2)
        picks = rng.integers(
            0, items_per_customer, size=(size, baskets, items_per_basket)
        )
        items = np.take_along_axis(
            assortment[:, None, :].repeat(baskets, axis=1), picks, axis=2
        )
        yield SlabChunk(
            basket_customer=np.repeat(ids, baskets),
            basket_day=days.reshape(-1),
            basket_monetary=monetary.reshape(-1),
            item_customer=np.repeat(ids, baskets * items_per_basket),
            item_day=np.repeat(days.reshape(-1), items_per_basket),
            item_id=items.reshape(-1),
        )
