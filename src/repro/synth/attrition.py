"""Partial-attrition injection.

The defining property of grocery churn (Section 1 of the paper) is that
"customer defection is partial: a customer will usually lower his
purchases, instead of totally leaving the store".  An
:class:`AttritionSchedule` implements exactly that: starting from an onset
month, the customer *progressively* loses habitual segments (a few per
month, in a sampled order) and their trip rate decays — they keep
shopping, just less and for less of their routine.

The schedule records which segment is dropped at which month; that ground
truth is what the explanation-quality ablation (DESIGN.md A3) scores the
model's explanations against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.synth.customers import CustomerProfile
from repro.errors import ConfigError

__all__ = ["AttritionSchedule", "sample_schedule"]


@dataclass(frozen=True)
class AttritionSchedule:
    """A churner's defection plan.

    Attributes
    ----------
    customer_id:
        The defecting customer.
    onset_month:
        Study month at which defection begins.
    drop_month:
        ``{segment_id: month}`` — the month each habitual segment stops
        being bought (ground truth for explanations).
    trip_decay_per_month:
        Multiplicative decay of the trip rate applied for every month
        past the onset (1.0 = no decay).
    """

    customer_id: int
    onset_month: int
    drop_month: dict[int, int] = field(default_factory=dict)
    trip_decay_per_month: float = 0.92

    def __post_init__(self) -> None:
        if self.onset_month < 0:
            raise ConfigError(f"onset_month must be >= 0, got {self.onset_month}")
        if not 0.0 < self.trip_decay_per_month <= 1.0:
            raise ConfigError(
                f"trip_decay_per_month must be in (0, 1], got {self.trip_decay_per_month}"
            )
        early = {s: m for s, m in self.drop_month.items() if m < self.onset_month}
        if early:
            raise ConfigError(f"segments dropped before onset: {early}")

    def active_segments(self, profile: CustomerProfile, month: int) -> list[int]:
        """Habitual segments the customer still buys at ``month``."""
        return [
            segment
            for segment in profile.habitual_segments
            if self.drop_month.get(segment, month + 1) > month
        ]

    def trip_interval_at(self, profile: CustomerProfile, month: int) -> float:
        """Mean days between trips at ``month`` (grows as the rate decays)."""
        if month < self.onset_month:
            return profile.trip_interval_days
        months_past = month - self.onset_month
        rate_multiplier = self.trip_decay_per_month**months_past
        return profile.trip_interval_days / rate_multiplier

    def dropped_by(self, month: int) -> frozenset[int]:
        """Segments dropped at or before ``month``."""
        return frozenset(s for s, m in self.drop_month.items() if m <= month)


def sample_schedule(
    profile: CustomerProfile,
    onset_month: int,
    n_months: int,
    rng: np.random.Generator,
    drops_per_month: float = 1.5,
    trip_decay_per_month: float = 0.92,
) -> AttritionSchedule:
    """Sample a progressive-defection schedule for one customer.

    Each month from ``onset_month`` to the study end drops a
    Poisson(``drops_per_month``) number of the remaining habitual
    segments (at least one in the onset month, so defection visibly
    starts when labelled).  Customers may run out of habitual segments
    before the end — full defection, the limiting case of partial
    defection.

    ``drops_per_month = 0`` produces a **pure trip-decay** schedule (no
    segment is ever dropped; defection shows only as a slowing trip
    rate) — the robustness scenario where RFM-style models should hold
    the advantage.
    """
    if not 0 <= onset_month < n_months:
        raise ConfigError(
            f"onset_month {onset_month} outside study of {n_months} months"
        )
    if drops_per_month < 0:
        raise ConfigError(f"drops_per_month must be >= 0, got {drops_per_month}")
    remaining = list(profile.habitual_segments)
    rng.shuffle(remaining)
    drop_month: dict[int, int] = {}
    for month in range(onset_month, n_months):
        if not remaining or drops_per_month == 0:
            break
        n_drops = int(rng.poisson(drops_per_month))
        if month == onset_month:
            n_drops = max(n_drops, 1)
        for _ in range(min(n_drops, len(remaining))):
            drop_month[remaining.pop()] = month
    return AttritionSchedule(
        customer_id=profile.customer_id,
        onset_month=onset_month,
        drop_month=drop_month,
        trip_decay_per_month=trip_decay_per_month,
    )
