"""Synthetic grocery catalog generation.

The paper's catalog has 4M products grouped into 3,388 segments via a
taxonomy.  The generator builds a scaled-down catalog with the same
structure: departments -> segments -> products.  A fixed roster of named
grocery segments is always present — it includes the four segments the
Figure 2 case study names (coffee, milk, cheese, sponges) — and filler
segments are generated on top to reach the requested size.
"""

from __future__ import annotations

import numpy as np

from repro.data.items import Catalog
from repro.errors import ConfigError

__all__ = ["NAMED_SEGMENTS", "build_catalog"]

#: (segment name, department, typical unit price) — the named core of the
#: catalog. Coffee, Milk, Cheese and Sponges are required by the Figure 2
#: case study.
NAMED_SEGMENTS: tuple[tuple[str, str, float], ...] = (
    ("Coffee", "Beverages", 4.5),
    ("Tea", "Beverages", 3.0),
    ("Juice", "Beverages", 2.5),
    ("Soda", "Beverages", 1.8),
    ("Water", "Beverages", 0.8),
    ("Milk", "Dairy", 1.2),
    ("Cheese", "Dairy", 3.5),
    ("Yogurt", "Dairy", 2.0),
    ("Butter", "Dairy", 2.4),
    ("Eggs", "Dairy", 2.8),
    ("Bread", "Bakery", 1.5),
    ("Pastries", "Bakery", 3.2),
    ("Biscuits", "Bakery", 2.1),
    ("Beef", "Meat", 8.0),
    ("Poultry", "Meat", 6.5),
    ("Pork", "Meat", 7.0),
    ("Fish", "Seafood", 9.0),
    ("Shrimp", "Seafood", 11.0),
    ("Apples", "Produce", 2.2),
    ("Bananas", "Produce", 1.4),
    ("Tomatoes", "Produce", 2.6),
    ("Salad", "Produce", 1.9),
    ("Potatoes", "Produce", 1.6),
    ("Onions", "Produce", 1.3),
    ("Pasta", "Pantry", 1.7),
    ("Rice", "Pantry", 2.3),
    ("Flour", "Pantry", 1.1),
    ("Sugar", "Pantry", 1.2),
    ("Olive oil", "Pantry", 5.5),
    ("Canned tomatoes", "Pantry", 1.4),
    ("Cereal", "Pantry", 3.4),
    ("Chocolate", "Snacks", 2.7),
    ("Chips", "Snacks", 2.2),
    ("Nuts", "Snacks", 4.1),
    ("Ice cream", "Frozen", 3.8),
    ("Frozen vegetables", "Frozen", 2.5),
    ("Pizza", "Frozen", 4.2),
    ("Sponges", "Household", 1.9),
    ("Detergent", "Household", 6.0),
    ("Paper towels", "Household", 3.1),
    ("Dish soap", "Household", 2.3),
    ("Trash bags", "Household", 3.7),
    ("Shampoo", "Personal care", 4.4),
    ("Toothpaste", "Personal care", 2.9),
    ("Soap", "Personal care", 1.8),
    ("Diapers", "Baby", 9.5),
    ("Baby food", "Baby", 3.3),
    ("Cat food", "Pets", 5.2),
    ("Dog food", "Pets", 6.8),
    ("Wine", "Alcohol", 7.5),
    ("Beer", "Alcohol", 5.0),
)

_FILLER_DEPARTMENTS = (
    "Beverages",
    "Dairy",
    "Bakery",
    "Meat",
    "Produce",
    "Pantry",
    "Snacks",
    "Frozen",
    "Household",
    "Personal care",
)


def build_catalog(
    n_segments: int = 120,
    products_per_segment: int = 8,
    seed: int = 0,
) -> Catalog:
    """Build a synthetic catalog with at least the named grocery segments.

    Parameters
    ----------
    n_segments:
        Total number of segments; must be at least the size of the named
        roster (currently 51).
    products_per_segment:
        SKUs generated under each segment, with unit prices jittered
        around the segment's typical price.
    seed:
        RNG seed for price jitter (catalog structure itself is
        deterministic).

    Raises
    ------
    ConfigError
        If ``n_segments`` is smaller than the named roster or
        ``products_per_segment`` is not positive.
    """
    if n_segments < len(NAMED_SEGMENTS):
        raise ConfigError(
            f"n_segments must be >= {len(NAMED_SEGMENTS)} (the named roster), "
            f"got {n_segments}"
        )
    if products_per_segment <= 0:
        raise ConfigError(
            f"products_per_segment must be positive, got {products_per_segment}"
        )
    rng = np.random.default_rng(seed)
    catalog = Catalog()
    specs = list(NAMED_SEGMENTS)
    for i in range(n_segments - len(NAMED_SEGMENTS)):
        department = _FILLER_DEPARTMENTS[i % len(_FILLER_DEPARTMENTS)]
        price = float(np.round(rng.uniform(0.8, 9.0), 2))
        specs.append((f"{department} segment {i:04d}", department, price))
    for name, department, price in specs:
        segment = catalog.add_segment(name, department=department)
        for j in range(products_per_segment):
            jitter = float(rng.uniform(0.7, 1.3))
            catalog.add_product(
                f"{name} SKU {j}",
                segment.segment_id,
                unit_price=round(max(price * jitter, 0.2), 2),
            )
    return catalog
