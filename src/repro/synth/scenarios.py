"""Named scenarios reproducing the paper's experimental setting.

* :func:`paper_scenario` — the Figure 1 population: loyal customers vs.
  customers that defect starting around month 18 of a 28-month study.
* :func:`figure2_case_study` — the Figure 2 individual: a loyal-looking
  customer who stops buying **coffee** in month 20 and **milk, sponges
  and cheese** in month 22, injected deterministically so the case study
  reproduces the paper's annotations exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.calendar import StudyCalendar
from repro.data.items import Catalog
from repro.data.transactions import TransactionLog
from repro.synth.attrition import AttritionSchedule
from repro.synth.catalog import build_catalog
from repro.synth.customers import CustomerProfile
from repro.synth.generator import ScenarioConfig, SyntheticDataset, generate_dataset
from repro.synth.shopping import simulate_customer

__all__ = [
    "paper_scenario",
    "mechanism_scenario",
    "figure2_case_study",
    "CaseStudy",
    "FIGURE2_FIRST_LOSS",
    "FIGURE2_SECOND_LOSS",
    "ATTRITION_MECHANISMS",
]

#: Churn-mechanism presets for the robustness study:
#: (drops_per_month, trip_decay_per_month).
ATTRITION_MECHANISMS: dict[str, tuple[float, float]] = {
    # Customers keep shopping at the same rate but progressively lose
    # habitual segments — the paper's core mechanism; basket *content*
    # carries the whole signal.
    "item-loss": (1.5, 1.0),
    # Customers keep their full repertoire but shop less and less — the
    # signal lives in frequency/monetary aggregates, RFM's home turf.
    "trip-decay": (0.0, 0.80),
    # Both at once (the default, most realistic partial defection).
    "mixed": (1.5, 0.92),
}

#: Segment names lost at the first Figure 2 drop (month 20).
FIGURE2_FIRST_LOSS = ("Coffee",)

#: Segment names lost at the second, sharper Figure 2 drop (month 22).
FIGURE2_SECOND_LOSS = ("Milk", "Sponges", "Cheese")


def paper_scenario(
    n_loyal: int = 300,
    n_churners: int = 300,
    seed: int = 7,
    **overrides: object,
) -> SyntheticDataset:
    """The Figure 1 population at a configurable scale.

    28-month study, defection onset at month 18 (with ±1 month jitter),
    progressive segment loss and trip-rate decay for the churner cohort.
    Additional :class:`~repro.synth.generator.ScenarioConfig` fields can
    be overridden by keyword.
    """
    config = ScenarioConfig(
        n_loyal=n_loyal, n_churners=n_churners, seed=seed, **overrides
    )
    return generate_dataset(config)


def mechanism_scenario(
    mechanism: str,
    n_loyal: int = 100,
    n_churners: int = 100,
    seed: int = 7,
    **overrides: object,
) -> SyntheticDataset:
    """The paper scenario with churn restricted to one mechanism.

    ``mechanism`` is one of :data:`ATTRITION_MECHANISMS`; used by the
    robustness study to locate the crossover between the stability model
    (content signal) and RFM (volume signal).
    """
    if mechanism not in ATTRITION_MECHANISMS:
        raise KeyError(
            f"unknown mechanism {mechanism!r}; expected one of "
            f"{sorted(ATTRITION_MECHANISMS)}"
        )
    drops, decay = ATTRITION_MECHANISMS[mechanism]
    config = ScenarioConfig(
        n_loyal=n_loyal,
        n_churners=n_churners,
        seed=seed,
        drops_per_month=drops,
        trip_decay_per_month=decay,
        **overrides,
    )
    return generate_dataset(config)


@dataclass(frozen=True)
class CaseStudy:
    """The Figure 2 fixture: one defecting customer and his context."""

    customer_id: int
    log: TransactionLog
    catalog: Catalog
    calendar: StudyCalendar
    schedule: AttritionSchedule
    first_loss_segments: tuple[int, ...]
    second_loss_segments: tuple[int, ...]


def figure2_case_study(seed: int = 11) -> CaseStudy:
    """Build the Figure 2 defecting customer.

    The customer is a habitual shopper of ~12 segments including coffee,
    milk, cheese and sponges, with a high per-trip inclusion probability
    so the pre-defection stability sits near 1.  The attrition schedule
    is pinned, not sampled: coffee stops during the window ending at
    month 20 (i.e. from calendar month 18), and milk, sponges and cheese
    stop during the window ending at month 22 (from calendar month 20) —
    so with the paper's 2-month windows the stability decreases appear
    exactly at months 20 and 22, matching the Figure 2 annotations.
    """
    catalog = build_catalog(seed=seed)
    calendar = StudyCalendar.paper()
    rng = np.random.default_rng(seed)

    named = {name: catalog.segment_by_name(name).segment_id for name in
             FIGURE2_FIRST_LOSS + FIGURE2_SECOND_LOSS}
    other_names = ("Bread", "Pasta", "Yogurt", "Eggs")
    habitual = sorted(
        set(named.values())
        | {catalog.segment_by_name(name).segment_id for name in other_names}
    )
    customer_id = 0
    profile = CustomerProfile(
        customer_id=customer_id,
        archetype="family",
        habitual_segments=habitual,
        inclusion_prob={s: 0.85 for s in habitual},
        trip_interval_days=5.0,
        noise_rate=0.4,
        basket_multiplier=1.0,
    )
    schedule = AttritionSchedule(
        customer_id=customer_id,
        onset_month=18,
        drop_month={
            **{named[name]: 18 for name in FIGURE2_FIRST_LOSS},
            **{named[name]: 20 for name in FIGURE2_SECOND_LOSS},
        },
        trip_decay_per_month=1.0,  # the case study isolates *item* loss
    )
    log = TransactionLog(
        simulate_customer(profile, calendar, catalog, rng, schedule=schedule)
    )
    return CaseStudy(
        customer_id=customer_id,
        log=log,
        catalog=catalog,
        calendar=calendar,
        schedule=schedule,
        first_loss_segments=tuple(named[name] for name in FIGURE2_FIRST_LOSS),
        second_loss_segments=tuple(named[name] for name in FIGURE2_SECOND_LOSS),
    )
