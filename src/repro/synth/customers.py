"""Customer archetypes and per-customer shopping profiles.

A :class:`CustomerProfile` encodes a customer's *habits* — the structure
the stability model exploits: a set of habitual segments the customer
re-buys at segment-specific rates, a trip frequency, and a taste for
novelty (noise segments sampled outside the habitual set).

Archetypes give the population realistic heterogeneity: a "family"
customer shops often with large habitual sets, a "minimal" customer has a
thin routine.  All draws are made from an explicit numpy generator so
datasets are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.items import Catalog
from repro.errors import ConfigError

__all__ = ["Archetype", "ARCHETYPES", "CustomerProfile", "sample_profile"]


@dataclass(frozen=True)
class Archetype:
    """Population-level template for sampling customer profiles.

    Attributes
    ----------
    name:
        Archetype label (diagnostic only).
    weight:
        Relative prevalence in the population.
    habitual_range:
        ``(low, high)`` bounds for the habitual-set size (inclusive).
    trip_interval_days:
        ``(low, high)`` bounds of the mean days between shopping trips.
    inclusion_range:
        ``(low, high)`` bounds of the per-trip probability that a due
        habitual segment lands in the basket.
    noise_rate:
        Expected number of non-habitual segments per trip.
    """

    name: str
    weight: float
    habitual_range: tuple[int, int]
    trip_interval_days: tuple[float, float]
    inclusion_range: tuple[float, float]
    noise_rate: float


#: The population mix used by the default scenarios.
ARCHETYPES: tuple[Archetype, ...] = (
    Archetype(
        name="family",
        weight=0.35,
        habitual_range=(14, 22),
        trip_interval_days=(4.0, 7.0),
        inclusion_range=(0.45, 0.7),
        noise_rate=1.5,
    ),
    Archetype(
        name="couple",
        weight=0.3,
        habitual_range=(9, 15),
        trip_interval_days=(6.0, 10.0),
        inclusion_range=(0.4, 0.65),
        noise_rate=1.0,
    ),
    Archetype(
        name="single",
        weight=0.25,
        habitual_range=(6, 10),
        trip_interval_days=(8.0, 14.0),
        inclusion_range=(0.35, 0.6),
        noise_rate=0.8,
    ),
    Archetype(
        name="minimal",
        weight=0.1,
        habitual_range=(4, 7),
        trip_interval_days=(12.0, 20.0),
        inclusion_range=(0.3, 0.55),
        noise_rate=0.5,
    ),
)


@dataclass
class CustomerProfile:
    """Sampled shopping behaviour of one customer.

    Attributes
    ----------
    customer_id:
        The customer's id.
    archetype:
        Name of the archetype the profile was sampled from.
    habitual_segments:
        Segment ids the customer re-buys routinely.
    inclusion_prob:
        Per-trip probability that each habitual segment is bought,
        per segment (aligned with ``habitual_segments``).
    trip_interval_days:
        Mean days between shopping trips (exponential inter-arrivals).
    noise_rate:
        Poisson rate of non-habitual segments added per trip.
    basket_multiplier:
        Multiplies unit prices into per-basket monetary value, modelling
        quantity differences across customers.
    """

    customer_id: int
    archetype: str
    habitual_segments: list[int]
    inclusion_prob: dict[int, float] = field(default_factory=dict)
    trip_interval_days: float = 7.0
    noise_rate: float = 1.0
    basket_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.habitual_segments:
            raise ConfigError("a customer profile needs at least one habitual segment")
        if self.trip_interval_days <= 0:
            raise ConfigError(
                f"trip_interval_days must be positive, got {self.trip_interval_days}"
            )
        missing = [s for s in self.habitual_segments if s not in self.inclusion_prob]
        if missing:
            raise ConfigError(f"habitual segments without inclusion_prob: {missing[:5]}")


def sample_profile(
    customer_id: int,
    catalog: Catalog,
    rng: np.random.Generator,
    archetypes: tuple[Archetype, ...] = ARCHETYPES,
    pinned_segments: tuple[int, ...] = (),
) -> CustomerProfile:
    """Sample one customer profile from the archetype mix.

    Parameters
    ----------
    customer_id:
        Id assigned to the sampled customer.
    catalog:
        Catalog whose segments the profile draws from.
    rng:
        Explicit generator (callers own the seeding discipline).
    archetypes:
        Archetype mix to sample from.
    pinned_segments:
        Segment ids guaranteed to be part of the habitual set (used by
        the Figure 2 case study to pin coffee/milk/cheese/sponges).
    """
    if not archetypes:
        raise ConfigError("archetypes must be non-empty")
    weights = np.asarray([a.weight for a in archetypes], dtype=np.float64)
    archetype = archetypes[rng.choice(len(archetypes), p=weights / weights.sum())]

    lo, hi = archetype.habitual_range
    target_size = int(rng.integers(lo, hi + 1))
    all_segments = np.arange(catalog.n_segments)
    pinned = [s for s in pinned_segments if 0 <= s < catalog.n_segments]
    pool = np.setdiff1d(all_segments, np.asarray(pinned, dtype=np.int64))
    extra = max(target_size - len(pinned), 0)
    chosen = rng.choice(pool, size=min(extra, len(pool)), replace=False)
    habitual = sorted(pinned + [int(s) for s in chosen])

    inc_lo, inc_hi = archetype.inclusion_range
    inclusion = {s: float(rng.uniform(inc_lo, inc_hi)) for s in habitual}
    t_lo, t_hi = archetype.trip_interval_days
    return CustomerProfile(
        customer_id=customer_id,
        archetype=archetype.name,
        habitual_segments=habitual,
        inclusion_prob=inclusion,
        trip_interval_days=float(rng.uniform(t_lo, t_hi)),
        noise_rate=archetype.noise_rate,
        basket_multiplier=float(rng.lognormal(mean=0.0, sigma=0.3)),
    )
