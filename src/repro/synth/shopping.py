"""The shopping-trip simulator: turns profiles into timestamped baskets.

For one customer the simulator draws a sequence of shopping trips over the
study period (exponential inter-arrival times, whose mean can grow after a
defection onset) and composes a basket at each trip:

* every *active* habitual segment joins with its per-trip inclusion
  probability (an :class:`~repro.synth.attrition.AttritionSchedule`
  removes segments once they are dropped);
* a Poisson number of noise segments joins from outside the habitual set,
  modulated by a mild annual seasonality;
* the basket's monetary value is derived from the catalog's segment
  prices and the customer's basket multiplier.

Baskets can be emitted at segment level (default — the level the model
consumes) or at product level (a random SKU per segment), which exercises
the taxonomy-abstraction code path.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.items import Catalog
from repro.errors import ConfigError
from repro.synth.attrition import AttritionSchedule
from repro.synth.customers import CustomerProfile

__all__ = ["simulate_customer", "segment_prices"]


def segment_prices(catalog: Catalog) -> dict[int, float]:
    """Mean product price per segment (price proxy for segment-level baskets)."""
    totals: dict[int, list[float]] = {}
    for product in catalog.products():
        totals.setdefault(product.segment_id, []).append(product.unit_price)
    return {
        segment.segment_id: (
            float(np.mean(totals[segment.segment_id]))
            if segment.segment_id in totals
            else 1.0
        )
        for segment in catalog.segments()
    }


def _seasonality(day: int, amplitude: float = 0.15) -> float:
    """Annual multiplicative modulation of discretionary purchases."""
    return 1.0 + amplitude * math.sin(2.0 * math.pi * day / 365.25)


def simulate_customer(
    profile: CustomerProfile,
    calendar: StudyCalendar,
    catalog: Catalog,
    rng: np.random.Generator,
    schedule: AttritionSchedule | None = None,
    product_level: bool = False,
    absences: tuple[tuple[int, int], ...] = (),
) -> list[Basket]:
    """Simulate the full purchase history of one customer.

    Parameters
    ----------
    profile:
        The customer's shopping behaviour.
    calendar:
        Study period the trips must fall in.
    catalog:
        Catalog providing segment prices (and SKUs in product mode).
    rng:
        Explicit generator; one customer's draws are independent of
        other customers' when callers spawn child generators.
    schedule:
        Defection plan; ``None`` simulates a loyal customer.
    product_level:
        Emit product ids (random SKU per segment) instead of segment ids.
    absences:
        Half-open day intervals ``[begin, end)`` during which the
        customer makes no trips (vacations) — used by the robustness
        study: a long gap looks like defection to window-based models.

    Returns
    -------
    list[Basket]
        Chronological baskets (possibly empty list for customers whose
        first trip falls past the study end).
    """
    for begin, end in absences:
        if end < begin:
            raise ConfigError(f"invalid absence interval: [{begin}, {end})")
    prices = segment_prices(catalog)
    n_segments = catalog.n_segments
    habitual_set = set(profile.habitual_segments)
    noise_pool = np.asarray(
        [s for s in range(n_segments) if s not in habitual_set], dtype=np.int64
    )
    products_by_segment: dict[int, list[int]] = {}
    if product_level:
        for product in catalog.products():
            products_by_segment.setdefault(product.segment_id, []).append(
                product.product_id
            )
        empty_segments = [s for s in range(n_segments) if s not in products_by_segment]
        if empty_segments:
            raise ConfigError(
                f"product-level simulation needs SKUs in every segment; "
                f"missing in {empty_segments[:5]}"
            )

    baskets: list[Basket] = []
    day = float(rng.uniform(0, profile.trip_interval_days))
    while day < calendar.n_days:
        day_int = int(day)
        absence = next(
            (interval for interval in absences if interval[0] <= day_int < interval[1]),
            None,
        )
        if absence is not None:
            # On vacation: no trip; resume shopping when the absence ends.
            day = float(absence[1]) + rng.exponential(profile.trip_interval_days)
            continue
        month = calendar.month_of_day(day_int)

        if schedule is not None:
            active = schedule.active_segments(profile, month)
            interval = schedule.trip_interval_at(profile, month)
        else:
            active = profile.habitual_segments
            interval = profile.trip_interval_days

        chosen: set[int] = {
            segment
            for segment in active
            if rng.random() < profile.inclusion_prob[segment]
        }
        season = _seasonality(day_int)
        n_noise = int(rng.poisson(profile.noise_rate * season))
        if n_noise and len(noise_pool):
            noise = rng.choice(noise_pool, size=min(n_noise, len(noise_pool)), replace=False)
            chosen.update(int(s) for s in noise)
        if not chosen and active:
            # A trip with an empty basket is not a receipt; buy the single
            # most habitual item instead (the customer came for something).
            chosen.add(max(active, key=lambda s: profile.inclusion_prob[s]))

        if chosen:
            monetary = profile.basket_multiplier * sum(
                prices[s] * float(rng.uniform(0.8, 1.5)) for s in chosen
            )
            if product_level:
                items = frozenset(
                    int(rng.choice(products_by_segment[s])) for s in chosen
                )
            else:
                items = frozenset(chosen)
            baskets.append(
                Basket(
                    customer_id=profile.customer_id,
                    day=day_int,
                    items=items,
                    monetary=round(monetary, 2),
                )
            )

        day += rng.exponential(interval)
    return baskets
