"""Synthetic grocery-retailer substrate.

Replaces the proprietary dataset of the paper (receipts of 6M customers of
a major French retailer, May 2012 – Aug 2014) with a configurable,
reproducible generator that preserves the mechanisms the stability model
exploits: habitual repeat purchasing, a product→segment taxonomy, partial
(progressive) defection, and retailer-provided cohort labels.  See
DESIGN.md for the substitution rationale.
"""

from repro.synth.attrition import AttritionSchedule, sample_schedule
from repro.synth.catalog import NAMED_SEGMENTS, build_catalog
from repro.synth.customers import ARCHETYPES, Archetype, CustomerProfile, sample_profile
from repro.synth.generator import ScenarioConfig, SyntheticDataset, generate_dataset
from repro.synth.scenarios import (
    ATTRITION_MECHANISMS,
    FIGURE2_FIRST_LOSS,
    FIGURE2_SECOND_LOSS,
    CaseStudy,
    figure2_case_study,
    mechanism_scenario,
    paper_scenario,
)
from repro.synth.shopping import segment_prices, simulate_customer
from repro.synth.stream import synthetic_slab_stream

__all__ = [
    "ARCHETYPES",
    "ATTRITION_MECHANISMS",
    "Archetype",
    "mechanism_scenario",
    "AttritionSchedule",
    "CaseStudy",
    "CustomerProfile",
    "FIGURE2_FIRST_LOSS",
    "FIGURE2_SECOND_LOSS",
    "NAMED_SEGMENTS",
    "ScenarioConfig",
    "SyntheticDataset",
    "build_catalog",
    "figure2_case_study",
    "generate_dataset",
    "paper_scenario",
    "sample_profile",
    "sample_schedule",
    "segment_prices",
    "simulate_customer",
    "synthetic_slab_stream",
]
