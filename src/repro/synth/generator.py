"""Dataset generation facade.

:func:`generate_dataset` assembles the whole synthetic retailer: a
catalog, a population of loyal customers and churners with progressive
defection schedules, the resulting transaction log, the cohort labels
"the retailer provided", and the per-churner ground truth used by the
explanation-quality ablation.

Reproducibility: the top-level seed is split with
``numpy.random.SeedSequence.spawn`` into independent streams (one for the
catalog, one per customer), so regenerating with the same config is
bit-identical and adding customers does not perturb existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.items import Catalog
from repro.data.transactions import TransactionLog
from repro.data.validation import DatasetBundle
from repro.errors import ConfigError
from repro.synth.attrition import AttritionSchedule, sample_schedule
from repro.synth.catalog import build_catalog
from repro.synth.customers import ARCHETYPES, Archetype, sample_profile
from repro.synth.shopping import simulate_customer

__all__ = ["ScenarioConfig", "SyntheticDataset", "generate_dataset"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of a synthetic-retailer scenario.

    Defaults describe a laptop-scale version of the paper's setting:
    a 28-month study (May 2012 – Aug 2014) with defection starting at
    month 18, i.e. churners defect "in the last 6–10 months" window of
    the study, exactly the cohort the retailer flagged.
    """

    n_loyal: int = 300
    n_churners: int = 300
    n_months: int = 28
    onset_month: int = 18
    onset_jitter_months: int = 1
    n_segments: int = 120
    products_per_segment: int = 8
    drops_per_month: float = 1.5
    trip_decay_per_month: float = 0.92
    product_level: bool = False
    vacation_prob: float = 0.0
    vacation_duration_days: tuple[int, int] = (21, 49)
    archetypes: tuple[Archetype, ...] = field(default=ARCHETYPES)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_loyal <= 0 or self.n_churners <= 0:
            raise ConfigError("need at least one loyal and one churning customer")
        if not 0 <= self.onset_month < self.n_months:
            raise ConfigError(
                f"onset_month {self.onset_month} outside study of {self.n_months} months"
            )
        if self.onset_jitter_months < 0:
            raise ConfigError("onset_jitter_months must be >= 0")
        if not 0.0 <= self.vacation_prob <= 1.0:
            raise ConfigError(
                f"vacation_prob must be in [0, 1], got {self.vacation_prob}"
            )
        lo, hi = self.vacation_duration_days
        if not 0 < lo <= hi:
            raise ConfigError(
                f"invalid vacation_duration_days: {self.vacation_duration_days}"
            )


@dataclass(frozen=True)
class SyntheticDataset:
    """Everything :func:`generate_dataset` produces.

    ``bundle`` is the validated dataset the evaluation consumes;
    ``schedules`` is the generator-side ground truth (which segments each
    churner dropped and when), never visible to the models.
    """

    bundle: DatasetBundle
    schedules: dict[int, AttritionSchedule]
    config: ScenarioConfig

    @property
    def log(self) -> TransactionLog:
        return self.bundle.log

    @property
    def catalog(self) -> Catalog:
        return self.bundle.catalog

    @property
    def calendar(self) -> StudyCalendar:
        return self.bundle.calendar

    @property
    def cohorts(self) -> CohortLabels:
        return self.bundle.cohorts


def generate_dataset(config: ScenarioConfig | None = None) -> SyntheticDataset:
    """Generate a complete synthetic retail dataset.

    Customer ids are assigned densely: loyal customers first
    (``0 .. n_loyal-1``), then churners.  Churner onsets are jittered
    uniformly within ``±onset_jitter_months`` of the configured onset
    (clamped to the study), mimicking the spread a real "defected in the
    last 6 months" cohort has.
    """
    config = config if config is not None else ScenarioConfig()
    root = np.random.SeedSequence(config.seed)
    n_customers = config.n_loyal + config.n_churners
    catalog_seq, *customer_seqs = root.spawn(1 + n_customers)

    catalog = build_catalog(
        n_segments=config.n_segments,
        products_per_segment=config.products_per_segment,
        seed=int(catalog_seq.generate_state(1)[0]),
    )
    calendar = StudyCalendar(n_months=config.n_months)

    log = TransactionLog()
    schedules: dict[int, AttritionSchedule] = {}
    churner_onsets: dict[int, int] = {}

    for customer_id in range(n_customers):
        rng = np.random.default_rng(customer_seqs[customer_id])
        profile = sample_profile(
            customer_id, catalog, rng, archetypes=config.archetypes
        )
        schedule = None
        if customer_id >= config.n_loyal:
            jitter = (
                int(rng.integers(-config.onset_jitter_months, config.onset_jitter_months + 1))
                if config.onset_jitter_months
                else 0
            )
            onset = int(np.clip(config.onset_month + jitter, 0, config.n_months - 1))
            schedule = sample_schedule(
                profile,
                onset_month=onset,
                n_months=config.n_months,
                rng=rng,
                drops_per_month=config.drops_per_month,
                trip_decay_per_month=config.trip_decay_per_month,
            )
            schedules[customer_id] = schedule
            churner_onsets[customer_id] = onset
        absences: tuple[tuple[int, int], ...] = ()
        if config.vacation_prob and rng.random() < config.vacation_prob:
            lo, hi = config.vacation_duration_days
            duration = int(rng.integers(lo, hi + 1))
            start = int(rng.integers(0, max(calendar.n_days - duration, 1)))
            absences = ((start, start + duration),)
        baskets = simulate_customer(
            profile,
            calendar,
            catalog,
            rng,
            schedule=schedule,
            product_level=config.product_level,
            absences=absences,
        )
        log.extend(baskets)

    cohorts = CohortLabels(
        loyal=frozenset(range(config.n_loyal)),
        churners=frozenset(range(config.n_loyal, n_customers)),
        onset_month=config.onset_month,
        churner_onsets=churner_onsets,
    )
    segment_log = (
        log.abstracted(lambda pid: catalog.product(pid).segment_id)
        if config.product_level
        else log
    )
    bundle = DatasetBundle.checked(
        log=segment_log, catalog=catalog, calendar=calendar, cohorts=cohorts
    )
    return SyntheticDataset(bundle=bundle, schedules=schedules, config=config)
