"""Heartbeat progress reporting for long sweeps.

A full evaluation sweep is a sequence of independent cells — (scorer,
month) AUROC points, ablation configurations, campaign rows.  On a large
population each cell is seconds of work and the sweep is minutes of
silence.  :class:`ProgressReporter` turns that silence into a heartbeat::

    reporter = progress(len(cells), "figure1 sweep")
    for cell in cells:
        ...
        reporter.advance(key=f"month={cell.month}")
    reporter.finish()

Each heartbeat line carries cells done / total, the observed cells/sec,
an ETA extrapolated from it and the most recent cell key.  Emission goes
through stdlib logging at INFO (``-v`` on the CLI), is rate-limited to
one line per ``min_interval`` seconds, and always fires on the first and
final cell, so short sweeps still report once.

The :func:`progress` factory hands back the shared :data:`NULL_PROGRESS`
when the target logger would drop INFO records, so un-verbose runs pay a
single ``isEnabledFor`` check per sweep — not per cell.
"""

from __future__ import annotations

import logging
import math
import time
from collections.abc import Callable
from types import TracebackType

__all__ = ["ProgressReporter", "NullProgress", "NULL_PROGRESS", "progress"]

logger = logging.getLogger(__name__)

#: Below this many seconds of elapsed time the observed rate is clock
#: noise, not signal: the first heartbeat often lands within
#: microseconds of construction, and ``done / elapsed`` would report
#: billions of cells per second (and an ETA extrapolated from it).
#: Such emissions report a rate of 0 and no ETA instead.
_MIN_RATE_ELAPSED_S = 1e-3


class ProgressReporter:
    """Logs sweep progress (done/total, rate, ETA, current cell)."""

    def __init__(
        self,
        total: int,
        label: str,
        log: logging.Logger | None = None,
        min_interval: float = 1.0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.total = max(int(total), 0)
        self.label = label
        self.done = 0
        self._log = log if log is not None else logger
        self._min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_emit: float | None = None

    # ------------------------------------------------------------------
    def advance(self, key: str | None = None, n: int = 1) -> None:
        """Mark ``n`` cells finished; ``key`` names the current cell."""
        self.done += n
        now = self._clock()
        due = (
            self._last_emit is None
            or self.done >= self.total
            or now - self._last_emit >= self._min_interval
        )
        if due:
            self._last_emit = now
            self._emit(now, key)

    def finish(self) -> None:
        """Log the closing line (total cells, wall time, overall rate)."""
        elapsed = self._clock() - self._started
        self._log.info(
            "%s: finished %d cell(s) in %.2fs (%.1f cells/s)",
            self.label,
            self.done,
            max(elapsed, 0.0),
            self._rate(elapsed),
        )

    # ------------------------------------------------------------------
    def _rate(self, elapsed: float) -> float:
        """Cells/sec, or 0.0 when too little time has passed to measure."""
        if elapsed < _MIN_RATE_ELAPSED_S:
            return 0.0
        return self.done / elapsed

    def _emit(self, now: float, key: str | None) -> None:
        rate = self._rate(now - self._started)
        remaining = max(self.total - self.done, 0)
        # An unmeasurable or zero rate yields no ETA rather than "inf"
        # seconds (or, worse, an ETA of ~0 extrapolated from the
        # clock-noise rate of the first heartbeat).
        if remaining == 0:
            eta_text = "ETA 0.0s"
        elif rate > 0.0 and math.isfinite(rate):
            eta_text = f"ETA {remaining / rate:.1f}s"
        else:
            eta_text = "ETA --"
        self._log.info(
            "%s: %d/%d cells (%.1f cells/s, %s)%s",
            self.label,
            self.done,
            self.total,
            rate,
            eta_text,
            f" [{key}]" if key else "",
        )

    # Context-manager sugar: ``with progress(...) as reporter:``.
    def __enter__(self) -> ProgressReporter:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if exc_type is None:
            self.finish()
        return False


class NullProgress:
    """The disabled reporter: every operation is a no-op."""

    total = 0
    done = 0

    def advance(self, key: str | None = None, n: int = 1) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> NullProgress:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


#: The shared no-op reporter.
NULL_PROGRESS = NullProgress()


def progress(
    total: int,
    label: str,
    log: logging.Logger | None = None,
    min_interval: float = 1.0,
) -> ProgressReporter | NullProgress:
    """A live reporter when the logger emits INFO, else the shared no-op."""
    target = log if log is not None else logger
    if not target.isEnabledFor(logging.INFO):
        return NULL_PROGRESS
    return ProgressReporter(total, label, log=target, min_interval=min_interval)
