"""Structured span tracing: nested wall/CPU timings as serializable records.

A :class:`Tracer` records *spans* — named, attributed, nested timing
intervals — as flat :class:`SpanRecord` values::

    tracer = Tracer()
    with use_tracer(tracer):
        with span("fit.batch", customer_count=400):
            ...
    write_trace_jsonl("trace.jsonl", tracer.records)

Design rules (the tentpole's contract):

* **Zero-cost when disabled.**  The process-wide active tracer defaults
  to :data:`NULL_TRACER`, whose :meth:`~NullTracer.span` returns a shared
  no-op context manager: an uninstrumented run pays one attribute check
  and nothing else — no allocation, no clock reads.
* **Observation only.**  Spans time code; they never change what it
  computes.  Scores with tracing on are bit-identical to tracing off
  (pinned by differential tests).
* **Process-mergeable.**  Spans produced inside worker processes travel
  back as plain dicts and are adopted into the parent trace by
  :meth:`Tracer.merge`, which re-identifies them and re-parents their
  roots under the parent's current span — this is how
  :func:`~repro.runtime.executor.run_sharded` stitches worker-side shard
  spans into one coherent trace.

The JSONL export is one record per line; :func:`read_trace_jsonl`
validates on the way back in (a torn or foreign file raises
:class:`~repro.errors.SchemaError` instead of feeding garbage to the
summary).  :func:`summarize_spans` aggregates a trace per span name
(count, total, p50, p95) for the ``repro obs summarize`` subcommand.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from collections.abc import Iterable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType

from repro.atomicio import atomic_write_text
from repro.errors import SchemaError

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "span",
    "tracing_enabled",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "summarize_spans",
    "render_span_summary",
]

#: JSONL record fields every span must carry.
_REQUIRED_FIELDS = (
    "name",
    "span_id",
    "parent_id",
    "start_unix",
    "wall_s",
    "cpu_s",
    "pid",
    "attrs",
)


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span, flat and JSON-serialisable.

    Attributes
    ----------
    name:
        Span name from the project taxonomy (e.g. ``"engine.fit"``).
    span_id, parent_id:
        Trace-local identity; ``parent_id`` is ``None`` for roots.
        :meth:`Tracer.merge` rewrites both when adopting foreign spans.
    start_unix:
        Wall-clock start (``time.time()``), comparable across processes.
    wall_s, cpu_s:
        Elapsed wall and CPU (``time.process_time``) seconds.
    pid:
        Process that produced the span — worker spans keep their worker
        pid through a merge, so a trace shows where work actually ran.
    attrs:
        Free-form JSON-serialisable attributes (counts, shard ids, …).
    """

    name: str
    span_id: int
    parent_id: int | None
    start_unix: float
    wall_s: float
    cpu_s: float
    pid: int
    attrs: dict

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "pid": self.pid,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> SpanRecord:
        """Validate and revive one serialized span.

        Raises
        ------
        SchemaError
            If the payload is not a span record (missing fields, wrong
            shapes) — a torn trace file must fail loudly.
        """
        if not isinstance(payload, Mapping):
            raise SchemaError(f"span record is not an object: {payload!r}")
        for field_name in _REQUIRED_FIELDS:
            if field_name not in payload:
                raise SchemaError(f"span record missing {field_name!r}: {payload!r}")
        if not isinstance(payload["name"], str) or not payload["name"]:
            raise SchemaError(f"span name must be a non-empty string: {payload!r}")
        if not isinstance(payload["attrs"], Mapping):
            raise SchemaError(f"span attrs must be an object: {payload!r}")
        parent = payload["parent_id"]
        return cls(
            name=payload["name"],
            span_id=int(payload["span_id"]),
            parent_id=None if parent is None else int(parent),
            start_unix=float(payload["start_unix"]),
            wall_s=float(payload["wall_s"]),
            cpu_s=float(payload["cpu_s"]),
            pid=int(payload["pid"]),
            attrs=dict(payload["attrs"]),
        )


class _Span:
    """An open span; records itself into its tracer on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "span_id", "parent_id", "_start", "_t0", "_c0")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> _Span:
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        self.parent_id = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self.span_id)
        self._start = time.time()
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        tracer = self._tracer
        tracer._stack.pop()
        attrs = self._attrs
        if exc_type is not None:
            attrs = {**attrs, "error": exc_type.__name__}
        tracer._records.append(
            SpanRecord(
                name=self._name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start_unix=self._start,
                wall_s=wall,
                cpu_s=cpu,
                pid=os.getpid(),
                attrs=attrs,
            )
        )
        return False


class Tracer:
    """A recording tracer: every closed span becomes a :class:`SpanRecord`."""

    enabled = True

    def __init__(self) -> None:
        self._records: list[SpanRecord] = []
        self._stack: list[int] = []
        self._next_id = 1

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        """Finished spans, in completion order (children before parents)."""
        return tuple(self._records)

    def span(self, name: str, **attrs: object) -> _Span:
        """Open a span; use as a context manager."""
        return _Span(self, name, attrs)

    def current_span_id(self) -> int | None:
        """Id of the innermost open span (``None`` at the top level)."""
        return self._stack[-1] if self._stack else None

    def to_dicts(self) -> list[dict]:
        """All finished spans as plain dicts (picklable, JSON-ready)."""
        return [record.to_dict() for record in self._records]

    def merge(
        self,
        records: Iterable[SpanRecord | Mapping],
        parent_id: int | None = None,
    ) -> int:
        """Adopt spans produced by a foreign tracer (e.g. a worker process).

        Every foreign span gets a fresh id in this trace; internal
        parent/child links are preserved, and foreign *roots* are
        re-parented under ``parent_id`` (default: this tracer's current
        open span), so a merged trace stays one connected tree.  Returns
        the number of spans adopted.
        """
        if parent_id is None:
            parent_id = self.current_span_id()
        revived = [
            record if isinstance(record, SpanRecord) else SpanRecord.from_dict(record)
            for record in records
        ]
        id_map: dict[int, int] = {}
        for record in revived:
            id_map[record.span_id] = self._next_id
            self._next_id += 1
        for record in revived:
            new_parent = (
                parent_id
                if record.parent_id is None
                else id_map.get(record.parent_id, parent_id)
            )
            self._records.append(
                dataclasses.replace(
                    record, span_id=id_map[record.span_id], parent_id=new_parent
                )
            )
        return len(revived)


class _NullSpan:
    """The shared do-nothing span of :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


#: The one no-op span every disabled instrumentation point shares.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def merge(
        self,
        records: Iterable[SpanRecord | Mapping],
        parent_id: int | None = None,
    ) -> int:
        return 0

    def current_span_id(self) -> None:
        return None

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        return ()

    def to_dicts(self) -> list[dict]:
        return []


#: Process-wide default: tracing off.
NULL_TRACER = NullTracer()

_ACTIVE: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-local active tracer (:data:`NULL_TRACER` by default)."""
    return _ACTIVE


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install a tracer as the active one; returns the previous tracer."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Scope a tracer: active inside the ``with``, restored after."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **attrs: object) -> _Span | _NullSpan:
    """Open a span on the active tracer (no-op when tracing is off)."""
    active = _ACTIVE
    if active is NULL_TRACER:
        return NULL_SPAN
    return active.span(name, **attrs)


def tracing_enabled() -> bool:
    """Whether the active tracer records anything."""
    return _ACTIVE.enabled


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def write_trace_jsonl(path: str | Path, records: Iterable[SpanRecord]) -> Path:
    """Write spans as JSON Lines, atomically (temp file + ``os.replace``)."""
    lines = "".join(
        json.dumps(record.to_dict(), sort_keys=True) + "\n" for record in records
    )
    return atomic_write_text(path, lines)


def read_trace_jsonl(path: str | Path) -> list[SpanRecord]:
    """Read and validate a span JSONL file.

    Raises
    ------
    SchemaError
        On unparseable lines or records that are not spans — a torn or
        foreign file is rejected, never silently summarized.
    """
    path = Path(path)
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(
                f"{path}:{lineno}: corrupt trace line (invalid JSON)"
            ) from exc
        records.append(SpanRecord.from_dict(payload))
    return records


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[int(rank)]


def summarize_spans(records: Iterable[SpanRecord]) -> dict[str, dict]:
    """Per-span-name aggregates: count, total/p50/p95/max wall seconds.

    Names are returned sorted by total wall time, heaviest first — the
    order a human scanning for the bottleneck wants.
    """
    by_name: dict[str, list[float]] = {}
    cpu_by_name: dict[str, float] = {}
    for record in records:
        by_name.setdefault(record.name, []).append(record.wall_s)
        cpu_by_name[record.name] = cpu_by_name.get(record.name, 0.0) + record.cpu_s
    summary = {}
    for name, walls in by_name.items():
        walls.sort()
        summary[name] = {
            "count": len(walls),
            "total_s": sum(walls),
            "p50_s": _percentile(walls, 0.50),
            "p95_s": _percentile(walls, 0.95),
            "max_s": walls[-1],
            "cpu_s": cpu_by_name[name],
        }
    return dict(
        sorted(summary.items(), key=lambda item: -item[1]["total_s"])
    )


def render_span_summary(summary: dict[str, dict]) -> str:
    """The ``repro obs summarize`` table for one trace's aggregates."""
    from repro.eval.reporting import format_table

    rows = [
        (
            name,
            stats["count"],
            f"{stats['total_s']:.4f}",
            f"{stats['p50_s']:.4f}",
            f"{stats['p95_s']:.4f}",
            f"{stats['max_s']:.4f}",
        )
        for name, stats in summary.items()
    ]
    return format_table(
        ("span", "count", "total s", "p50 s", "p95 s", "max s"), rows
    )
