"""Metrics exposition + the periodic publisher (DESIGN.md §12).

Two wire formats, both hand-rolled over the stdlib:

* :func:`render_prometheus` turns a window snapshot into Prometheus
  text exposition 0.0.4 — cumulative counters as ``counter`` series
  (``_total`` suffix), gauges and rolling rates as ``gauge`` series,
  per-window histogram summaries as ``summary`` series with
  ``quantile`` labels plus ``_count``/``_sum``.  Canonical dotted
  names are mangled ``serve.batch_s`` → ``repro_serve_batch_s``.
* the JSONL stream: each published snapshot appended as one line via
  :func:`repro.atomicio.append_jsonl_line`, the feed ``obs tail``
  follows.

:func:`parse_prometheus` is the matching reader — CI scrapes
``/metrics`` mid-soak and asserts the exposition round-trips through
it, so the format can't rot silently.

:class:`MetricsPublisher` ties the plane together: on each
:meth:`~MetricsPublisher.tick` (time-gated; callers invoke it freely
per batch) it samples the registry into :class:`~repro.obs.windows.
WindowedMetrics`, renders both formats, pushes them at the status
board, appends the JSONL line, and files the snapshot into the flight
recorder's ring.  Everything downstream of the registry dump happens at
publish cadence, never per observation — the <3% overhead pin holds
because the hot path's only new cost is a time comparison.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from pathlib import Path
from typing import TYPE_CHECKING, Protocol

from repro.atomicio import append_jsonl_line
from repro.errors import SchemaError
from repro.obs.metrics import SOAK_SLO_BURN, MetricsRegistry, NullMetrics
from repro.obs.windows import WindowedMetrics

if TYPE_CHECKING:
    from repro.obs.flight import FlightRecorder

__all__ = [
    "MetricsPublisher",
    "render_prometheus",
    "parse_prometheus",
    "PROMETHEUS_CONTENT_TYPE",
]

#: The content type ``/metrics`` responses carry.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix on every exported series name.
_PREFIX = "repro_"

#: quantile-summary keys → Prometheus ``quantile`` label values.
_QUANTILE_LABELS: tuple[tuple[str, str], ...] = (
    ("p50", "0.5"),
    ("p95", "0.95"),
    ("p99", "0.99"),
)


def _mangle(name: str) -> str:
    """Canonical dotted instrument name → Prometheus metric name."""
    safe = "".join(ch if ch.isalnum() else "_" for ch in name)
    return _PREFIX + safe


def _format_value(value: float) -> str:
    """Render a sample value; integers print without a trailing .0."""
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(snapshot: dict[str, object]) -> str:
    """Render a window snapshot as Prometheus text exposition 0.0.4.

    Series, in order: cumulative counters (``counter``), gauges and
    per-second rolling rates (``gauge``), per-window histogram
    summaries (``summary``).  Output is deterministic (sorted names)
    so scrapes diff cleanly.
    """
    lines: list[str] = []

    counters = snapshot.get("counters")
    if isinstance(counters, dict):
        for name in sorted(counters):
            metric = _mangle(str(name)) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(float(counters[name]))}")

    gauges = snapshot.get("gauges")
    if isinstance(gauges, dict):
        for name in sorted(gauges):
            metric = _mangle(str(name))
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(float(gauges[name]))}")

    rates = snapshot.get("rates")
    if isinstance(rates, dict):
        for name in sorted(rates):
            metric = _mangle(str(name)) + "_rate"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(float(rates[name]))}")

    windows = snapshot.get("windows")
    if isinstance(windows, dict):
        for name in sorted(windows):
            summary = windows[name]
            if not isinstance(summary, dict):
                continue
            metric = _mangle(str(name))
            lines.append(f"# TYPE {metric} summary")
            for key, label in _QUANTILE_LABELS:
                value = float(summary.get(key, 0.0))
                lines.append(
                    f'{metric}{{quantile="{label}"}} {_format_value(value)}'
                )
            lines.append(
                f"{metric}_count {_format_value(float(summary.get('count', 0.0)))}"
            )
            lines.append(
                f"{metric}_sum {_format_value(float(summary.get('sum', 0.0)))}"
            )

    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse text exposition back to ``{series[{labels}]: value}``.

    The inverse of :func:`render_prometheus` for self-verification
    (CI scrapes ``/metrics`` and asserts required series are present).
    Comment/TYPE lines are skipped; a malformed sample line raises
    :class:`~repro.errors.SchemaError`.
    """
    samples: dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.rsplit(None, 1)
        if len(parts) != 2:
            raise SchemaError(f"malformed exposition line: {raw!r}")
        series, value = parts
        try:
            samples[series] = float(value)
        except ValueError as exc:
            raise SchemaError(f"malformed exposition value: {raw!r}") from exc
    return samples


class BoardSink(Protocol):
    """What the publisher needs from a status board (duck-typed so
    ``repro.obs`` never imports ``repro.serve``)."""

    def set_metrics_text(self, text: str) -> None: ...

    def push_metrics_sample(self, snapshot: dict[str, object]) -> None: ...


class MetricsPublisher:
    """Periodic bridge from the registry to every live consumer.

    Parameters
    ----------
    windowed:
        The window layer to sample into (owned by the publisher; a
        default 60s/5s window is built when omitted).
    board:
        Optional status board; receives the rendered exposition and
        the raw snapshot on each publish.
    flight:
        Optional flight recorder; each published snapshot joins its
        ring, and :meth:`trigger_flight` proxies trigger calls so
        call sites need only hold the publisher.
    stream_path:
        Optional JSONL file each snapshot is appended to (the
        ``obs tail`` feed).
    interval_s:
        Minimum seconds between publishes; :meth:`tick` calls inside
        the interval return ``None`` without touching the registry.
    slo_budgets_ms:
        Optional ``{"p50"/"p95"/"p99": ms}`` budgets; when present,
        each snapshot carries the burn map and the worst burn is
        exported as the ``soak.slo_burn`` gauge.
    """

    def __init__(
        self,
        windowed: WindowedMetrics | None = None,
        board: BoardSink | None = None,
        flight: FlightRecorder | None = None,
        stream_path: str | Path | None = None,
        interval_s: float = 2.0,
        slo_budgets_ms: dict[str, float] | None = None,
    ) -> None:
        self.windowed = windowed if windowed is not None else WindowedMetrics()
        self.board = board
        self.flight = flight
        self.stream_path = Path(stream_path) if stream_path is not None else None
        self.interval_s = float(interval_s)
        self.slo_budgets_ms = dict(slo_budgets_ms) if slo_budgets_ms else None
        self._last_publish: float | None = None
        self.published = 0
        #: Wall seconds spent inside :meth:`tick`, cumulative — the
        #: plane's entire hot-path cost, which is what the
        #: ``telemetry_plane`` overhead pin measures.
        self.tick_seconds = 0.0

    # ------------------------------------------------------------------
    def tick(
        self,
        registry: MetricsRegistry | NullMetrics,
        force: bool = False,
        context: dict[str, object] | Callable[[], dict[str, object]] | None = None,
    ) -> dict[str, object] | None:
        """Publish if the interval elapsed (or ``force``); returns the
        snapshot when one was published, else ``None``.

        ``context`` may be a callable so expensive context (the
        per-shard table) is only computed on ticks that actually
        publish — the hot path's cost for a skipped tick is one clock
        read and a comparison.
        """
        started = time.perf_counter()
        now = time.monotonic()
        if (
            not force
            and self._last_publish is not None
            and now - self._last_publish < self.interval_s
        ):
            self.tick_seconds += time.perf_counter() - started
            return None
        self._last_publish = now
        if callable(context):
            context = context()
        self.windowed.sample(registry, now)
        if self.slo_budgets_ms:
            burn = self.windowed.slo_burn(self.slo_budgets_ms)
            if burn:
                self.windowed.set_gauge(SOAK_SLO_BURN, max(burn.values()))
        snapshot = self.windowed.snapshot(
            now, context=context, budgets_ms=self.slo_budgets_ms
        )
        snapshot["wall_ts"] = time.time()
        self._deliver(snapshot)
        self.published += 1
        self.tick_seconds += time.perf_counter() - started
        return snapshot

    def _deliver(self, snapshot: dict[str, object]) -> None:
        if self.board is not None:
            self.board.set_metrics_text(render_prometheus(snapshot))
            self.board.push_metrics_sample(snapshot)
        if self.stream_path is not None:
            append_jsonl_line(self.stream_path, snapshot)
        if self.flight is not None:
            self.flight.record_metrics(snapshot)

    # ------------------------------------------------------------------
    def record_event(self, event: str, **details: object) -> None:
        """File an event into the flight ring (no-op without a recorder)."""
        if self.flight is not None:
            self.flight.record_event(event, **details)

    def trigger_flight(self, reason: str, commit_index: int = 0) -> Path | None:
        """Flush the flight ring; returns the artifact path (or ``None``
        when no recorder is attached)."""
        if self.flight is None:
            return None
        return self.flight.trigger(reason, commit_index=commit_index)
