"""Flight recorder: a bounded ring of recent telemetry (DESIGN.md §12).

A soak failure at hour three is useless to debug from end-of-run
rollups; what matters is *what the system looked like just before the
fault*.  :class:`FlightRecorder` keeps the last N telemetry records —
published window snapshots, span records, free-form events — in a
bounded in-memory ring, and on a trigger (a chaos fault fires, a cursor
falls back to the stream head, an SLO violation is recorded) flushes
the ring atomically to ``flight-<commit>.jsonl``: a self-contained
post-mortem artifact naming the trigger and carrying the recent
history that led up to it.

Recording is O(1) per record (a deque append) and the ring is only
serialised on a trigger, so steady-state cost is negligible; the flush
itself routes through :func:`repro.atomicio.atomic_write_text` so a
crash mid-flush can never leave a torn artifact.

Trigger reasons are free-form strings with a small conventional
vocabulary (see the DESIGN.md §12 trigger table):

* ``fault:<site>`` — a chaos fault was injected at a schedule cell;
* ``cursor_invalid`` — a resume rejected the cursor and restarted from
  the stream head;
* ``slo_violation:<detail>`` — a latency/invariant budget was blown.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path

from repro.atomicio import atomic_write_text
from repro.errors import SchemaError

__all__ = ["FlightRecorder", "read_flight_jsonl", "FLIGHT_SCHEMA"]

#: Schema tag on the header line of every flight artifact.
FLIGHT_SCHEMA = "repro-flight"

#: Flight artifact format version.
FLIGHT_VERSION = 1


class FlightRecorder:
    """Bounded ring of telemetry records, flushed atomically on trigger.

    Parameters
    ----------
    out_dir:
        Directory flight artifacts land in (created on first flush).
    capacity:
        Ring size; the oldest records fall off once exceeded.
    """

    def __init__(self, out_dir: str | Path, capacity: int = 256) -> None:
        if capacity <= 0:
            from repro.errors import ConfigError

            raise ConfigError(f"flight capacity must be positive, got {capacity}")
        self.out_dir = Path(out_dir)
        self.capacity = capacity
        self._ring: deque[dict[str, object]] = deque(maxlen=capacity)
        self._triggers = 0
        #: Paths of every artifact flushed this run, in trigger order.
        self.flushed: list[Path] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, kind: str, payload: dict[str, object]) -> None:
        """File one record into the ring (O(1), no I/O)."""
        self._ring.append({"kind": kind, **payload})

    def record_event(self, event: str, **details: object) -> None:
        """A free-form event record (batch committed, leg started, ...)."""
        self.record("event", {"event": event, **details})

    def record_metrics(self, snapshot: dict[str, object]) -> None:
        """A published window snapshot (from the metrics publisher)."""
        self.record("metrics", {"snapshot": snapshot})

    def record_span(self, span: dict[str, object]) -> None:
        """A completed span record (``SpanRecord.to_dict`` shape)."""
        self.record("span", {"span": span})

    def __len__(self) -> int:
        return len(self._ring)

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    def trigger(self, reason: str, commit_index: int = 0) -> Path:
        """Flush the ring to ``flight-<commit>.jsonl`` atomically.

        The artifact's first line is a header naming the trigger reason
        and commit index; the rest is the ring, oldest record first.
        Repeat triggers at the same commit index get a ``-<n>`` suffix
        so no artifact is ever overwritten.
        """
        name = f"flight-{commit_index:04d}.jsonl"
        path = self.out_dir / name
        if path.exists():
            self._triggers += 1
            path = self.out_dir / f"flight-{commit_index:04d}-{self._triggers}.jsonl"
        header: dict[str, object] = {
            "schema": FLIGHT_SCHEMA,
            "version": FLIGHT_VERSION,
            "reason": reason,
            "commit_index": commit_index,
            "records": len(self._ring),
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in self._ring)
        atomic_write_text(path, "\n".join(lines) + "\n")
        self.flushed.append(path)
        return path


def read_flight_jsonl(path: str | Path) -> tuple[dict[str, object], list[dict[str, object]]]:
    """Load a flight artifact: ``(header, records)``.

    Raises
    ------
    SchemaError
        If the file is missing, empty, not line-JSON, or the header is
        not a flight header.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SchemaError(f"cannot read flight artifact {path}: {exc}") from exc
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise SchemaError(f"flight artifact {path} is empty")
    try:
        parsed = [json.loads(line) for line in lines]
    except json.JSONDecodeError as exc:
        raise SchemaError(f"flight artifact {path} has a corrupt line: {exc}") from exc
    header = parsed[0]
    if not isinstance(header, dict) or header.get("schema") != FLIGHT_SCHEMA:
        raise SchemaError(f"{path} is not a flight artifact: {header!r}")
    records = [r for r in parsed[1:] if isinstance(r, dict)]
    return header, records
