"""Windowed metrics: rolling rates and per-window quantiles (DESIGN.md §12).

The registry in :mod:`repro.obs.metrics` is cumulative — counters only
grow, histograms keep every observation — which is exactly right for
end-of-run artifacts and exactly wrong for a live dashboard: after an
hour of soak, the p99 of ``serve.batch_s`` is dominated by history and a
latency regression *now* is invisible.  :class:`WindowedMetrics` layers
a fixed-width time-bucket ring over the registry without touching any
hot path:

* the serving loop keeps incrementing the same counters and histograms
  it always has (zero new cost when the plane is off, one cheap
  ``dump()`` per publish interval when on);
* a periodic :meth:`sample` diffs the cumulative state against the
  previous sample and files the *delta* (counter increments, new
  histogram observations) into the bucket covering "now";
* buckets older than the window fall off the ring, so :meth:`rate` and
  :meth:`window_summary` answer "per second, lately" and "p99, lately"
  instead of "since the beginning of time".

This is the scrape model: the publisher drives sampling, the
instrumented code never knows the window layer exists — which is how
the bit-identical-with-telemetry-on guarantee extends to the live plane
for free.

All methods take explicit timestamps so tests drive a synthetic clock;
only the publisher (:mod:`repro.obs.export`) reads the real one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.obs.metrics import (
    STAGE_SERVE_BATCH,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.trace import _percentile

__all__ = ["WindowedMetrics", "WINDOW_SNAPSHOT_SCHEMA"]

#: Schema tag on every :meth:`WindowedMetrics.snapshot` payload.
WINDOW_SNAPSHOT_SCHEMA = "repro-metrics-window"

#: Snapshot format version.
WINDOW_SNAPSHOT_VERSION = 1

#: The quantile keys a window summary reports, shared with
#: :meth:`repro.obs.metrics.Histogram.summary` so the two shapes match.
_SUMMARY_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


@dataclass
class _Bucket:
    """Deltas observed during one fixed-width time slice."""

    index: int
    counter_deltas: dict[str, int] = field(default_factory=dict)
    histogram_values: dict[str, list[float]] = field(default_factory=dict)


class WindowedMetrics:
    """Fixed-width time-bucket ring over a cumulative registry.

    Parameters
    ----------
    window_s:
        Width of the rolling window answered by :meth:`rate` /
        :meth:`window_summary`.
    bucket_s:
        Width of one ring slot.  Smaller buckets age history out more
        smoothly at the cost of a longer ring; the ring length is
        ``ceil(window_s / bucket_s)`` and both must be positive.
    """

    def __init__(self, window_s: float = 60.0, bucket_s: float = 5.0) -> None:
        if window_s <= 0 or bucket_s <= 0:
            raise ConfigError(
                f"window_s and bucket_s must be positive, got {window_s}/{bucket_s}"
            )
        if bucket_s > window_s:
            raise ConfigError(
                f"bucket_s {bucket_s} wider than window_s {window_s}"
            )
        self.window_s = float(window_s)
        self.bucket_s = float(bucket_s)
        self.n_buckets = math.ceil(self.window_s / self.bucket_s)
        self._buckets: list[_Bucket] = []
        #: Cumulative counter values at the previous sample.
        self._last_counters: dict[str, int] = {}
        #: Histogram lengths at the previous sample (new values = tail).
        self._last_hist_len: dict[str, int] = {}
        #: Last-seen gauge values (point-in-time, no windowing).
        self._gauges: dict[str, float] = {}
        #: Cumulative counter totals as of the last sample.
        self._totals: dict[str, int] = {}
        self._last_ts: float | None = None
        self._samples = 0

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def sample(self, registry: MetricsRegistry | NullMetrics, now: float) -> None:
        """Diff the registry against the previous sample into a bucket.

        Time must not run backwards across samples; a non-monotonic
        ``now`` raises :class:`~repro.errors.ConfigError` rather than
        silently filing deltas into the wrong bucket.
        """
        if self._last_ts is not None and now < self._last_ts:
            raise ConfigError(
                f"sample time went backwards: {now} < {self._last_ts}"
            )
        state = registry.dump()
        index = int(now // self.bucket_s)
        bucket = self._bucket_for(index)

        counters = state["counters"]
        for name, value in counters.items():
            count = int(value)
            delta = count - self._last_counters.get(name, 0)
            self._last_counters[name] = count
            self._totals[name] = count
            if delta > 0:
                bucket.counter_deltas[name] = (
                    bucket.counter_deltas.get(name, 0) + delta
                )

        for name, values in state["histogram_values"].items():
            seen = self._last_hist_len.get(name, 0)
            fresh = values[seen:]
            self._last_hist_len[name] = len(values)
            if fresh:
                bucket.histogram_values.setdefault(name, []).extend(
                    float(v) for v in fresh
                )

        for name, value in state["gauges"].items():
            if value is not None:
                self._gauges[name] = float(value)

        self._last_ts = now
        self._samples += 1
        self._evict(index)

    def set_gauge(self, name: str, value: float) -> None:
        """Record a gauge directly (publisher-computed values like burn)."""
        self._gauges[name] = float(value)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def rate(self, name: str) -> float:
        """Events per second for a counter over the covered window."""
        span = self.span_s()
        if span <= 0:
            return 0.0
        total = sum(b.counter_deltas.get(name, 0) for b in self._buckets)
        return total / span

    def window_count(self, name: str) -> int:
        """Counter increments that landed inside the window."""
        return sum(b.counter_deltas.get(name, 0) for b in self._buckets)

    def window_summary(self, name: str) -> dict[str, float]:
        """count/p50/p95/p99/max of a histogram's in-window observations."""
        values: list[float] = []
        for bucket in self._buckets:
            values.extend(bucket.histogram_values.get(name, ()))
        ordered = sorted(values)
        summary: dict[str, float] = {
            "count": float(len(ordered)),
            "sum": sum(ordered),
        }
        for key, q in _SUMMARY_QUANTILES:
            summary[key] = _percentile(ordered, q)
        summary["max"] = ordered[-1] if ordered else 0.0
        return summary

    def gauges(self) -> dict[str, float]:
        """Last-seen gauge values (sorted for stable serialisation)."""
        return dict(sorted(self._gauges.items()))

    def totals(self) -> dict[str, int]:
        """Cumulative counter totals as of the last sample."""
        return dict(sorted(self._totals.items()))

    def span_s(self) -> float:
        """Seconds of history the ring currently covers."""
        if not self._buckets:
            return 0.0
        indices = [b.index for b in self._buckets]
        return (max(indices) - min(indices) + 1) * self.bucket_s

    def slo_burn(
        self,
        budgets_ms: dict[str, float],
        series: str = STAGE_SERVE_BATCH,
    ) -> dict[str, float]:
        """Burn ratio per quantile budget over the rolling window.

        ``budgets_ms`` maps quantile keys (``p50``/``p95``/``p99``) to
        millisecond budgets, the shape of
        :meth:`repro.soak.plan.SoakPlan.slo_budgets_ms`.  The burn for a
        quantile is ``actual / budget`` — 1.0 is exactly on budget,
        above 1.0 is burning.  Quantile keys without a positive budget
        are skipped; an empty window burns 0.0 everywhere.
        """
        summary = self.window_summary(series)
        burn: dict[str, float] = {}
        for key, _q in _SUMMARY_QUANTILES:
            budget = budgets_ms.get(key)
            if budget is None or budget <= 0:
                continue
            actual_ms = summary[key] * 1000.0
            burn[key] = actual_ms / budget
        return burn

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def snapshot(
        self,
        now: float,
        context: dict[str, object] | None = None,
        budgets_ms: dict[str, float] | None = None,
    ) -> dict[str, object]:
        """One JSON-safe sample for the JSONL stream / ``obs tail``.

        Includes rolling rates for every counter with in-window
        activity, window summaries for every histogram with in-window
        observations, all gauges, cumulative counter totals, and — when
        budgets are supplied — the SLO burn map.  ``context`` is merged
        verbatim (shard table, stream id, ...).
        """
        counter_names: set[str] = set()
        hist_names: set[str] = set()
        for bucket in self._buckets:
            counter_names.update(bucket.counter_deltas)
            hist_names.update(bucket.histogram_values)
        payload: dict[str, object] = {
            "schema": WINDOW_SNAPSHOT_SCHEMA,
            "version": WINDOW_SNAPSHOT_VERSION,
            "ts": now,
            "window_s": self.window_s,
            "span_s": self.span_s(),
            "samples": self._samples,
            "rates": {n: self.rate(n) for n in sorted(counter_names)},
            "windows": {n: self.window_summary(n) for n in sorted(hist_names)},
            "gauges": self.gauges(),
            "counters": self.totals(),
        }
        if budgets_ms is not None:
            payload["burn"] = self.slo_burn(budgets_ms)
        if context:
            payload["context"] = dict(context)
        return payload

    # ------------------------------------------------------------------
    def _bucket_for(self, index: int) -> _Bucket:
        if self._buckets and self._buckets[-1].index == index:
            return self._buckets[-1]
        bucket = _Bucket(index=index)
        self._buckets.append(bucket)
        return bucket

    def _evict(self, current_index: int) -> None:
        horizon = current_index - self.n_buckets + 1
        self._buckets = [b for b in self._buckets if b.index >= horizon]
