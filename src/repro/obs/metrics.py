"""Process-local metrics registry: counters, gauges, histograms.

The runtime and evaluation layers report *what happened* through named
instruments — checkpoint hits and misses, shard retries and degrades,
cells computed versus replayed, per-stage engine timings — without
knowing whether anyone is listening:

* the process-wide default registry is :data:`NULL_METRICS`, whose
  instruments are shared no-op singletons, so an uninstrumented run pays
  one dict lookup per observation and allocates nothing;
* with a recording :class:`MetricsRegistry` installed (``--metrics-out``
  or :class:`~repro.obs.TelemetrySession`), every observation lands in a
  named instrument and the registry serialises to one JSON object.

Worker processes carry their own registry; its raw state travels back
to the parent as a :meth:`MetricsRegistry.dump` payload and is folded in
by :meth:`MetricsRegistry.merge` (counters add, histograms concatenate,
gauges last-write-wins) — the metrics side of the worker-span merge in
:func:`~repro.runtime.executor.run_sharded`.

Instrument names used across the codebase are declared here as
constants so the taxonomy has one home (see DESIGN.md §7).
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.atomicio import atomic_write_json
from repro.errors import SchemaError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "metrics_enabled",
    # instrument taxonomy
    "CHECKPOINT_HITS",
    "CHECKPOINT_MISSES",
    "CHECKPOINT_INVALID",
    "SHARD_RETRIES",
    "SHARD_TIMEOUTS",
    "SHARD_DEGRADED",
    "CELLS_COMPUTED",
    "CELLS_REPLAYED",
    "STAGE_CSR_BUILD",
    "STAGE_SIGNIFICANCE",
    "STAGE_NORMALIZE",
    "SLAB_STORE_HITS",
    "SLAB_STORE_MISSES",
    "SERVE_INGESTED",
    "SERVE_SCORED",
    "SERVE_FLAGGED",
    "SERVE_CHECKPOINTED",
    "SERVE_BATCHES_REWORKED",
    "SERVE_CURSOR_INVALID",
    "SERVE_CHECKPOINT_IO_RETRIES",
    "SOAK_FAULTS_INJECTED",
    "SOAK_LEGS",
    "SOAK_LOOPS",
    "SOAK_SLO_VIOLATIONS",
    "ANALYSIS_PROJECT_FILES",
    "ANALYSIS_PROJECT_FUNCTIONS",
    "ANALYSIS_PROJECT_CALL_EDGES",
    "ANALYSIS_PROJECT_FINDINGS",
    # gauge taxonomy (live telemetry plane, DESIGN.md §12)
    "SERVE_QUEUE_DEPTH",
    "SERVE_LAG_DAYS",
    "SERVE_COMMIT_INDEX",
    "SOAK_SLO_BURN",
    # span taxonomy
    "SPAN_RUN_SHARDED",
    "SPAN_WAVE",
    "SPAN_SHARD",
    "SPAN_EVAL_CELL",
    "SPAN_ENGINE_FIT",
    "SPAN_FIT_BATCH",
    "SPAN_SLAB_BUILD",
    "SPAN_SLAB_OPEN",
    "SPAN_SERVE_RUN",
    "SPAN_SERVE_CHECKPOINT",
    "STAGE_SERVE_BATCH",
    "SPAN_SOAK_RUN",
    "STAGE_SOAK_LEG",
    "SPAN_ANALYSIS_PROJECT",
    # canonical name sets (consumed by repro.analysis rule OBS001)
    "CANONICAL_METRIC_NAMES",
    "CANONICAL_SPAN_NAMES",
    "CANONICAL_GAUGE_NAMES",
    "CANONICAL_WINDOWED_NAMES",
]

# ----------------------------------------------------------------------
# Instrument taxonomy (DESIGN.md §7): one canonical name per event.
# ----------------------------------------------------------------------
#: Journaled sweep cells replayed from / missing in a checkpoint journal.
CHECKPOINT_HITS = "checkpoint.hits"
CHECKPOINT_MISSES = "checkpoint.misses"
#: Cell files rejected as corrupt / foreign during a resume.
CHECKPOINT_INVALID = "checkpoint.invalid"
#: Failed pool attempts (each sends its shard to another wave or, after
#: the final wave, to the serial fallback).
SHARD_RETRIES = "executor.shard_retries"
#: The subset of failed attempts caused by the wave deadline.
SHARD_TIMEOUTS = "executor.shard_timeouts"
#: Shards recomputed serially in the parent after exhausting retries.
SHARD_DEGRADED = "executor.shard_degraded"
#: Sweep cells actually computed this run vs. replayed from a journal.
CELLS_COMPUTED = "sweep.cells_computed"
CELLS_REPLAYED = "sweep.cells_replayed"
#: Engine fit stage timings (seconds, histograms).
STAGE_CSR_BUILD = "engine.stage.csr_build_s"
STAGE_SIGNIFICANCE = "engine.stage.significance_s"
STAGE_NORMALIZE = "engine.stage.normalize_s"
#: Slab-store cache outcomes: an ensure-call found a valid store keyed by
#: the dataset fingerprint (hit) or had to build one (miss).
SLAB_STORE_HITS = "slab.store_hits"
SLAB_STORE_MISSES = "slab.store_misses"
#: Serving-loop counters (Snippet-2 runbook semantics, DESIGN.md §10):
#: baskets ingested, (customer, window) scores emitted, alarms raised,
#: batches committed (state + cursor durable).
SERVE_INGESTED = "serve.ingested"
SERVE_SCORED = "serve.scored"
SERVE_FLAGGED = "serve.flagged"
SERVE_CHECKPOINTED = "serve.checkpointed"
#: Batches re-processed on resume because a crash landed between the
#: state write and the cursor commit (provably <= 1 per crash).
SERVE_BATCHES_REWORKED = "serve.batches_reworked"
#: Resumes that found an unusable cursor (torn file, stream/config
#: mismatch) and fell back to restarting from the stream head.
SERVE_CURSOR_INVALID = "serve.cursor_invalid"
#: Checkpoint write/commit attempts that hit a transient OSError
#: (ENOSPC, EACCES, ...) and were retried with backoff (DESIGN.md §11).
SERVE_CHECKPOINT_IO_RETRIES = "serve.checkpoint_io_retries"
#: Chaos/soak harness (DESIGN.md §11): faults actually injected this
#: run, serving legs executed, stream loops completed, and SLO/invariant
#: violations detected.
SOAK_FAULTS_INJECTED = "soak.faults_injected"
SOAK_LEGS = "soak.legs"
SOAK_LOOPS = "soak.loops"
SOAK_SLO_VIOLATIONS = "soak.slo_violations"
#: Project-pass verifier (DESIGN.md §8.8): files indexed, functions in
#: the symbol table, resolved call edges, and interprocedural findings
#: emitted per lint sweep.
ANALYSIS_PROJECT_FILES = "analysis.project_files"
ANALYSIS_PROJECT_FUNCTIONS = "analysis.project_functions"
ANALYSIS_PROJECT_CALL_EDGES = "analysis.project_call_edges"
ANALYSIS_PROJECT_FINDINGS = "analysis.project_findings"

# ----------------------------------------------------------------------
# Gauge taxonomy (live telemetry plane, DESIGN.md §12): point-in-time
# values the serving loop keeps current so a /metrics scrape or the
# `obs tail` dashboard can see the run's position, not just its totals.
# ----------------------------------------------------------------------
#: Baskets in the batch currently being processed (in-flight work).
SERVE_QUEUE_DEPTH = "serve.queue_depth"
#: Stream days not yet consumed: calendar days minus the committed
#: cursor position (how far behind the end of the stream the run is).
SERVE_LAG_DAYS = "serve.lag_days"
#: Last committed checkpoint commit index.
SERVE_COMMIT_INDEX = "serve.commit_index"
#: Worst SLO burn ratio over the rolling window (actual/budget; >1 is
#: burning).  Set by the publisher only when budgets are configured.
SOAK_SLO_BURN = "soak.slo_burn"

# ----------------------------------------------------------------------
# Span taxonomy: every tracer span name used across the stack.  New
# instrumentation adds its name *here first*; rule OBS001 in
# repro.analysis rejects literal span/instrument names that are not in
# the canonical sets below, so the taxonomy cannot drift silently.
# ----------------------------------------------------------------------
#: One resilient sharded run (children: waves, shards).
SPAN_RUN_SHARDED = "executor.run_sharded"
#: One pool wave inside a sharded run.
SPAN_WAVE = "executor.wave"
#: One shard attempt (worker-side, or degraded in the parent).
SPAN_SHARD = "executor.shard"
#: One scored sweep cell (protocol / ablations / campaign / robustness).
SPAN_EVAL_CELL = "eval.cell"
#: One engine fit through the registry.
SPAN_ENGINE_FIT = "engine.fit"
#: The batched population fit (possibly sharded).
SPAN_FIT_BATCH = "fit.batch"
#: One out-of-core slab-store build (stream → spill → columnar slabs).
SPAN_SLAB_BUILD = "slab.build"
#: Validating + memory-mapping an existing slab store.
SPAN_SLAB_OPEN = "slab.open"
#: One serving run over a recorded stream (children: batches,
#: checkpoints).
SPAN_SERVE_RUN = "serve.run"
#: One durable checkpoint: per-shard state write + cursor commit.
SPAN_SERVE_CHECKPOINT = "serve.checkpoint"
#: One ingest/score batch (span *and* histogram via timed_stage).
STAGE_SERVE_BATCH = "serve.batch_s"
#: One chaos/soak run over a recorded stream (children: legs).
SPAN_SOAK_RUN = "soak.run"
#: One serving leg inside a soak (span *and* histogram via timed_stage).
STAGE_SOAK_LEG = "soak.leg_s"
#: Building the cross-module symbol table + call graph for one lint
#: sweep's project pass (DESIGN.md §8.8).
SPAN_ANALYSIS_PROJECT = "analysis.project_build"

#: Every canonical counter/gauge/histogram name.
CANONICAL_METRIC_NAMES: frozenset[str] = frozenset(
    {
        CHECKPOINT_HITS,
        CHECKPOINT_MISSES,
        CHECKPOINT_INVALID,
        SHARD_RETRIES,
        SHARD_TIMEOUTS,
        SHARD_DEGRADED,
        CELLS_COMPUTED,
        CELLS_REPLAYED,
        STAGE_CSR_BUILD,
        STAGE_SIGNIFICANCE,
        STAGE_NORMALIZE,
        SLAB_STORE_HITS,
        SLAB_STORE_MISSES,
        SERVE_INGESTED,
        SERVE_SCORED,
        SERVE_FLAGGED,
        SERVE_CHECKPOINTED,
        SERVE_BATCHES_REWORKED,
        SERVE_CURSOR_INVALID,
        SERVE_CHECKPOINT_IO_RETRIES,
        SOAK_FAULTS_INJECTED,
        SOAK_LEGS,
        SOAK_LOOPS,
        SOAK_SLO_VIOLATIONS,
        STAGE_SERVE_BATCH,
        STAGE_SOAK_LEG,
        ANALYSIS_PROJECT_FILES,
        ANALYSIS_PROJECT_FUNCTIONS,
        ANALYSIS_PROJECT_CALL_EDGES,
        ANALYSIS_PROJECT_FINDINGS,
    }
)

#: Every canonical span name.  The engine-stage histogram names double
#: as span names because :func:`repro.obs.timed_stage` opens a span and
#: observes a histogram under the same name.
CANONICAL_SPAN_NAMES: frozenset[str] = frozenset(
    {
        SPAN_RUN_SHARDED,
        SPAN_WAVE,
        SPAN_SHARD,
        SPAN_EVAL_CELL,
        SPAN_ENGINE_FIT,
        SPAN_FIT_BATCH,
        SPAN_SLAB_BUILD,
        SPAN_SLAB_OPEN,
        SPAN_SERVE_RUN,
        SPAN_SERVE_CHECKPOINT,
        SPAN_SOAK_RUN,
        SPAN_ANALYSIS_PROJECT,
        STAGE_CSR_BUILD,
        STAGE_SIGNIFICANCE,
        STAGE_NORMALIZE,
        STAGE_SERVE_BATCH,
        STAGE_SOAK_LEG,
    }
)

#: Every canonical gauge name (live telemetry plane).  Gauges are
#: point-in-time and excluded from CANONICAL_METRIC_NAMES so OBS001 can
#: check ``registry.gauge(...)`` call sites against exactly this set.
CANONICAL_GAUGE_NAMES: frozenset[str] = frozenset(
    {
        SERVE_QUEUE_DEPTH,
        SERVE_LAG_DAYS,
        SERVE_COMMIT_INDEX,
        SOAK_SLO_BURN,
    }
)

#: Every series the windowed layer (repro.obs.windows) tracks per time
#: bucket: counters whose rolling rates matter live, plus the stage
#: histograms whose per-window quantiles feed the SLO burn computation.
#: ``WindowedMetrics.rate`` / ``window_summary`` call sites are checked
#: against this set by OBS001.
CANONICAL_WINDOWED_NAMES: frozenset[str] = frozenset(
    {
        SERVE_INGESTED,
        SERVE_SCORED,
        SERVE_FLAGGED,
        SERVE_CHECKPOINTED,
        SOAK_FAULTS_INJECTED,
        SOAK_SLO_VIOLATIONS,
        STAGE_SERVE_BATCH,
        STAGE_SOAK_LEG,
    }
)

#: Serialized registry format version.
METRICS_VERSION = 1


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution of observed values (timings, sizes)."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile of the observations (0.0 when empty).

        ``q`` is a fraction in ``[0, 1]`` — ``quantile(0.99)`` is the
        p99.  An empty histogram quantiles to 0.0 (matching
        :meth:`summary`), and a single-sample histogram returns that
        sample at every ``q``.

        Raises
        ------
        ConfigError
            If ``q`` is outside ``[0, 1]``.
        """
        from repro.errors import ConfigError
        from repro.obs.trace import _percentile

        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile q must be in [0, 1], got {q}")
        return _percentile(sorted(self.values), q)

    def summary(self) -> dict:
        """count / total / p50 / p95 / p99 / max of the observations."""
        from repro.obs.trace import _percentile

        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "total": sum(ordered),
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
            "max": ordered[-1] if ordered else 0.0,
        }


class MetricsRegistry:
    """A recording registry: instruments are created on first use."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> int:
        """Current value of a counter (0 when never incremented)."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else 0

    def to_dict(self) -> dict:
        """Aggregated snapshot: histogram distributions are summarized."""
        return {
            "schema": "repro-metrics",
            "version": METRICS_VERSION,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def dump(self) -> dict:
        """Raw, mergeable state (histograms keep their observations)."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histogram_values": {
                n: list(h.values) for n, h in self._histograms.items()
            },
        }

    def merge(self, delta: dict) -> None:
        """Fold a :meth:`dump` payload (e.g. from a worker process) in.

        Raises
        ------
        SchemaError
            If the payload is not a registry dump.
        """
        if not isinstance(delta, dict):
            raise SchemaError(f"metrics delta is not an object: {delta!r}")
        for field in ("counters", "gauges", "histogram_values"):
            if field not in delta or not isinstance(delta[field], dict):
                raise SchemaError(f"metrics delta missing {field!r}: {delta!r}")
        for name, value in delta["counters"].items():
            self.counter(name).inc(int(value))
        for name, value in delta["gauges"].items():
            if value is not None:
                self.gauge(name).set(float(value))
        for name, values in delta["histogram_values"].items():
            self.histogram(name).values.extend(float(v) for v in values)

    def export_json(self, path: str | Path) -> Path:
        """Write the aggregated snapshot atomically as indented JSON."""
        return atomic_write_json(path, self.to_dict(), indent=2)


class _NullInstrument:
    """The shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    value = 0
    values: tuple = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def summary(self) -> dict:
        return {
            "count": 0,
            "total": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def counter_value(self, name: str) -> int:
        return 0

    def to_dict(self) -> dict:
        return {
            "schema": "repro-metrics",
            "version": METRICS_VERSION,
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def dump(self) -> dict:
        return {"counters": {}, "gauges": {}, "histogram_values": {}}

    def merge(self, delta: dict) -> None:
        pass


#: Process-wide default: metrics off.
NULL_METRICS = NullMetrics()

_ACTIVE: MetricsRegistry | NullMetrics = NULL_METRICS


def get_metrics() -> MetricsRegistry | NullMetrics:
    """The process-local active registry (:data:`NULL_METRICS` by default)."""
    return _ACTIVE


def set_metrics(registry: MetricsRegistry | NullMetrics | None) -> MetricsRegistry | NullMetrics:
    """Install a registry as the active one; returns the previous registry."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else NULL_METRICS
    return previous


@contextmanager
def use_metrics(
    registry: MetricsRegistry | NullMetrics,
) -> Iterator[MetricsRegistry | NullMetrics]:
    """Scope a registry: active inside the ``with``, restored after."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


def metrics_enabled() -> bool:
    """Whether the active registry records anything."""
    return _ACTIVE.enabled
