"""Run manifests: every resumable run describes itself on disk.

A :class:`RunManifest` is the one-file answer to "what produced this
checkpoint directory?": the experiment name, the full
:class:`~repro.config.ExperimentConfig` (plus a short fingerprint of
it), the :meth:`DatasetBundle.fingerprint
<repro.data.validation.DatasetBundle.fingerprint>` of the data, the
seed, the engine backend, a rollup of the resilient executor's
:class:`~repro.runtime.executor.ExecutionReport`, and per-span /
per-instrument telemetry aggregates.

It is written **atomically next to the checkpoint journal** (same
temp-then-rename protocol as the journal's cells, under the reserved
name :data:`MANIFEST_NAME`, which the journal's listing skips), so a
directory of cells is never mute about its provenance.  Reading back
validates schema and version: a torn or foreign file raises
:class:`~repro.errors.ManifestError` rather than describing the wrong
run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.atomicio import atomic_write_json
from repro.errors import ManifestError

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry, NullMetrics
    from repro.obs.trace import NullTracer, Tracer
    from repro.runtime.executor import ExecutionReport

__all__ = [
    "MANIFEST_NAME",
    "RunManifest",
    "config_fingerprint",
    "build_manifest",
    "write_manifest",
    "read_manifest",
]

#: Reserved filename inside a checkpoint directory.
MANIFEST_NAME = "manifest.json"

MANIFEST_SCHEMA = "repro-run-manifest"
MANIFEST_VERSION = 1


def config_fingerprint(config: dict) -> str:
    """Short stable digest of a config mapping (order-insensitive)."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class RunManifest:
    """The self-description of one (resumable) run."""

    experiment: str
    config: dict
    config_fingerprint: str
    dataset_fingerprint: str | None = None
    seed: int | None = None
    backend: str | None = None
    execution: dict | None = None
    spans: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    created_unix: float = 0.0

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["schema"] = MANIFEST_SCHEMA
        payload["version"] = MANIFEST_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> RunManifest:
        """Validate and revive a serialized manifest.

        Raises
        ------
        ManifestError
            On schema / version mismatch or missing fields.
        """
        if not isinstance(payload, dict):
            raise ManifestError(f"manifest is not a JSON object: {payload!r}")
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise ManifestError(
                f"not a run manifest (schema {payload.get('schema')!r}, "
                f"expected {MANIFEST_SCHEMA!r})"
            )
        if payload.get("version") != MANIFEST_VERSION:
            raise ManifestError(
                f"unsupported manifest version {payload.get('version')!r} "
                f"(this build reads version {MANIFEST_VERSION})"
            )
        for field_name in ("experiment", "config", "config_fingerprint"):
            if field_name not in payload:
                raise ManifestError(f"manifest missing {field_name!r}")
        if not isinstance(payload["config"], dict):
            raise ManifestError("manifest config is not an object")
        return cls(
            experiment=str(payload["experiment"]),
            config=dict(payload["config"]),
            config_fingerprint=str(payload["config_fingerprint"]),
            dataset_fingerprint=payload.get("dataset_fingerprint"),
            seed=payload.get("seed"),
            backend=payload.get("backend"),
            execution=payload.get("execution"),
            spans=dict(payload.get("spans") or {}),
            metrics=dict(payload.get("metrics") or {}),
            created_unix=float(payload.get("created_unix") or 0.0),
        )


def _execution_payload(report: ExecutionReport | None) -> dict | None:
    """An :class:`~repro.runtime.executor.ExecutionReport` as a rollup."""
    if report is None:
        return None
    return {
        "n_shards": report.n_shards,
        "max_workers": report.max_workers,
        "retries": report.retries,
        "n_retried": report.n_retried,
        "n_degraded": report.n_degraded,
        "fault_free": report.fault_free,
        "wall_seconds": report.wall_seconds,
        "summary": report.summary(),
    }


def build_manifest(
    experiment: str,
    config: object = None,
    dataset_fingerprint: str | None = None,
    seed: int | None = None,
    execution: ExecutionReport | None = None,
    tracer: Tracer | NullTracer | None = None,
    metrics: MetricsRegistry | NullMetrics | None = None,
) -> RunManifest:
    """Assemble a manifest from the run's live objects.

    ``config`` is an :class:`~repro.config.ExperimentConfig` (or any
    dataclass / mapping); ``execution`` an
    :class:`~repro.runtime.executor.ExecutionReport` or ``None``;
    ``tracer`` / ``metrics`` the active telemetry objects (their rollups
    are embedded, empty when telemetry is off).
    """
    from repro.obs.trace import summarize_spans

    if config is None:
        config_map: dict = {}
    elif isinstance(config, dict):
        config_map = dict(config)
    else:
        config_map = dataclasses.asdict(config)
    backend = config_map.get("backend")
    span_rollup = (
        summarize_spans(tracer.records)
        if tracer is not None and getattr(tracer, "enabled", False)
        else {}
    )
    metric_rollup = (
        metrics.to_dict()
        if metrics is not None and getattr(metrics, "enabled", False)
        else {}
    )
    return RunManifest(
        experiment=experiment,
        config=config_map,
        config_fingerprint=config_fingerprint(config_map),
        dataset_fingerprint=dataset_fingerprint,
        seed=seed,
        backend=backend,
        execution=_execution_payload(execution),
        spans=span_rollup,
        metrics=metric_rollup,
        created_unix=time.time(),
    )


def write_manifest(directory: str | Path, manifest: RunManifest) -> Path:
    """Atomically write ``manifest.json`` into a (checkpoint) directory.

    ``directory`` may also be a full file path; either way the write is
    temp-then-rename so a kill mid-write never leaves a torn manifest.
    """
    target = Path(directory)
    if target.suffix != ".json":
        target.mkdir(parents=True, exist_ok=True)
        target = target / MANIFEST_NAME
    else:
        target.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_json(target, manifest.to_dict(), indent=2)


def read_manifest(path: str | Path) -> RunManifest:
    """Read and validate a manifest file (or the directory holding one).

    Raises
    ------
    ManifestError
        If the file is missing, unparseable, or fails validation.
    """
    path = Path(path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    try:
        text = path.read_text()
    except OSError as exc:
        raise ManifestError(f"{path}: cannot read manifest: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ManifestError(
            f"{path}: corrupt or truncated manifest (invalid JSON)"
        ) from exc
    return RunManifest.from_dict(payload)
