"""The telemetry spine: tracing, metrics, progress, run manifests.

``repro.obs`` makes the engine/runtime/eval stack observable without
making it slower or different:

* :mod:`repro.obs.trace` — a lightweight span tracer
  (``span("fit.batch", customer_count=...)`` context managers) recording
  nested wall/CPU timings as JSONL-serialisable records, with safe
  merging of worker-process spans back into the parent trace;
* :mod:`repro.obs.metrics` — a process-local registry of named counters,
  gauges and histograms (checkpoint hits/misses, shard retries/degrades,
  cells computed vs. replayed, engine stage timings);
* :mod:`repro.obs.progress` — heartbeat progress for long sweeps (cells
  done / total, cells/sec, ETA, current cell key) over stdlib logging;
* :mod:`repro.obs.manifest` — the :class:`~repro.obs.manifest.RunManifest`
  written atomically next to every checkpoint journal, so resumable runs
  are self-describing;
* :mod:`repro.obs.windows`, :mod:`repro.obs.export`,
  :mod:`repro.obs.flight`, :mod:`repro.obs.tail` — the live telemetry
  plane (DESIGN.md §12): rolling-window rates/quantiles over the
  registry, Prometheus/JSONL exposition via a periodic publisher, a
  flight recorder flushed on faults and SLO violations, and the
  ``obs tail`` terminal dashboard.

The contract every instrumented call site relies on:

1. **Zero-cost when disabled** — the process-wide tracer and registry
   default to no-op implementations; instrumentation dispatches to them
   without allocating (pinned by the ``telemetry_overhead`` benchmark at
   <3% on the full evaluation sweep).
2. **Observation only** — telemetry never changes a computed value;
   scores with telemetry on are bit-identical to off (pinned by
   differential tests across all three engines).

:class:`TelemetrySession` is the CLI-facing bundle: it installs a
recording tracer/registry for the duration of a command and exports
``--trace-out`` / ``--metrics-out`` on the way out.
"""

from __future__ import annotations

import time
from pathlib import Path
from types import TracebackType
from typing import TYPE_CHECKING

from repro.obs.export import (
    MetricsPublisher,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.flight import FlightRecorder, read_flight_jsonl
from repro.obs.manifest import (
    MANIFEST_NAME,
    RunManifest,
    build_manifest,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    metrics_enabled,
    set_metrics,
    use_metrics,
)
from repro.obs.progress import NullProgress, ProgressReporter, progress
from repro.obs.trace import (
    NULL_SPAN,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    read_trace_jsonl,
    render_span_summary,
    set_tracer,
    span,
    summarize_spans,
    tracing_enabled,
    use_tracer,
    write_trace_jsonl,
)
from repro.obs.windows import WindowedMetrics

if TYPE_CHECKING:
    from repro.obs.trace import _NullSpan, _Span

__all__ = [
    "MANIFEST_NAME",
    "RunManifest",
    "build_manifest",
    "read_manifest",
    "write_manifest",
    "MetricsRegistry",
    "NullMetrics",
    "get_metrics",
    "metrics_enabled",
    "set_metrics",
    "use_metrics",
    "NullProgress",
    "ProgressReporter",
    "progress",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "read_trace_jsonl",
    "render_span_summary",
    "set_tracer",
    "span",
    "summarize_spans",
    "tracing_enabled",
    "use_tracer",
    "write_trace_jsonl",
    "timed_stage",
    "telemetry_enabled",
    "TelemetrySession",
    "WindowedMetrics",
    "MetricsPublisher",
    "FlightRecorder",
    "read_flight_jsonl",
    "render_prometheus",
    "parse_prometheus",
]


def telemetry_enabled() -> bool:
    """Whether any telemetry sink (tracer or metrics) is recording."""
    return tracing_enabled() or metrics_enabled()


class _StageTimer:
    """A span plus a histogram observation of the same interval."""

    __slots__ = ("_name", "_span", "_metrics", "_t0")

    def __init__(
        self,
        name: str,
        span_cm: _Span | _NullSpan,
        metrics: MetricsRegistry | NullMetrics,
    ) -> None:
        self._name = name
        self._span = span_cm
        self._metrics = metrics

    def __enter__(self) -> _StageTimer:
        self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        elapsed = time.perf_counter() - self._t0
        self._span.__exit__(exc_type, exc, tb)
        self._metrics.histogram(self._name).observe(elapsed)
        return False


def timed_stage(name: str, **attrs: object) -> _StageTimer | _NullSpan:
    """Time one engine stage: a span *and* a histogram observation.

    With both telemetry sinks disabled this returns the shared no-op
    span — no clock reads, no allocation.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    if not tracer.enabled and not metrics.enabled:
        return NULL_SPAN
    return _StageTimer(name, tracer.span(name, **attrs), metrics)


class TelemetrySession:
    """Recording telemetry for the duration of one command.

    Installs a fresh :class:`Tracer` when ``trace_out`` is given and a
    fresh :class:`MetricsRegistry` when ``metrics_out`` is given, and on
    exit writes the trace JSONL / metrics JSON and restores whatever was
    active before.  With neither output set the session is a no-op and
    every instrumented path stays on the null implementations.
    """

    def __init__(
        self,
        trace_out: str | Path | None = None,
        metrics_out: str | Path | None = None,
    ) -> None:
        self.trace_out = Path(trace_out) if trace_out is not None else None
        self.metrics_out = Path(metrics_out) if metrics_out is not None else None
        self.tracer: Tracer | None = Tracer() if self.trace_out else None
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if self.metrics_out else None
        )
        self._prev_tracer: Tracer | NullTracer | None = None
        self._prev_metrics: MetricsRegistry | NullMetrics | None = None

    @property
    def active(self) -> bool:
        return self.tracer is not None or self.metrics is not None

    def __enter__(self) -> TelemetrySession:
        if self.tracer is not None:
            self._prev_tracer = set_tracer(self.tracer)
        if self.metrics is not None:
            self._prev_metrics = set_metrics(self.metrics)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if self.tracer is not None:
            set_tracer(self._prev_tracer)
            write_trace_jsonl(self.trace_out, self.tracer.records)
        if self.metrics is not None:
            set_metrics(self._prev_metrics)
            self.metrics.export_json(self.metrics_out)
        return False
