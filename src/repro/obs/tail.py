"""``repro-attrition obs tail``: a live terminal dashboard (stdlib only).

Follows the JSONL snapshot stream the metrics publisher appends
(``--metrics-stream-out`` on ``serve``/``soak``) and renders the latest
window snapshot as a text dashboard: rolling rates, per-window latency
quantiles, position gauges (lag, commit index, queue depth), SLO burn
and the per-shard table.  One frame per publish; in ``--follow`` mode
the screen is redrawn in place with ANSI clear until interrupted.

The reader is torn-line tolerant by design: the stream file is appended
with single flushed writes (:func:`repro.atomicio.append_jsonl_line`),
so the only corruption a crash can produce is a truncated *final* line
— that line is skipped, never fatal.  A corrupt line in the middle of
the file means the file is not a snapshot stream at all and raises
:class:`~repro.errors.SchemaError` (the CLI turns that into exit 2).

This module owns every wall-clock read and sleep of the dashboard
(rule DET002 confines time sources to ``repro.obs``); the CLI layer
just parses flags and maps errors to exit codes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO

from repro.errors import SchemaError
from repro.obs.windows import WINDOW_SNAPSHOT_SCHEMA

__all__ = ["read_snapshot_stream", "render_dashboard", "tail_stream"]

#: ANSI: clear screen + home — how follow mode redraws in place.
_CLEAR = "\x1b[2J\x1b[H"


def read_snapshot_stream(path: str | Path) -> list[dict[str, object]]:
    """All window snapshots in a JSONL stream file, oldest first.

    Tolerates a torn final line (in-progress append); raises
    :class:`~repro.errors.SchemaError` when the file is missing, holds
    corrupt interior lines, or contains no snapshot records at all.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SchemaError(f"cannot read metrics stream {path}: {exc}") from exc
    lines = text.splitlines()
    snapshots: list[dict[str, object]] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1 and not text.endswith("\n"):
                # A torn final line is an append in progress, not
                # corruption — the writer flushes whole lines.
                continue
            raise SchemaError(
                f"metrics stream {path} has a corrupt line {i + 1}: {exc}"
            ) from exc
        if isinstance(record, dict) and record.get("schema") == WINDOW_SNAPSHOT_SCHEMA:
            snapshots.append(record)
    if not snapshots:
        raise SchemaError(f"{path} holds no metrics window snapshots")
    return snapshots


def _fmt(value: object, width: int = 10) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e12:
            return f"{int(value):>{width}d}"
        return f"{value:>{width}.3f}"
    if isinstance(value, int):
        return f"{value:>{width}d}"
    return f"{value!s:>{width}}"


def render_dashboard(snapshot: dict[str, object], frame: int = 0) -> str:
    """One dashboard frame (plain text, fixed-ish 72-column layout)."""
    lines: list[str] = []
    span = snapshot.get("span_s", 0.0)
    wall = snapshot.get("wall_ts")
    stamp = (
        time.strftime("%H:%M:%S", time.localtime(float(wall)))
        if isinstance(wall, (int, float))
        else "--:--:--"
    )
    lines.append(
        f"repro live telemetry · frame {frame} · published {stamp} · "
        f"window {span if isinstance(span, (int, float)) else 0:.0f}s"
    )
    lines.append("=" * 72)

    gauges = snapshot.get("gauges")
    if isinstance(gauges, dict) and gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<28}{_fmt(gauges[name])}")

    rates = snapshot.get("rates")
    counters = snapshot.get("counters")
    if isinstance(rates, dict) and rates:
        lines.append("rates (per second, rolling)          total")
        totals = counters if isinstance(counters, dict) else {}
        for name in sorted(rates):
            total = totals.get(name, "")
            lines.append(
                f"  {name:<28}{_fmt(rates[name])}  {_fmt(total)}"
            )

    windows = snapshot.get("windows")
    if isinstance(windows, dict) and windows:
        lines.append(
            "latency (window)       count      p50        p95        p99"
        )
        for name in sorted(windows):
            summary = windows[name]
            if not isinstance(summary, dict):
                continue
            lines.append(
                f"  {name:<18}"
                f"{_fmt(summary.get('count', 0), 8)} "
                f"{_fmt(summary.get('p50', 0.0))} "
                f"{_fmt(summary.get('p95', 0.0))} "
                f"{_fmt(summary.get('p99', 0.0))}"
            )

    burn = snapshot.get("burn")
    if isinstance(burn, dict) and burn:
        worst = max(burn.values())
        state = "BURNING" if worst > 1.0 else "ok"
        parts = "  ".join(f"{k}={burn[k]:.2f}" for k in sorted(burn))
        lines.append(f"slo burn [{state}]  {parts}")

    context = snapshot.get("context")
    if isinstance(context, dict):
        shards = context.get("shards")
        if isinstance(shards, list) and shards:
            lines.append("shard       customers")
            for entry in shards:
                if isinstance(entry, dict):
                    lines.append(
                        f"  {entry.get('shard', '?')!s:<10}"
                        f"{_fmt(entry.get('customers', 0))}"
                    )

    lines.append("=" * 72)
    return "\n".join(lines) + "\n"


def tail_stream(
    path: str | Path,
    out: IO[str],
    follow: bool = False,
    interval_s: float = 1.0,
    max_frames: int | None = None,
) -> int:
    """Render the stream's latest snapshot; optionally keep following.

    Returns the number of frames rendered.  ``max_frames`` bounds
    follow mode for tests and CI; without it, follow runs until
    interrupted (KeyboardInterrupt is caught and treated as a clean
    exit).  The first read raising :class:`~repro.errors.SchemaError`
    propagates (the CLI maps it to exit 2); once at least one frame is
    up, a transiently unreadable file just keeps the previous frame.
    """
    frames = 0
    last_rendered: int = -1
    snapshots = read_snapshot_stream(path)  # raises on a bad first read
    try:
        while True:
            # With a frame budget (tests/CI) every cycle renders, so the
            # loop always terminates even when the writer has stopped;
            # unbounded follow only redraws on new data.
            if (
                len(snapshots) - 1 > last_rendered
                or frames == 0
                or max_frames is not None
            ):
                last_rendered = len(snapshots) - 1
                frame_text = render_dashboard(snapshots[-1], frame=frames)
                if follow:
                    out.write(_CLEAR)
                out.write(frame_text)
                out.flush()
                frames += 1
            if not follow or (max_frames is not None and frames >= max_frames):
                break
            time.sleep(interval_s)
            try:
                snapshots = read_snapshot_stream(path)
            except SchemaError:
                # The file is mid-rotation or briefly unreadable; the
                # previous frame stands until a good read.
                continue
    except KeyboardInterrupt:
        pass
    return frames
