"""Baskets: single timestamped receipts.

A basket corresponds to one receipt in the paper's dataset: a customer id,
a timestamp, the set of items bought and the monetary value of the receipt.
Item ids may be product ids or segment ids depending on the abstraction
level of the log holding the basket; the stability model is agnostic, it
only requires that the ids are consistent within a log.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import DataError

__all__ = ["Basket"]


@dataclass(frozen=True, slots=True)
class Basket:
    """One receipt: a customer's purchase at a point in time.

    Attributes
    ----------
    customer_id:
        Identifier of the purchasing customer.
    day:
        Integer day offset from the study start (see
        :class:`~repro.data.calendar.StudyCalendar`).
    items:
        Set of item ids bought in this receipt.  Quantities are not
        modelled (the stability model is set-based).
    monetary:
        Total monetary value of the receipt, used by the RFM baseline.
    """

    customer_id: int
    day: int
    items: frozenset[int]
    monetary: float = 0.0

    def __post_init__(self) -> None:
        if self.day < 0:
            raise DataError(f"basket day offset must be >= 0, got {self.day}")
        if self.monetary < 0:
            raise DataError(f"basket monetary value must be >= 0, got {self.monetary}")
        if not isinstance(self.items, frozenset):
            object.__setattr__(self, "items", frozenset(self.items))

    @classmethod
    def of(
        cls,
        customer_id: int,
        day: int,
        items: Iterable[int],
        monetary: float = 0.0,
    ) -> Basket:
        """Convenience constructor accepting any iterable of item ids."""
        return cls(
            customer_id=customer_id,
            day=day,
            items=frozenset(items),
            monetary=monetary,
        )

    @property
    def size(self) -> int:
        """Number of distinct items in the basket."""
        return len(self.items)

    def abstracted(self, mapping) -> Basket:
        """Return a copy with each item id mapped through ``mapping``.

        ``mapping`` is a callable ``item_id -> item_id`` (typically
        product id -> segment id).  Distinct products mapping to the same
        segment collapse into one item, matching the paper's abstraction.
        """
        return Basket(
            customer_id=self.customer_id,
            day=self.day,
            items=frozenset(mapping(item) for item in self.items),
            monetary=self.monetary,
        )
