"""Behavioural cohort construction for unlabeled transaction logs.

In the paper the retailer *provided* the ids of loyal customers and of
loyal customers that defected in the last 6 months.  Public retail
datasets come without those labels, so applying the pipeline to them
needs the labels derived from behaviour.  This module implements the
standard construction (after Buckinx & Van den Poel's "behaviourally
loyal" selection):

1. :func:`select_loyal` — customers who shopped steadily through an
   *observation period* (minimum trips per month, minimum active months):
   the behaviourally loyal base.
2. :func:`label_partial_defection` — among those, compare each customer's
   trip rate in the *outcome period* (e.g. the last 6 months) with their
   own observation-period rate; customers whose ratio falls below a
   drop threshold are labelled churners, the rest loyal.

The output is a regular :class:`~repro.data.cohorts.CohortLabels`, so the
whole evaluation harness runs unchanged on a label-free log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, DataError

__all__ = ["LoyaltyCriteria", "select_loyal", "label_partial_defection", "build_cohorts"]


@dataclass(frozen=True)
class LoyaltyCriteria:
    """Thresholds defining a behaviourally loyal customer.

    Attributes
    ----------
    min_trips_per_month:
        Minimum average shopping trips per observation month.
    min_active_months:
        Minimum number of distinct observation months with at least one
        trip.
    """

    min_trips_per_month: float = 1.0
    min_active_months: int = 9

    def __post_init__(self) -> None:
        if self.min_trips_per_month <= 0:
            raise ConfigError(
                f"min_trips_per_month must be positive, got {self.min_trips_per_month}"
            )
        if self.min_active_months <= 0:
            raise ConfigError(
                f"min_active_months must be positive, got {self.min_active_months}"
            )


def _monthly_trip_counts(
    log: TransactionLog, calendar: StudyCalendar, customer_id: int,
    first_month: int, last_month: int,
) -> dict[int, int]:
    """Trips per study month in the inclusive month range."""
    counts: dict[int, int] = {}
    for basket in log.history(customer_id):
        month = calendar.month_of_day(basket.day)
        if first_month <= month <= last_month:
            counts[month] = counts.get(month, 0) + 1
    return counts


def select_loyal(
    log: TransactionLog,
    calendar: StudyCalendar,
    observation_end_month: int,
    criteria: LoyaltyCriteria | None = None,
) -> list[int]:
    """Customers behaviourally loyal during months ``[0, observation_end_month)``.

    Raises
    ------
    ConfigError
        If the observation period is empty or exceeds the study.
    """
    criteria = criteria if criteria is not None else LoyaltyCriteria()
    if not 0 < observation_end_month <= calendar.n_months:
        raise ConfigError(
            f"observation_end_month must be in (0, {calendar.n_months}], "
            f"got {observation_end_month}"
        )
    loyal: list[int] = []
    n_months = observation_end_month
    for customer_id in log.customers():
        counts = _monthly_trip_counts(
            log, calendar, customer_id, 0, observation_end_month - 1
        )
        total_trips = sum(counts.values())
        if (
            len(counts) >= criteria.min_active_months
            and total_trips / n_months >= criteria.min_trips_per_month
        ):
            loyal.append(customer_id)
    return loyal


def label_partial_defection(
    log: TransactionLog,
    calendar: StudyCalendar,
    customers: list[int],
    outcome_start_month: int,
    drop_threshold: float = 0.5,
) -> tuple[frozenset[int], frozenset[int]]:
    """Split loyal customers into (still loyal, partially defected).

    A customer is a churner when their outcome-period trip rate falls
    below ``drop_threshold`` times their observation-period rate — the
    behavioural definition of *partial* defection (they still shop, just
    much less).

    Returns
    -------
    (loyal, churners)
        Two disjoint frozen sets covering ``customers``.
    """
    if not 0 < outcome_start_month < calendar.n_months:
        raise ConfigError(
            f"outcome_start_month must be in (0, {calendar.n_months}), "
            f"got {outcome_start_month}"
        )
    if not 0.0 < drop_threshold < 1.0:
        raise ConfigError(
            f"drop_threshold must be in (0, 1), got {drop_threshold}"
        )
    if not customers:
        raise DataError("no customers to label")
    observation_months = outcome_start_month
    outcome_months = calendar.n_months - outcome_start_month
    loyal: set[int] = set()
    churners: set[int] = set()
    for customer_id in customers:
        observation = _monthly_trip_counts(
            log, calendar, customer_id, 0, outcome_start_month - 1
        )
        outcome = _monthly_trip_counts(
            log, calendar, customer_id, outcome_start_month, calendar.n_months - 1
        )
        observation_rate = sum(observation.values()) / observation_months
        outcome_rate = sum(outcome.values()) / outcome_months
        if observation_rate == 0.0:
            # Never shopped in the observation period: cannot be said to
            # have defected from anything; treat as loyal-by-default.
            loyal.add(customer_id)
        elif outcome_rate < drop_threshold * observation_rate:
            churners.add(customer_id)
        else:
            loyal.add(customer_id)
    return frozenset(loyal), frozenset(churners)


def build_cohorts(
    log: TransactionLog,
    calendar: StudyCalendar,
    outcome_start_month: int,
    criteria: LoyaltyCriteria | None = None,
    drop_threshold: float = 0.5,
) -> CohortLabels:
    """The full label-free pipeline: select loyal, then label defection.

    Mirrors the retailer's process in the paper: the loyal base is
    defined on the observation period, and the churner cohort is the
    subset that (partially) defected in the outcome period starting at
    ``outcome_start_month``.
    """
    base = select_loyal(
        log, calendar, observation_end_month=outcome_start_month, criteria=criteria
    )
    if not base:
        raise DataError(
            "no behaviourally loyal customers found; relax the criteria"
        )
    loyal, churners = label_partial_defection(
        log,
        calendar,
        base,
        outcome_start_month=outcome_start_month,
        drop_threshold=drop_threshold,
    )
    return CohortLabels(
        loyal=loyal, churners=churners, onset_month=outcome_start_month
    )
