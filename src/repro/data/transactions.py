"""Transaction logs: per-customer chronological purchase histories.

A :class:`TransactionLog` is the in-memory form of the paper's database
``D_i = <(b_1, t_1), ..., (b_N, t_N)>`` for every customer ``i``.  It keeps
baskets grouped by customer and sorted by day, and offers the filtering and
abstraction operations the evaluation pipeline needs.
"""

from __future__ import annotations

import bisect
import itertools
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.data.basket import Basket
from repro.errors import DataError

__all__ = ["ColumnarLog", "TransactionLog"]


@dataclass(frozen=True)
class ColumnarLog:
    """Flat columnar view of a :class:`TransactionLog` (CSR by customer).

    One row per *(basket, item)* incidence, customer-major and day-sorted
    within each customer — the encoding the population-scale batch engine
    (:mod:`repro.core.batch`) consumes without touching Python objects
    again.

    Attributes
    ----------
    customer_ids:
        Distinct customer ids, ascending, shape ``(n_customers,)``.
    offsets:
        CSR offsets, shape ``(n_customers + 1,)``: customer ``i``'s rows
        are ``days[offsets[i]:offsets[i+1]]`` / ``items[...]``.
    days:
        Day offset of each incidence (non-decreasing per customer).
    items:
        Raw item id of each incidence.
    basket_offsets:
        CSR offsets over *baskets*, shape ``(n_customers + 1,)``:
        customer ``i``'s receipts are
        ``basket_days[basket_offsets[i]:basket_offsets[i+1]]``.
    basket_days:
        Day offset of each receipt (non-decreasing per customer, in
        history order — the order RFM-style features consume).
    basket_monetary:
        Monetary value of each receipt.
    """

    customer_ids: np.ndarray
    offsets: np.ndarray
    days: np.ndarray
    items: np.ndarray
    basket_offsets: np.ndarray
    basket_days: np.ndarray
    basket_monetary: np.ndarray

    @property
    def n_customers(self) -> int:
        return len(self.customer_ids)

    @property
    def n_rows(self) -> int:
        return len(self.days)

    @property
    def n_baskets(self) -> int:
        return len(self.basket_days)

    def customer_rows(self) -> np.ndarray:
        """Row index of the owning customer for every incidence."""
        return np.repeat(
            np.arange(self.n_customers, dtype=np.int64), np.diff(self.offsets)
        )


class TransactionLog:
    """Chronologically ordered purchase histories, grouped by customer.

    Baskets may be added in any order; each customer's history is kept
    sorted by day offset (stable for same-day baskets, in insertion
    order).

    Examples
    --------
    >>> log = TransactionLog()
    >>> log.add(Basket.of(customer_id=1, day=3, items=[10, 11]))
    >>> log.add(Basket.of(customer_id=1, day=0, items=[10]))
    >>> [b.day for b in log.history(1)]
    [0, 3]
    """

    def __init__(self, baskets: Iterable[Basket] = ()) -> None:
        self._histories: dict[int, list[Basket]] = {}
        self._n_baskets = 0
        for basket in baskets:
            self.add(basket)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, basket: Basket) -> None:
        """Insert a basket, keeping the customer's history day-sorted."""
        history = self._histories.setdefault(basket.customer_id, [])
        # bisect on the day key keeps insertion O(log n) search + O(n) shift;
        # histories are short (hundreds of trips) so this is fine.
        days = [b.day for b in history]
        index = bisect.bisect_right(days, basket.day)
        history.insert(index, basket)
        self._n_baskets += 1

    def extend(self, baskets: Iterable[Basket]) -> None:
        """Insert many baskets."""
        for basket in baskets:
            self.add(basket)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_baskets(self) -> int:
        """Total number of baskets across all customers."""
        return self._n_baskets

    @property
    def n_customers(self) -> int:
        """Number of distinct customers with at least one basket."""
        return len(self._histories)

    def customers(self) -> list[int]:
        """Sorted list of customer ids present in the log."""
        return sorted(self._histories)

    def history(self, customer_id: int) -> list[Basket]:
        """Chronological baskets of one customer.

        Raises
        ------
        DataError
            If the customer has no baskets in this log.
        """
        try:
            return list(self._histories[customer_id])
        except KeyError:
            raise DataError(f"unknown customer_id: {customer_id}") from None

    def __contains__(self, customer_id: object) -> bool:
        return customer_id in self._histories

    def __iter__(self) -> Iterator[Basket]:
        """Iterate all baskets, customer by customer, chronologically."""
        for customer_id in self.customers():
            yield from self._histories[customer_id]

    def __len__(self) -> int:
        return self._n_baskets

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def day_range(self) -> tuple[int, int]:
        """``(min_day, max_day)`` over all baskets.

        Raises
        ------
        DataError
            If the log is empty.
        """
        if not self._n_baskets:
            raise DataError("transaction log is empty")
        mins = (h[0].day for h in self._histories.values())
        maxs = (h[-1].day for h in self._histories.values())
        return min(mins), max(maxs)

    def item_universe(self) -> frozenset[int]:
        """All distinct item ids appearing anywhere in the log."""
        universe: set[int] = set()
        for history in self._histories.values():
            for basket in history:
                universe |= basket.items
        return frozenset(universe)

    def total_monetary(self) -> float:
        """Sum of monetary values over all baskets."""
        return sum(b.monetary for b in self)

    def to_columnar(self, customers: Iterable[int] | None = None) -> ColumnarLog:
        """Encode the log (or a customer subset) as flat columnar arrays.

        The single pass over basket objects happens here; everything
        downstream (windowing, significance, stability) can then run as
        numpy array operations.  See :class:`ColumnarLog`.

        Raises
        ------
        DataError
            If an explicitly requested customer has no baskets.
        """
        if customers is not None:
            selected = sorted(set(customers))
            missing = [c for c in selected if c not in self._histories]
            if missing:
                raise DataError(f"unknown customer_id: {missing[0]}")
        else:
            selected = self.customers()
        # Python touches each *basket* once; the per-item expansion happens
        # in numpy (repeat/fromiter), which is what keeps encoding cheap
        # relative to the per-customer engines.
        basket_days: list[int] = []
        basket_sizes: list[int] = []
        basket_monetary: list[float] = []
        item_sets: list[frozenset[int]] = []
        offsets = [0]
        basket_offsets = [0]
        n_rows = 0
        for customer_id in selected:
            for basket in self._histories[customer_id]:
                basket_days.append(basket.day)
                basket_sizes.append(len(basket.items))
                basket_monetary.append(basket.monetary)
                item_sets.append(basket.items)
                n_rows += len(basket.items)
            offsets.append(n_rows)
            basket_offsets.append(len(basket_days))
        sizes = np.asarray(basket_sizes, dtype=np.int64)
        days = np.asarray(basket_days, dtype=np.int64)
        return ColumnarLog(
            customer_ids=np.asarray(selected, dtype=np.int64),
            offsets=np.asarray(offsets, dtype=np.int64),
            days=np.repeat(days, sizes),
            items=np.fromiter(
                itertools.chain.from_iterable(item_sets), np.int64, count=n_rows
            ),
            basket_offsets=np.asarray(basket_offsets, dtype=np.int64),
            basket_days=days,
            basket_monetary=np.asarray(basket_monetary, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def filter_customers(self, customer_ids: Iterable[int]) -> TransactionLog:
        """New log restricted to the given customers (missing ids ignored)."""
        selected = TransactionLog()
        for customer_id in customer_ids:
            history = self._histories.get(customer_id)
            if history:
                selected._histories[customer_id] = list(history)
                selected._n_baskets += len(history)
        return selected

    def filter_days(self, begin: int, end: int) -> TransactionLog:
        """New log with baskets in the half-open day interval ``[begin, end)``."""
        if end < begin:
            raise DataError(f"invalid day interval: [{begin}, {end})")
        clipped = TransactionLog()
        for customer_id, history in self._histories.items():
            kept = [b for b in history if begin <= b.day < end]
            if kept:
                clipped._histories[customer_id] = kept
                clipped._n_baskets += len(kept)
        return clipped

    def abstracted(self, mapping: Callable[[int], int]) -> TransactionLog:
        """New log with every basket's items mapped through ``mapping``.

        Typically used with ``catalog.segment_of`` composition to lift a
        product-level log to the segment level before modelling.
        """
        lifted = TransactionLog()
        for customer_id, history in self._histories.items():
            lifted._histories[customer_id] = [b.abstracted(mapping) for b in history]
            lifted._n_baskets += len(history)
        return lifted

    def merged_with(self, other: TransactionLog) -> TransactionLog:
        """New log with the union of both logs' baskets."""
        merged = TransactionLog(self)
        merged.extend(other)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"TransactionLog(n_customers={self.n_customers}, "
            f"n_baskets={self.n_baskets})"
        )
