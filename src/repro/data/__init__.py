"""Transaction data substrate: baskets, logs, catalogs, taxonomy, cohorts.

This package plays the role of the retailer's database in the paper: it
stores timestamped receipts per customer, the product catalog with its
segment taxonomy, and the loyal/churner cohort labels the retailer
provided.
"""

from repro.data.basket import Basket
from repro.data.calendar import PAPER_STUDY_MONTHS, PAPER_STUDY_START, StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.items import Catalog, Product, Segment
from repro.data.population import PopulationFrame, range_segment_sums
from repro.data.loyalty import (
    LoyaltyCriteria,
    build_cohorts,
    label_partial_defection,
    select_loyal,
)
from repro.data.quality import QualityReport, profile_log, render_quality_report
from repro.data.streams import (
    PartitionedLogWriter,
    iter_log_csv,
    iter_partitioned_log,
    stream_to_monitor,
)
from repro.data.store import EventStore
from repro.data.taxonomy import Taxonomy, TaxonomyNode
from repro.data.transactions import ColumnarLog, TransactionLog
from repro.data.validation import DatasetBundle, validate_bundle

__all__ = [
    "Basket",
    "Catalog",
    "CohortLabels",
    "DatasetBundle",
    "EventStore",
    "LoyaltyCriteria",
    "PartitionedLogWriter",
    "QualityReport",
    "build_cohorts",
    "profile_log",
    "render_quality_report",
    "iter_log_csv",
    "iter_partitioned_log",
    "label_partial_defection",
    "select_loyal",
    "stream_to_monitor",
    "PAPER_STUDY_MONTHS",
    "PAPER_STUDY_START",
    "Product",
    "Segment",
    "StudyCalendar",
    "Taxonomy",
    "TaxonomyNode",
    "ColumnarLog",
    "PopulationFrame",
    "TransactionLog",
    "range_segment_sums",
    "validate_bundle",
]
