"""Consistency checks between logs, catalogs, calendars and cohorts.

These validators run at pipeline boundaries (after loading a dataset, or
after synthetic generation) and raise :class:`~repro.errors.DataError`
with an actionable message on the first inconsistency found.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.items import Catalog
from repro.data.transactions import TransactionLog
from repro.errors import DataError

__all__ = ["DatasetBundle", "validate_log_items", "validate_log_calendar", "validate_bundle"]


def validate_log_items(log: TransactionLog, catalog: Catalog, level: str = "segment") -> None:
    """Check every item id in the log exists in the catalog at ``level``.

    ``level`` is ``"segment"`` or ``"product"`` depending on the
    abstraction level of the log.
    """
    if level not in ("segment", "product"):
        raise DataError(f"unknown abstraction level: {level!r}")
    if level == "segment":
        known = {s.segment_id for s in catalog.segments()}
    else:
        known = {p.product_id for p in catalog.products()}
    unknown = log.item_universe() - known
    if unknown:
        raise DataError(
            f"log contains {len(unknown)} item ids unknown to the catalog at "
            f"level {level!r}, e.g. {sorted(unknown)[:5]}"
        )


def validate_log_calendar(log: TransactionLog, calendar: StudyCalendar) -> None:
    """Check every basket's day offset falls within the study period."""
    if log.n_baskets == 0:
        return
    lo, hi = log.day_range()
    if lo < 0 or hi >= calendar.n_days:
        raise DataError(
            f"log day range [{lo}, {hi}] exceeds study period of "
            f"{calendar.n_days} days"
        )


def validate_cohort_coverage(log: TransactionLog, cohorts: CohortLabels) -> None:
    """Check every labelled customer has at least one basket."""
    missing = [c for c in cohorts.all_customers() if c not in log]
    if missing:
        raise DataError(
            f"{len(missing)} labelled customers have no baskets, "
            f"e.g. {missing[:5]}"
        )


@dataclass(frozen=True)
class DatasetBundle:
    """A complete dataset: log (segment-level), catalog, calendar, cohorts.

    This is the unit the evaluation harness consumes; :func:`validate_bundle`
    is run on construction via :meth:`checked`.
    """

    log: TransactionLog
    catalog: Catalog
    calendar: StudyCalendar
    cohorts: CohortLabels

    @classmethod
    def checked(
        cls,
        log: TransactionLog,
        catalog: Catalog,
        calendar: StudyCalendar,
        cohorts: CohortLabels,
    ) -> DatasetBundle:
        """Construct after running all cross-validation checks."""
        bundle = cls(log=log, catalog=catalog, calendar=calendar, cohorts=cohorts)
        validate_bundle(bundle)
        return bundle

    def fingerprint(self) -> str:
        """Short content hash identifying this dataset.

        Covers the customer ids, each customer's basket count and day
        span, the cohort membership and onset, and the calendar length —
        enough that two bundles built from different generator seeds,
        sizes or cohort splits never share a fingerprint.  Used as a
        checkpoint-key component so a journal directory reused against a
        different dataset recomputes instead of silently aliasing.

        O(n_customers); the value is cached after the first call.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        h = hashlib.sha1()
        h.update(f"cal:{self.calendar.n_days};".encode())
        for customer_id in self.log.customers():
            history = self.log.history(customer_id)
            h.update(
                f"c{customer_id}:n{len(history)}"
                f":d{history[0].day}-{history[-1].day};".encode()
            )
        h.update(f"onset:{self.cohorts.onset_month};".encode())
        for name, group in (
            ("loyal", self.cohorts.loyal),
            ("churn", self.cohorts.churners),
        ):
            h.update(f"{name}:{','.join(map(str, sorted(group)))};".encode())
        digest = h.hexdigest()[:12]
        object.__setattr__(self, "_fingerprint", digest)
        return digest


def validate_bundle(bundle: DatasetBundle) -> None:
    """Run every cross-consistency check on a dataset bundle."""
    validate_log_items(bundle.log, bundle.catalog, level="segment")
    validate_log_calendar(bundle.log, bundle.calendar)
    validate_cohort_coverage(bundle.log, bundle.cohorts)
    if bundle.cohorts.onset_month >= bundle.calendar.n_months:
        raise DataError(
            f"defection onset month {bundle.cohorts.onset_month} is outside the "
            f"{bundle.calendar.n_months}-month study period"
        )
