"""The columnar data plane: :class:`PopulationFrame`.

One :class:`PopulationFrame` is the whole population's purchase history,
encoded **once** from a :class:`~repro.data.transactions.TransactionLog`
against a shared :class:`~repro.core.windowing.WindowGrid`, and then
passed by reference through every downstream layer:

* the stability engines (:mod:`repro.core.engines`) read the windowed
  ``(customer, item, window)`` presence triples;
* the RFM baselines (:mod:`repro.baselines.rfm`) read the basket-level
  day/monetary columns;
* the evaluation protocol (:mod:`repro.eval.protocol`) builds the frame
  once per dataset and hands it to both.

Two CSR levels index the presence triples (sorted by customer, then
item, then window): ``pair_offsets`` groups customers over the
``(customer, item)`` pair axis, and ``triple_offsets`` groups pairs over
the triple axis.  A third CSR level (``basket_offsets``) indexes the raw
receipts per customer, in history (day) order, **without** the grid
filter — recency/monetary features look at the full observed history up
to a decision point, including purchases before the grid starts.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.data.transactions import TransactionLog
from repro.errors import DataError
from repro.obs import timed_stage
from repro.obs.metrics import STAGE_CSR_BUILD

if TYPE_CHECKING:  # type-only: the data layer must not import repro.core
    # at runtime (repro.core.batch imports this module)
    from repro.core.windowing import WindowGrid
    from repro.data.slabs import SlabStore

__all__ = ["PopulationFrame", "range_segment_sums", "csr_from_triples"]


def range_segment_sums(
    values: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray:
    """Sum ``values[starts[i]:ends[i]]`` for each row range, empty → 0.

    All ranges must be disjoint and ascending (``starts <= ends`` and
    ``ends[i] <= starts[i+1]``), which CSR sub-ranges always satisfy.
    Each range is summed with the same ``np.add.reduceat`` kernel
    regardless of where it sits in ``values``, so the result is
    bit-identical to summing a contiguous copy of the range — the
    property the RFM differential tests pin.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    out = np.zeros(len(starts), dtype=np.float64)
    rows = np.flatnonzero(starts < ends)
    if not len(rows):
        return out
    # reduceat over interleaved [start, end) pairs: even slots hold the
    # range sums, odd slots hold the (discarded) gap sums.  A trailing
    # end == len(values) is not a valid reduceat index; dropping it makes
    # the final (even) slot run to the end of the array, which sums the
    # same range.
    pairs = np.empty(2 * len(rows), dtype=np.int64)
    pairs[0::2] = starts[rows]
    pairs[1::2] = ends[rows]
    if pairs[-1] == len(values):
        pairs = pairs[:-1]
    out[rows] = np.add.reduceat(values, pairs)[0::2]
    return out


def csr_from_triples(
    cust: np.ndarray,
    items: np.ndarray,
    window: np.ndarray,
    n_customers: int,
    n_windows: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Sort + dedupe ``(customer, item, window)`` presence triples.

    ``cust`` holds customer *rows* in ``[0, n_customers)``; the inputs
    may contain duplicates in any order.  Returns the two CSR levels of
    :class:`PopulationFrame` — ``(pair_offsets, pair_items,
    triple_offsets, triple_window)`` — exactly as :meth:`from_log`
    builds them, which is what lets the out-of-core slab builder
    (:mod:`repro.data.slabs`) produce bit-identical frames shard by
    shard.

    When the ids fit, each triple packs into one int64 so a single sort
    does the job; otherwise a 3-key lexsort takes over.  Both paths
    yield the same sorted unique triples.
    """
    if len(cust):
        item_span = int(items.max()) + 1 if items.min() >= 0 else 0
        span = n_customers * item_span * n_windows
        if item_span and span < 2**62:
            key = (cust * item_span + items) * n_windows + window
            if span <= max(1 << 22, 2 * len(key)) and span <= 1 << 25:
                # Dense key space: a presence bitmap + flatnonzero
                # yields the sorted unique keys in O(rows + span),
                # skipping the comparison sort inside np.unique.
                flags = np.zeros(span, dtype=bool)
                flags[key] = True
                key = np.flatnonzero(flags)
            else:
                key = np.unique(key)
            window = key % n_windows
            pair_key = key // n_windows
            cust, items = pair_key // item_span, pair_key % item_span
        else:
            order = np.lexsort((window, items, cust))
            cust, items, window = cust[order], items[order], window[order]
            keep = np.r_[
                True,
                (cust[1:] != cust[:-1])
                | (items[1:] != items[:-1])
                | (window[1:] != window[:-1]),
            ]
            cust, items, window = cust[keep], items[keep], window[keep]
        new_pair = np.r_[
            True, (cust[1:] != cust[:-1]) | (items[1:] != items[:-1])
        ]
        pair_starts = np.flatnonzero(new_pair)
    else:
        pair_starts = np.empty(0, dtype=np.int64)
    triple_offsets = np.r_[pair_starts, len(window)].astype(np.int64)
    pair_items = items[pair_starts]
    pair_cust = cust[pair_starts]
    pair_offsets = np.searchsorted(
        pair_cust, np.arange(n_customers + 1, dtype=np.int64)
    ).astype(np.int64)
    return pair_offsets, pair_items, triple_offsets, window


@dataclass(frozen=True)
class PopulationFrame:
    """All customers' history as flat columnar arrays over one grid.

    Attributes
    ----------
    grid:
        The shared window grid the presence triples are indexed on.
    customer_ids:
        Distinct customer ids, ascending, shape ``(C,)``.
    basket_offsets:
        Shape ``(C + 1,)``: customer ``i``'s receipts occupy rows
        ``basket_offsets[i]:basket_offsets[i+1]`` of the basket columns.
    basket_days:
        Day offset of each receipt (non-decreasing per customer), shape
        ``(B,)``.  Off-grid receipts are retained — feature extractors
        that look back past the grid start need them.
    basket_monetary:
        Monetary value of each receipt, shape ``(B,)``.
    pair_offsets:
        Shape ``(C + 1,)``: customer ``i`` owns pairs
        ``pair_offsets[i]:pair_offsets[i+1]``.
    pair_items:
        Shape ``(P,)``: raw item id of each ``(customer, item)`` pair.
    triple_offsets:
        Shape ``(P + 1,)``: pair ``j`` is present in windows
        ``triple_window[triple_offsets[j]:triple_offsets[j+1]]``
        (strictly increasing within a pair).
    triple_window:
        Shape ``(T,)``: window index of each presence triple.
    item_vocab:
        Sorted distinct item ids across the population.
    log:
        The source transaction log, kept by reference so flexible
        (object-level) engines and the explanation layer can reach the
        raw baskets without a second argument.  Dropped by :meth:`shard`
        so worker-process payloads stay columnar.
    store_path:
        Directory of the slab store this frame is memory-mapped from,
        or ``None`` for in-RAM frames.  Sharded fits use it to hand
        workers a slab reference (path + row range) instead of a
        pickled frame.
    """

    grid: WindowGrid
    customer_ids: np.ndarray
    basket_offsets: np.ndarray
    basket_days: np.ndarray
    basket_monetary: np.ndarray
    pair_offsets: np.ndarray
    pair_items: np.ndarray
    triple_offsets: np.ndarray
    triple_window: np.ndarray
    item_vocab: np.ndarray
    log: TransactionLog | None = field(default=None, repr=False, compare=False)
    store_path: str | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_log(
        cls,
        log: TransactionLog,
        grid: WindowGrid,
        customers: Iterable[int] | None = None,
    ) -> PopulationFrame:
        """Encode a log (or a customer subset) in one columnar pass.

        Baskets outside the grid are dropped from the presence triples
        (same rule as :func:`~repro.core.windowing.windowed_history`)
        but kept in the basket columns; item sets are deduplicated per
        ``(customer, window)``.
        """
        with timed_stage(STAGE_CSR_BUILD, windows=grid.n_windows):
            columnar = log.to_columnar(customers)
            boundaries = np.asarray(grid.boundaries, dtype=np.int64)
            n_windows = grid.n_windows
            window = np.searchsorted(boundaries, columnar.days, side="right") - 1
            valid = (columnar.days >= boundaries[0]) & (columnar.days < boundaries[-1])
            cust = columnar.customer_rows()[valid]
            window = window[valid]
            items = columnar.items[valid]
            pair_offsets, pair_items, triple_offsets, triple_window = (
                csr_from_triples(
                    cust, items, window, columnar.n_customers, n_windows
                )
            )
        return cls(
            grid=grid,
            customer_ids=columnar.customer_ids,
            basket_offsets=columnar.basket_offsets,
            basket_days=columnar.basket_days,
            basket_monetary=columnar.basket_monetary,
            pair_offsets=pair_offsets,
            pair_items=pair_items,
            triple_offsets=triple_offsets,
            triple_window=triple_window,
            item_vocab=np.unique(pair_items),
            log=log,
        )

    @classmethod
    def from_slabs(cls, store: SlabStore | str | Path) -> PopulationFrame:
        """Memory-mapped construction from an on-disk slab store.

        Every CSR level is an ``np.memmap`` view over the store's column
        files: nothing is materialised in RAM until a kernel actually
        touches the pages, and :meth:`shard` slices stay zero-copy views
        of the mapping.  The resulting frame carries no source log
        (engines reconstruct per-window histories from the columns) and
        remembers its ``store_path`` so sharded fits can hand workers a
        slab *reference* instead of a pickled frame.

        Raises
        ------
        SlabStoreError
            If the store is missing, torn, stale or version-incompatible
            (see :func:`repro.data.slabs.open_slab_store`).
        """
        from repro.data.slabs import SlabStore, open_slab_store

        if not isinstance(store, SlabStore):
            store = open_slab_store(store)
        return cls(
            grid=store.grid(),
            customer_ids=store.column("customer_ids"),
            basket_offsets=store.column("basket_offsets"),
            basket_days=store.column("basket_days"),
            basket_monetary=store.column("basket_monetary"),
            pair_offsets=store.column("pair_offsets"),
            pair_items=store.column("pair_items"),
            triple_offsets=store.column("triple_offsets"),
            triple_window=store.column("triple_window"),
            item_vocab=store.column("item_vocab"),
            store_path=str(store.directory),
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_customers(self) -> int:
        return len(self.customer_ids)

    @property
    def n_pairs(self) -> int:
        return len(self.pair_items)

    @property
    def n_windows(self) -> int:
        return self.grid.n_windows

    @property
    def n_baskets(self) -> int:
        return len(self.basket_days)

    # ------------------------------------------------------------------
    # Row addressing
    # ------------------------------------------------------------------
    def row_of(self, customer_id: int) -> int:
        """Row index of one customer.

        Raises
        ------
        DataError
            If the customer is not in the frame.
        """
        row = int(np.searchsorted(self.customer_ids, customer_id))
        if row >= len(self.customer_ids) or self.customer_ids[row] != customer_id:
            raise DataError(f"customer {customer_id} not in the population frame")
        return row

    def rows_of(self, customers: Sequence[int]) -> np.ndarray:
        """Row indices of many customers, in the given order.

        Raises
        ------
        DataError
            If any requested customer is not in the frame.
        """
        ids = np.asarray(list(customers), dtype=np.int64)
        rows = np.searchsorted(self.customer_ids, ids)
        rows = np.minimum(rows, len(self.customer_ids) - 1)
        bad = np.flatnonzero(self.customer_ids[rows] != ids)
        if len(bad):
            raise DataError(
                f"customer {int(ids[bad[0]])} not in the population frame"
            )
        return rows

    def __contains__(self, customer_id: object) -> bool:
        if not isinstance(customer_id, (int, np.integer)):
            return False
        row = int(np.searchsorted(self.customer_ids, customer_id))
        return (
            row < len(self.customer_ids) and self.customer_ids[row] == customer_id
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def pair_rows(self) -> np.ndarray:
        """Pair index owning each presence triple."""
        return np.repeat(
            np.arange(self.n_pairs, dtype=np.int64), np.diff(self.triple_offsets)
        )

    def window_items(self, customer_row: int) -> list[frozenset[int]]:
        """Reconstruct one customer's per-window item sets ``u_k``."""
        sets: list[set[int]] = [set() for _ in range(self.n_windows)]
        lo, hi = self.pair_offsets[customer_row], self.pair_offsets[customer_row + 1]
        for pair in range(lo, hi):
            item = int(self.pair_items[pair])
            for t in range(self.triple_offsets[pair], self.triple_offsets[pair + 1]):
                sets[self.triple_window[t]].add(item)
        return [frozenset(s) for s in sets]

    def shard(self, lo: int, hi: int) -> PopulationFrame:
        """The sub-population of customer rows ``[lo, hi)`` (rebased CSR).

        The source-log reference is dropped: shards exist to cross
        process boundaries and must stay pure columnar data.  On a
        memory-mapped frame every slice below stays a zero-copy view of
        the mapping (minus the small rebased offset arrays).

        Raises
        ------
        DataError
            If the range is not within ``0 <= lo <= hi <= n_customers``;
            the message names the offending range.
        """
        if not 0 <= lo <= hi <= self.n_customers:
            raise DataError(
                f"shard range [{lo}, {hi}) out of bounds for a frame of "
                f"{self.n_customers} customers"
            )
        pair_lo, pair_hi = self.pair_offsets[lo], self.pair_offsets[hi]
        triple_lo = self.triple_offsets[pair_lo]
        triple_hi = self.triple_offsets[pair_hi]
        basket_lo, basket_hi = self.basket_offsets[lo], self.basket_offsets[hi]
        return PopulationFrame(
            grid=self.grid,
            customer_ids=self.customer_ids[lo:hi],
            basket_offsets=self.basket_offsets[lo : hi + 1] - basket_lo,
            basket_days=self.basket_days[basket_lo:basket_hi],
            basket_monetary=self.basket_monetary[basket_lo:basket_hi],
            pair_offsets=self.pair_offsets[lo : hi + 1] - pair_lo,
            pair_items=self.pair_items[pair_lo:pair_hi],
            triple_offsets=self.triple_offsets[pair_lo : pair_hi + 1] - triple_lo,
            triple_window=self.triple_window[triple_lo:triple_hi],
            item_vocab=self.item_vocab,
        )

    # ------------------------------------------------------------------
    # Basket-column kernels (shared by RFM-style feature extractors)
    # ------------------------------------------------------------------
    def baskets_before(self, day: int) -> np.ndarray:
        """Per-customer count of receipts strictly before ``day``.

        Receipt days are sorted within each customer, so the counts also
        locate the end of each customer's observed prefix:
        ``basket_offsets[:-1] + counts``.
        """
        mask = np.r_[0, np.cumsum(self.basket_days < day)]
        return (mask[self.basket_offsets[1:]] - mask[self.basket_offsets[:-1]]).astype(
            np.int64
        )
