"""Serialisation of transaction logs, catalogs and cohorts.

Two formats are supported:

* **CSV** for transaction logs — one row per receipt with a
  space-separated item list, the common interchange shape for retail
  basket datasets (and the shape public datasets like Instacart or
  dunnhumby reduce to).
* **JSONL** for catalogs and cohort labels — one JSON object per line.

All writers produce deterministic output (sorted ids) so files can be
diffed across runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.atomicio import atomic_write_json
from repro.data.basket import Basket
from repro.data.cohorts import CohortLabels
from repro.data.items import Catalog
from repro.data.quality import QuarantinedRow, QuarantineReport
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, DataError, SchemaError

__all__ = [
    "write_log_csv",
    "read_log_csv",
    "write_catalog_jsonl",
    "read_catalog_jsonl",
    "write_cohorts_json",
    "read_cohorts_json",
]

_LOG_HEADER = ["customer_id", "day", "items", "monetary"]


# ----------------------------------------------------------------------
# Transaction logs (CSV)
# ----------------------------------------------------------------------
def write_log_csv(log: TransactionLog, path: str | Path) -> None:
    """Write a transaction log as CSV, one row per receipt.

    Monetary values are written with full ``repr`` precision so a
    write/read round trip reproduces every float bit-exactly (a fixed
    ``%.2f`` format silently rounded sub-cent values).
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_LOG_HEADER)
        for basket in log:
            writer.writerow(
                [
                    basket.customer_id,
                    basket.day,
                    " ".join(str(i) for i in sorted(basket.items)),
                    repr(basket.monetary),
                ]
            )


def _parse_log_row(row: list[str]) -> Basket:
    """One CSV row as a basket; malformed rows raise ``ValueError`` or
    ``DataError`` with the field-level reason."""
    if len(row) != len(_LOG_HEADER):
        raise ValueError(f"expected {len(_LOG_HEADER)} fields, got {len(row)}")
    items = [int(token) for token in row[2].split()] if row[2] else []
    return Basket.of(
        customer_id=int(row[0]),
        day=int(row[1]),
        items=items,
        monetary=float(row[3]),
    )


def read_log_csv(
    path: str | Path,
    on_error: str = "raise",
    max_errors: int = 100,
) -> TransactionLog | tuple[TransactionLog, QuarantineReport]:
    """Read a transaction log written by :func:`write_log_csv`.

    Parameters
    ----------
    path:
        The CSV file to read.
    on_error:
        ``"raise"`` (default) aborts on the first malformed row with a
        :class:`~repro.errors.SchemaError` — the strict behaviour
        suitable for files this package wrote itself.  ``"quarantine"``
        sets malformed rows aside instead and returns
        ``(log, QuarantineReport)``: the lenient mode for real retailer
        exports, where one torn row should not discard an ingest.  A
        mismatched *header* always raises — that is a wrong-file signal,
        not a bad row.
    max_errors:
        Quarantine capacity: exceeding it raises a
        :class:`~repro.errors.SchemaError` (a file that is mostly
        garbage should fail loudly, not be silently filtered).

    Raises
    ------
    SchemaError
        If the header does not match; under ``on_error="raise"``, if any
        row is malformed; under ``on_error="quarantine"``, if more than
        ``max_errors`` rows are malformed.
    """
    if on_error not in ("raise", "quarantine"):
        raise ConfigError(
            f"on_error must be 'raise' or 'quarantine', got {on_error!r}"
        )
    if max_errors < 0:
        raise ConfigError(f"max_errors must be >= 0, got {max_errors}")
    path = Path(path)
    log = TransactionLog()
    quarantined: list[QuarantinedRow] = []
    n_rows = 0
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _LOG_HEADER:
            raise SchemaError(f"unexpected CSV header in {path}: {header}")
        for line_no, row in enumerate(reader, start=2):
            n_rows += 1
            try:
                basket = _parse_log_row(row)
            except (ValueError, DataError) as exc:
                if on_error == "raise":
                    raise SchemaError(f"{path}:{line_no}: {exc}") from exc
                if len(quarantined) >= max_errors:
                    raise SchemaError(
                        f"{path}: more than {max_errors} malformed rows "
                        f"(first overflow at line {line_no}: {exc}); "
                        f"refusing to quarantine further"
                    ) from exc
                quarantined.append(QuarantinedRow(line=line_no, reason=str(exc)))
                continue
            log.add(basket)
    if on_error == "raise":
        return log
    report = QuarantineReport(
        path=str(path), rows=tuple(quarantined), n_rows_total=n_rows
    )
    return log, report


# ----------------------------------------------------------------------
# Catalogs (JSONL)
# ----------------------------------------------------------------------
def write_catalog_jsonl(catalog: Catalog, path: str | Path) -> None:
    """Write a catalog as JSONL: segment records then product records."""
    path = Path(path)
    with path.open("w") as handle:
        for segment in catalog.segments():
            handle.write(
                json.dumps(
                    {
                        "kind": "segment",
                        "segment_id": segment.segment_id,
                        "name": segment.name,
                        "department": segment.department,
                    }
                )
                + "\n"
            )
        for product in catalog.products():
            handle.write(
                json.dumps(
                    {
                        "kind": "product",
                        "product_id": product.product_id,
                        "name": product.name,
                        "segment_id": product.segment_id,
                        "unit_price": product.unit_price,
                    }
                )
                + "\n"
            )


def read_catalog_jsonl(path: str | Path) -> Catalog:
    """Read a catalog written by :func:`write_catalog_jsonl`.

    Ids are re-assigned densely in file order; files produced by the
    writer round-trip exactly because the writer emits records in id
    order.
    """
    path = Path(path)
    catalog = Catalog()
    segment_remap: dict[int, int] = {}
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{line_no}: invalid JSON") from exc
            kind = record.get("kind")
            if kind == "segment":
                segment = catalog.add_segment(
                    record["name"], department=record.get("department", "Unknown")
                )
                segment_remap[int(record["segment_id"])] = segment.segment_id
            elif kind == "product":
                original = int(record["segment_id"])
                if original not in segment_remap:
                    raise SchemaError(
                        f"{path}:{line_no}: product references unknown segment {original}"
                    )
                catalog.add_product(
                    record["name"],
                    segment_remap[original],
                    unit_price=float(record.get("unit_price", 1.0)),
                )
            else:
                raise SchemaError(f"{path}:{line_no}: unknown record kind {kind!r}")
    return catalog


# ----------------------------------------------------------------------
# Cohorts (JSON)
# ----------------------------------------------------------------------
def write_cohorts_json(cohorts: CohortLabels, path: str | Path) -> None:
    """Write cohort labels as a single JSON document."""
    path = Path(path)
    payload = {
        "loyal": sorted(cohorts.loyal),
        "churners": sorted(cohorts.churners),
        "onset_month": cohorts.onset_month,
        "churner_onsets": {str(k): v for k, v in sorted(cohorts.churner_onsets.items())},
    }
    atomic_write_json(path, payload, indent=2, sort_keys=False)


def read_cohorts_json(path: str | Path) -> CohortLabels:
    """Read cohort labels written by :func:`write_cohorts_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: invalid JSON") from exc
    for key in ("loyal", "churners", "onset_month"):
        if key not in payload:
            raise SchemaError(f"{path}: missing key {key!r}")
    return CohortLabels(
        loyal=frozenset(int(c) for c in payload["loyal"]),
        churners=frozenset(int(c) for c in payload["churners"]),
        onset_month=int(payload["onset_month"]),
        churner_onsets={
            int(k): int(v) for k, v in payload.get("churner_onsets", {}).items()
        },
    )
