"""Serialisation of transaction logs, catalogs and cohorts.

Two formats are supported:

* **CSV** for transaction logs — one row per receipt with a
  space-separated item list, the common interchange shape for retail
  basket datasets (and the shape public datasets like Instacart or
  dunnhumby reduce to).
* **JSONL** for catalogs and cohort labels — one JSON object per line.

All writers produce deterministic output (sorted ids) so files can be
diffed across runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.data.basket import Basket
from repro.data.cohorts import CohortLabels
from repro.data.items import Catalog
from repro.data.transactions import TransactionLog
from repro.errors import SchemaError

__all__ = [
    "write_log_csv",
    "read_log_csv",
    "write_catalog_jsonl",
    "read_catalog_jsonl",
    "write_cohorts_json",
    "read_cohorts_json",
]

_LOG_HEADER = ["customer_id", "day", "items", "monetary"]


# ----------------------------------------------------------------------
# Transaction logs (CSV)
# ----------------------------------------------------------------------
def write_log_csv(log: TransactionLog, path: str | Path) -> None:
    """Write a transaction log as CSV, one row per receipt."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_LOG_HEADER)
        for basket in log:
            writer.writerow(
                [
                    basket.customer_id,
                    basket.day,
                    " ".join(str(i) for i in sorted(basket.items)),
                    f"{basket.monetary:.2f}",
                ]
            )


def read_log_csv(path: str | Path) -> TransactionLog:
    """Read a transaction log written by :func:`write_log_csv`.

    Raises
    ------
    SchemaError
        If the header or any row does not match the expected schema.
    """
    path = Path(path)
    log = TransactionLog()
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _LOG_HEADER:
            raise SchemaError(f"unexpected CSV header in {path}: {header}")
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(_LOG_HEADER):
                raise SchemaError(f"{path}:{line_no}: expected {len(_LOG_HEADER)} fields")
            try:
                items = [int(token) for token in row[2].split()] if row[2] else []
                basket = Basket.of(
                    customer_id=int(row[0]),
                    day=int(row[1]),
                    items=items,
                    monetary=float(row[3]),
                )
            except ValueError as exc:
                raise SchemaError(f"{path}:{line_no}: {exc}") from exc
            log.add(basket)
    return log


# ----------------------------------------------------------------------
# Catalogs (JSONL)
# ----------------------------------------------------------------------
def write_catalog_jsonl(catalog: Catalog, path: str | Path) -> None:
    """Write a catalog as JSONL: segment records then product records."""
    path = Path(path)
    with path.open("w") as handle:
        for segment in catalog.segments():
            handle.write(
                json.dumps(
                    {
                        "kind": "segment",
                        "segment_id": segment.segment_id,
                        "name": segment.name,
                        "department": segment.department,
                    }
                )
                + "\n"
            )
        for product in catalog.products():
            handle.write(
                json.dumps(
                    {
                        "kind": "product",
                        "product_id": product.product_id,
                        "name": product.name,
                        "segment_id": product.segment_id,
                        "unit_price": product.unit_price,
                    }
                )
                + "\n"
            )


def read_catalog_jsonl(path: str | Path) -> Catalog:
    """Read a catalog written by :func:`write_catalog_jsonl`.

    Ids are re-assigned densely in file order; files produced by the
    writer round-trip exactly because the writer emits records in id
    order.
    """
    path = Path(path)
    catalog = Catalog()
    segment_remap: dict[int, int] = {}
    with path.open() as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{line_no}: invalid JSON") from exc
            kind = record.get("kind")
            if kind == "segment":
                segment = catalog.add_segment(
                    record["name"], department=record.get("department", "Unknown")
                )
                segment_remap[int(record["segment_id"])] = segment.segment_id
            elif kind == "product":
                original = int(record["segment_id"])
                if original not in segment_remap:
                    raise SchemaError(
                        f"{path}:{line_no}: product references unknown segment {original}"
                    )
                catalog.add_product(
                    record["name"],
                    segment_remap[original],
                    unit_price=float(record.get("unit_price", 1.0)),
                )
            else:
                raise SchemaError(f"{path}:{line_no}: unknown record kind {kind!r}")
    return catalog


# ----------------------------------------------------------------------
# Cohorts (JSON)
# ----------------------------------------------------------------------
def write_cohorts_json(cohorts: CohortLabels, path: str | Path) -> None:
    """Write cohort labels as a single JSON document."""
    path = Path(path)
    payload = {
        "loyal": sorted(cohorts.loyal),
        "churners": sorted(cohorts.churners),
        "onset_month": cohorts.onset_month,
        "churner_onsets": {str(k): v for k, v in sorted(cohorts.churner_onsets.items())},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def read_cohorts_json(path: str | Path) -> CohortLabels:
    """Read cohort labels written by :func:`write_cohorts_json`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: invalid JSON") from exc
    for key in ("loyal", "churners", "onset_month"):
        if key not in payload:
            raise SchemaError(f"{path}: missing key {key!r}")
    return CohortLabels(
        loyal=frozenset(int(c) for c in payload["loyal"]),
        churners=frozenset(int(c) for c in payload["churners"]),
        onset_month=int(payload["onset_month"]),
        churner_onsets={
            int(k): int(v) for k, v in payload.get("churner_onsets", {}).items()
        },
    )
