"""Out-of-core population slabs: bounded-memory build, mmap-backed read.

A *slab store* is one directory holding a :class:`PopulationFrame`'s
columns as raw little-endian binary files plus a versioned
``manifest.json``, keyed by the owning dataset's
:meth:`~repro.data.validation.DatasetBundle.fingerprint`.  It exists so
populations far larger than RAM can be encoded once and then memory-
mapped (:meth:`PopulationFrame.from_slabs`) — kernels touch only the
pages they read, shards stay zero-copy views, and sharded fits hand
workers a *reference* (store path + row range) instead of a pickled
frame.

Build contract (bounded memory).  :func:`build_slab_store` consumes a
stream of :class:`SlabChunk` batches and never materialises more than
one chunk + one hash bucket + one customer shard at a time:

1. **spill** — each chunk's rows are appended to ``n_buckets`` hash
   buckets on disk (``customer_id % n_buckets``), windows resolved
   against the grid at ingest;
2. **scatter** — each bucket is re-read once and split into per-shard
   spill files (shards are contiguous ranges of the sorted customer
   ids), preserving stream order per customer;
3. **assemble** — each shard is sorted, deduplicated and CSR-encoded
   with the exact kernels :meth:`PopulationFrame.from_log` uses
   (:func:`~repro.data.population.csr_from_triples`), then appended to
   the global column files with rebased offsets.

Durability.  Column files stream through
:class:`repro.atomicio.AtomicBinaryWriter` and the manifest is written
*last* via :func:`~repro.atomicio.atomic_write_json`, so a store is
valid iff its manifest is present and every column file has exactly the
manifested byte size — anything else raises
:class:`~repro.errors.SlabStoreError` instead of being silently mapped.
Spill files live in a build-private subdirectory and are removed on
exit either way.
"""

from __future__ import annotations

import json
import os
import shutil
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

import numpy as np

from repro.atomicio import AtomicBinaryWriter, atomic_write_json
from repro.data.basket import Basket
from repro.data.population import PopulationFrame, csr_from_triples
from repro.errors import SlabStoreError
from repro.obs import span
from repro.obs.metrics import (
    SLAB_STORE_HITS,
    SLAB_STORE_MISSES,
    SPAN_SLAB_BUILD,
    SPAN_SLAB_OPEN,
    get_metrics,
)

if TYPE_CHECKING:  # type-only: repro.core imports the data layer at runtime
    from repro.core.windowing import WindowGrid

__all__ = [
    "SLAB_STORE_SCHEMA",
    "SLAB_STORE_VERSION",
    "SlabChunk",
    "SlabStore",
    "build_slab_store",
    "chunks_from_baskets",
    "ensure_slab_store",
    "open_slab_store",
]

#: Manifest schema marker + format version.  Bump the version whenever
#: the column layout changes; stores from any other version refuse to open.
SLAB_STORE_SCHEMA = "repro-slab-store"
SLAB_STORE_VERSION = 1

_MANIFEST_NAME = "manifest.json"

#: Column name -> numpy dtype string, in canonical manifest order.
_COLUMN_DTYPES: dict[str, str] = {
    "customer_ids": "<i8",
    "basket_offsets": "<i8",
    "basket_days": "<i8",
    "basket_monetary": "<f8",
    "pair_offsets": "<i8",
    "pair_items": "<i8",
    "triple_offsets": "<i8",
    "triple_window": "<i8",
    "item_vocab": "<i8",
}

#: CSR offset columns: carry one leading 0, rebased on append.
_OFFSET_COLUMNS = ("basket_offsets", "pair_offsets", "triple_offsets")

#: Structured spill-row layouts for the two row kinds.
_BASKET_DTYPE = np.dtype(
    [("customer", "<i8"), ("day", "<i8"), ("monetary", "<f8")]
)
_ITEM_DTYPE = np.dtype([("customer", "<i8"), ("window", "<i8"), ("item", "<i8")])


@dataclass(frozen=True)
class SlabChunk:
    """One bounded batch of raw purchase rows, columnar.

    The basket columns hold one row per receipt (``customer_id, day,
    monetary``); the item columns hold one row per *(receipt, item)*
    incidence (``customer_id, day, item_id``).  Rows may arrive in any
    order across chunks, but one customer's same-day receipts must keep
    their history order within the stream — the builder's stable sort
    preserves it, matching :meth:`TransactionLog.to_columnar`.
    """

    basket_customer: np.ndarray
    basket_day: np.ndarray
    basket_monetary: np.ndarray
    item_customer: np.ndarray
    item_day: np.ndarray
    item_id: np.ndarray

    def __post_init__(self) -> None:
        if not (
            len(self.basket_customer)
            == len(self.basket_day)
            == len(self.basket_monetary)
        ):
            raise SlabStoreError(
                "slab chunk basket columns disagree on length: "
                f"{len(self.basket_customer)}/{len(self.basket_day)}/"
                f"{len(self.basket_monetary)}"
            )
        if not (
            len(self.item_customer) == len(self.item_day) == len(self.item_id)
        ):
            raise SlabStoreError(
                "slab chunk item columns disagree on length: "
                f"{len(self.item_customer)}/{len(self.item_day)}/"
                f"{len(self.item_id)}"
            )


def chunks_from_baskets(
    baskets: Iterable[Basket], *, chunk_baskets: int = 8192
) -> Iterator[SlabChunk]:
    """Adapt a basket stream (e.g. a :class:`TransactionLog`) to chunks.

    Yields one :class:`SlabChunk` per ``chunk_baskets`` receipts, so the
    builder's working set stays bounded regardless of stream length.
    """
    b_cust: list[int] = []
    b_day: list[int] = []
    b_mon: list[float] = []
    i_cust: list[int] = []
    i_day: list[int] = []
    i_item: list[int] = []

    def flush() -> SlabChunk:
        chunk = SlabChunk(
            basket_customer=np.asarray(b_cust, dtype=np.int64),
            basket_day=np.asarray(b_day, dtype=np.int64),
            basket_monetary=np.asarray(b_mon, dtype=np.float64),
            item_customer=np.asarray(i_cust, dtype=np.int64),
            item_day=np.asarray(i_day, dtype=np.int64),
            item_id=np.asarray(i_item, dtype=np.int64),
        )
        for column in (b_cust, b_day, b_mon, i_cust, i_day, i_item):
            column.clear()
        return chunk

    for basket in baskets:
        b_cust.append(basket.customer_id)
        b_day.append(basket.day)
        b_mon.append(basket.monetary)
        for item in basket.items:
            i_cust.append(basket.customer_id)
            i_day.append(basket.day)
            i_item.append(item)
        if len(b_cust) >= chunk_baskets:
            yield flush()
    if b_cust or i_cust:
        yield flush()


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
class _SpillFiles:
    """Append-only spill files inside the build-private directory.

    These are *transient* intermediates — a crash leaves them inside
    ``.build-<pid>`` where the next build ignores them; only the final
    columns + manifest carry the durability contract.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, IO[bytes]] = {}

    def append(self, name: str, rows: np.ndarray) -> None:
        handle = self._handles.get(name)
        if handle is None:
            path = self.directory / name
            handle = self._handles[name] = open(path, "ab")  # lint: allow[IO001] transient spill file, rebuilt from scratch on any resume
        handle.write(rows.tobytes())

    def read(self, name: str, dtype: np.dtype) -> np.ndarray:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()
        path = self.directory / name
        if not path.exists():
            return np.empty(0, dtype=dtype)
        return np.fromfile(path, dtype=dtype)

    def remove(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()
        (self.directory / name).unlink(missing_ok=True)

    def close(self) -> None:
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        shutil.rmtree(self.directory, ignore_errors=True)


def _shard_bounds_for(n_customers: int, customers_per_shard: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` row ranges of at most ``customers_per_shard``."""
    if customers_per_shard < 1:
        raise SlabStoreError(
            f"customers_per_shard must be >= 1, got {customers_per_shard}"
        )
    return [
        (lo, min(lo + customers_per_shard, n_customers))
        for lo in range(0, n_customers, customers_per_shard)
    ]


def build_slab_store(
    chunks: Iterable[SlabChunk],
    grid: WindowGrid,
    directory: str | Path,
    *,
    fingerprint: str,
    customers_per_shard: int = 8192,
    n_buckets: int = 64,
) -> SlabStore:
    """Stream a population into an on-disk slab store in bounded memory.

    ``fingerprint`` keys the store to its source dataset (see
    :func:`ensure_slab_store`); ``customers_per_shard`` sets both the
    assembly working set and the shard granularity recorded in the
    manifest (which out-of-core fits iterate over); ``n_buckets`` bounds
    the scatter working set to roughly ``total_rows / n_buckets``.

    Returns the opened (validated, mmap-ready) :class:`SlabStore`.
    """
    directory = Path(directory)
    with span(
        SPAN_SLAB_BUILD,
        directory=str(directory),
        fingerprint=fingerprint,
        customers_per_shard=customers_per_shard,
    ):
        spill = _SpillFiles(directory / f".build-{os.getpid()}")
        try:
            customer_ids = _spill_pass(chunks, grid, spill, n_buckets)
            shard_bounds = _shard_bounds_for(
                len(customer_ids), customers_per_shard
            )
            _scatter_pass(spill, customer_ids, shard_bounds, n_buckets)
            manifest = _assemble_pass(
                spill, directory, grid, fingerprint, customer_ids, shard_bounds
            )
        finally:
            spill.close()
        atomic_write_json(directory / _MANIFEST_NAME, manifest, indent=2)
    return open_slab_store(directory)


def _spill_pass(
    chunks: Iterable[SlabChunk],
    grid: WindowGrid,
    spill: _SpillFiles,
    n_buckets: int,
) -> np.ndarray:
    """Pass 1: hash-bucket every row on disk; return sorted customer ids.

    Windows are resolved here (same rule as
    :meth:`PopulationFrame.from_log`: receipts outside the grid keep
    their basket rows but contribute no presence triples).
    """
    boundaries = np.asarray(grid.boundaries, dtype=np.int64)
    seen: set[int] = set()
    for chunk in chunks:
        if len(chunk.basket_customer):
            rows = np.empty(len(chunk.basket_customer), dtype=_BASKET_DTYPE)
            rows["customer"] = chunk.basket_customer
            rows["day"] = chunk.basket_day
            rows["monetary"] = chunk.basket_monetary
            buckets = rows["customer"] % n_buckets
            for bucket in np.unique(buckets):
                spill.append(f"bucket-basket-{bucket}", rows[buckets == bucket])
            seen.update(np.unique(rows["customer"]).tolist())
        if len(chunk.item_customer):
            days = np.asarray(chunk.item_day, dtype=np.int64)
            window = np.searchsorted(boundaries, days, side="right") - 1
            valid = (days >= boundaries[0]) & (days < boundaries[-1])
            rows = np.empty(int(valid.sum()), dtype=_ITEM_DTYPE)
            rows["customer"] = np.asarray(chunk.item_customer)[valid]
            rows["window"] = window[valid]
            rows["item"] = np.asarray(chunk.item_id)[valid]
            buckets = rows["customer"] % n_buckets
            for bucket in np.unique(buckets):
                spill.append(f"bucket-item-{bucket}", rows[buckets == bucket])
            seen.update(np.unique(np.asarray(chunk.item_customer)).tolist())
    return np.asarray(sorted(seen), dtype=np.int64)


def _scatter_pass(
    spill: _SpillFiles,
    customer_ids: np.ndarray,
    shard_bounds: list[tuple[int, int]],
    n_buckets: int,
) -> None:
    """Pass 2: split each hash bucket into per-shard spill files.

    Hash buckets hold *all* of a customer's rows in stream order, so the
    per-shard files preserve each customer's relative order even though
    buckets are drained one at a time.
    """
    if not shard_bounds:
        return
    shard_first = customer_ids[[lo for lo, __ in shard_bounds]]
    for kind, dtype in (("basket", _BASKET_DTYPE), ("item", _ITEM_DTYPE)):
        for bucket in range(n_buckets):
            name = f"bucket-{kind}-{bucket}"
            rows = spill.read(name, dtype)
            if len(rows):
                target = (
                    np.searchsorted(shard_first, rows["customer"], side="right")
                    - 1
                )
                for shard in np.unique(target):
                    spill.append(
                        f"shard-{kind}-{shard}", rows[target == shard]
                    )
            spill.remove(name)


def _assemble_pass(
    spill: _SpillFiles,
    directory: Path,
    grid: WindowGrid,
    fingerprint: str,
    customer_ids: np.ndarray,
    shard_bounds: list[tuple[int, int]],
) -> dict[str, Any]:
    """Pass 3: CSR-encode each shard and append to the global columns.

    Per shard this is exactly the :meth:`PopulationFrame.from_log`
    pipeline — stable sort by (customer, day), then
    :func:`csr_from_triples` — so the concatenated columns are
    bit-identical to a single in-RAM encode of the same stream.
    """
    writers = {
        name: AtomicBinaryWriter(directory / f"{name}.bin")
        for name in _COLUMN_DTYPES
    }
    try:
        rows_written = {name: 0 for name in _COLUMN_DTYPES}

        def put(name: str, values: np.ndarray) -> None:
            writers[name].write(
                np.ascontiguousarray(values, dtype=_COLUMN_DTYPES[name]).tobytes()
            )
            rows_written[name] += len(values)

        n_windows = grid.n_windows
        vocab = np.empty(0, dtype=np.int64)
        basket_base = pair_base = triple_base = 0
        for index, (lo, hi) in enumerate(shard_bounds):
            shard_ids = customer_ids[lo:hi]
            size = hi - lo

            baskets = spill.read(f"shard-basket-{index}", _BASKET_DTYPE)
            rows = np.searchsorted(shard_ids, baskets["customer"])
            order = np.lexsort((baskets["day"], rows))
            counts = np.bincount(rows, minlength=size)
            basket_offsets = np.r_[0, np.cumsum(counts)].astype(np.int64)

            items = spill.read(f"shard-item-{index}", _ITEM_DTYPE)
            pair_offsets, pair_items, triple_offsets, triple_window = (
                csr_from_triples(
                    np.searchsorted(shard_ids, items["customer"]),
                    items["item"].copy(),
                    items["window"].copy(),
                    size,
                    n_windows,
                )
            )
            vocab = np.union1d(vocab, pair_items).astype(np.int64)

            put("customer_ids", shard_ids)
            if index == 0:
                put("basket_offsets", basket_offsets)
                put("pair_offsets", pair_offsets)
                put("triple_offsets", triple_offsets)
            else:
                put("basket_offsets", basket_offsets[1:] + basket_base)
                put("pair_offsets", pair_offsets[1:] + pair_base)
                put("triple_offsets", triple_offsets[1:] + triple_base)
            put("basket_days", baskets["day"][order])
            put("basket_monetary", baskets["monetary"][order])
            put("pair_items", pair_items)
            put("triple_window", triple_window)
            basket_base += len(baskets)
            pair_base += len(pair_items)
            triple_base += len(triple_window)
            spill.remove(f"shard-basket-{index}")
            spill.remove(f"shard-item-{index}")

        if not shard_bounds:
            # Zero customers: every CSR level still carries its leading 0.
            for name in _OFFSET_COLUMNS:
                put(name, np.zeros(1, dtype=np.int64))
        put("item_vocab", vocab)
        for writer in writers.values():
            writer.commit()
    except BaseException:
        for writer in writers.values():
            writer.abort()
        raise
    return {
        "schema": SLAB_STORE_SCHEMA,
        "version": SLAB_STORE_VERSION,
        "fingerprint": fingerprint,
        "grid": {
            "boundaries": [int(b) for b in grid.boundaries],
            "months_per_window": grid.months_per_window,
        },
        "n_customers": int(len(customer_ids)),
        "shards": [[int(lo), int(hi)] for lo, hi in shard_bounds],
        "columns": {
            name: {
                "dtype": _COLUMN_DTYPES[name],
                "rows": rows_written[name],
                "nbytes": rows_written[name]
                * np.dtype(_COLUMN_DTYPES[name]).itemsize,
            }
            for name in _COLUMN_DTYPES
        },
    }


# ----------------------------------------------------------------------
# Open / read
# ----------------------------------------------------------------------
@dataclass
class SlabStore:
    """A validated on-disk slab store, ready to memory-map.

    Columns map lazily (``np.memmap`` read-only) and are cached per
    store instance, so repeated :meth:`column` calls share one mapping
    and shards cut from a :meth:`frame` stay zero-copy views of it.
    """

    directory: Path
    manifest: dict[str, Any]
    _columns: dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def fingerprint(self) -> str:
        return str(self.manifest["fingerprint"])

    @property
    def n_customers(self) -> int:
        return int(self.manifest["n_customers"])

    def shard_bounds(self) -> list[tuple[int, int]]:
        """Contiguous customer-row ranges the store was assembled in.

        Out-of-core fits iterate these so the working set stays one
        shard; they are a layout detail, not a semantic partition —
        any ``[lo, hi)`` range is a valid :meth:`PopulationFrame.shard`.
        """
        return [(int(lo), int(hi)) for lo, hi in self.manifest["shards"]]

    def grid(self) -> WindowGrid:
        """Reconstruct the window grid the triples were encoded on."""
        from repro.core.windowing import WindowGrid

        spec = self.manifest["grid"]
        months = spec["months_per_window"]
        return WindowGrid(
            boundaries=tuple(int(b) for b in spec["boundaries"]),
            months_per_window=None if months is None else int(months),
        )

    def column(self, name: str) -> np.ndarray:
        """Memory-map one column read-only (cached per store)."""
        cached = self._columns.get(name)
        if cached is not None:
            return cached
        spec = self.manifest["columns"].get(name)
        if spec is None:
            raise SlabStoreError(
                f"slab store at {self.directory} has no column {name!r}"
            )
        dtype = np.dtype(spec["dtype"])
        rows = int(spec["rows"])
        if rows == 0:
            # np.memmap refuses zero-length mappings; an empty array is
            # indistinguishable to readers.
            column: np.ndarray = np.empty(0, dtype=dtype)
        else:
            column = np.memmap(
                self.directory / f"{name}.bin",
                dtype=dtype,
                mode="r",
                shape=(rows,),
            )
        self._columns[name] = column
        return column

    def frame(self) -> PopulationFrame:
        """The mmap-backed :class:`PopulationFrame` over this store."""
        return PopulationFrame.from_slabs(self)


def open_slab_store(directory: str | Path) -> SlabStore:
    """Validate and open a slab store directory.

    Raises
    ------
    SlabStoreError
        If the manifest is missing/corrupt, the schema or version does
        not match, or any column file is missing or has the wrong size
        (a torn or stale store).
    """
    directory = Path(directory)
    with span(SPAN_SLAB_OPEN, directory=str(directory)):
        manifest_path = directory / _MANIFEST_NAME
        try:
            text = manifest_path.read_text()
        except OSError as error:
            raise SlabStoreError(
                f"no slab store at {directory}: cannot read manifest "
                f"({error})"
            ) from error
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as error:
            raise SlabStoreError(
                f"slab store manifest at {manifest_path} is not valid "
                f"JSON: {error}"
            ) from error
        if not isinstance(manifest, dict) or manifest.get("schema") != SLAB_STORE_SCHEMA:
            found = manifest.get("schema") if isinstance(manifest, dict) else None
            raise SlabStoreError(
                f"{manifest_path} is not a slab-store manifest "
                f"(schema={found!r}, expected {SLAB_STORE_SCHEMA!r})"
            )
        if manifest.get("version") != SLAB_STORE_VERSION:
            raise SlabStoreError(
                f"slab store at {directory} has version "
                f"{manifest.get('version')!r}; this build reads version "
                f"{SLAB_STORE_VERSION} — rebuild the store"
            )
        columns = manifest.get("columns")
        if not isinstance(columns, dict) or set(columns) != set(_COLUMN_DTYPES):
            raise SlabStoreError(
                f"slab store at {directory} manifests columns "
                f"{sorted(columns) if isinstance(columns, dict) else columns!r}; "
                f"expected {sorted(_COLUMN_DTYPES)}"
            )
        for name, spec in columns.items():
            path = directory / f"{name}.bin"
            expected = int(spec["nbytes"])
            try:
                actual = path.stat().st_size
            except OSError as error:
                raise SlabStoreError(
                    f"slab store at {directory} is torn: column file "
                    f"{path.name} is missing"
                ) from error
            if actual != expected:
                raise SlabStoreError(
                    f"slab store at {directory} is torn: column file "
                    f"{path.name} holds {actual} bytes, manifest says "
                    f"{expected}"
                )
    return SlabStore(directory=directory, manifest=manifest)


def ensure_slab_store(
    root: str | Path,
    baskets: Iterable[Basket],
    grid: WindowGrid,
    fingerprint: str,
    *,
    customers_per_shard: int = 8192,
    n_buckets: int = 64,
) -> SlabStore:
    """Open the fingerprint-keyed store under ``root``, building on miss.

    The store lives at ``root/<fingerprint>``; a valid store whose
    manifested fingerprint matches counts as a cache hit
    (``slab.store_hits``) and is opened without touching ``baskets``.
    Anything else — absent, torn, stale fingerprint, old version — is a
    miss (``slab.store_misses``): the directory is discarded and rebuilt
    from the stream.
    """
    directory = Path(root) / fingerprint
    try:
        store = open_slab_store(directory)
        if store.fingerprint == fingerprint:
            get_metrics().counter(SLAB_STORE_HITS).inc()
            return store
    except SlabStoreError:
        pass
    get_metrics().counter(SLAB_STORE_MISSES).inc()
    if directory.exists():
        shutil.rmtree(directory)
    return build_slab_store(
        chunks_from_baskets(baskets),
        grid,
        directory,
        fingerprint=fingerprint,
        customers_per_shard=customers_per_shard,
        n_buckets=n_buckets,
    )
