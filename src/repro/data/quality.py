"""Data-quality profiling for incoming transaction logs.

Before fitting models on a new retailer export, a pipeline should check
the data itself.  :func:`profile_log` computes the health report:

* coverage: customers, receipts, date span, receipts per active month;
* anomalies: duplicate receipts (same customer, day and items), empty
  baskets, monetary outliers (robust z-score on log-spend), calendar
  gaps (months with zero receipts overall);
* distributions: basket-size and inter-purchase quantiles.

The report is plain data (no side effects); :func:`render_quality_report`
turns it into text.  The checks raise nothing — data quality is a
*report*, not a gate (gates live in :mod:`repro.data.validation`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.data.calendar import StudyCalendar
from repro.data.transactions import TransactionLog

__all__ = [
    "QualityReport",
    "profile_log",
    "render_quality_report",
    "QuarantinedRow",
    "QuarantineReport",
    "render_quarantine_report",
]


# ----------------------------------------------------------------------
# Ingest quarantine (lenient CSV reads)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class QuarantinedRow:
    """One CSV row rejected during a lenient ingest."""

    line: int  # 1-based line number in the source file
    reason: str


@dataclass(frozen=True)
class QuarantineReport:
    """What a lenient :func:`~repro.data.io.read_log_csv` set aside.

    Produced alongside the (clean) log when reading with
    ``on_error="quarantine"``: every malformed row is recorded here with
    its line number and rejection reason instead of aborting the read.
    """

    path: str
    rows: tuple[QuarantinedRow, ...]
    n_rows_total: int

    @property
    def n_quarantined(self) -> int:
        return len(self.rows)

    @property
    def n_clean(self) -> int:
        return self.n_rows_total - self.n_quarantined

    @property
    def is_clean(self) -> bool:
        return not self.rows


def render_quarantine_report(report: QuarantineReport, limit: int = 10) -> str:
    """Render a quarantine report as plain text (first ``limit`` rows)."""
    lines = [
        f"{report.path}: {report.n_clean:,} of {report.n_rows_total:,} "
        f"rows ingested, {report.n_quarantined} quarantined"
    ]
    for row in report.rows[:limit]:
        lines.append(f"  line {row.line}: {row.reason}")
    if report.n_quarantined > limit:
        lines.append(f"  ... and {report.n_quarantined - limit} more")
    return "\n".join(lines)


@dataclass(frozen=True)
class QualityReport:
    """The health report of one transaction log."""

    n_customers: int
    n_receipts: int
    day_span: tuple[int, int] | None
    receipts_per_customer_quantiles: dict[str, float]
    basket_size_quantiles: dict[str, float]
    interpurchase_days_quantiles: dict[str, float]
    n_duplicate_receipts: int
    n_empty_baskets: int
    n_monetary_outliers: int
    empty_months: list[int]

    @property
    def is_clean(self) -> bool:
        """No duplicates, empties, outliers or silent months."""
        return (
            self.n_duplicate_receipts == 0
            and self.n_empty_baskets == 0
            and self.n_monetary_outliers == 0
            and not self.empty_months
        )


def _quantiles(values: list[float]) -> dict[str, float]:
    if not values:
        return {"p10": 0.0, "p50": 0.0, "p90": 0.0}
    array = np.asarray(values, dtype=np.float64)
    p10, p50, p90 = np.quantile(array, [0.1, 0.5, 0.9])
    return {"p10": float(p10), "p50": float(p50), "p90": float(p90)}


def profile_log(
    log: TransactionLog,
    calendar: StudyCalendar | None = None,
    outlier_z: float = 4.0,
) -> QualityReport:
    """Profile a transaction log.

    Parameters
    ----------
    log:
        The log to profile (may be empty).
    calendar:
        When given, months with zero receipts across the whole log are
        reported as ``empty_months`` (a sign of missing extract files).
    outlier_z:
        Robust z-score (median/MAD on log1p-spend) beyond which a
        receipt's monetary value counts as an outlier.
    """
    receipts_per_customer: list[float] = []
    basket_sizes: list[float] = []
    gaps: list[float] = []
    monetary: list[float] = []
    duplicates = 0
    empties = 0
    month_counts: Counter[int] = Counter()

    for customer in log.customers():
        history = log.history(customer)
        receipts_per_customer.append(float(len(history)))
        seen: set[tuple[int, frozenset[int]]] = set()
        previous_day: int | None = None
        for basket in history:
            basket_sizes.append(float(basket.size))
            monetary.append(basket.monetary)
            if basket.size == 0:
                empties += 1
            key = (basket.day, basket.items)
            if key in seen:
                duplicates += 1
            seen.add(key)
            if previous_day is not None:
                gaps.append(float(basket.day - previous_day))
            previous_day = basket.day
            if calendar is not None:
                month_counts[calendar.month_of_day(basket.day)] += 1

    n_outliers = 0
    if monetary:
        logged = np.log1p(np.asarray(monetary, dtype=np.float64))
        median = np.median(logged)
        mad = np.median(np.abs(logged - median))
        if mad > 0:
            robust_z = 0.6745 * (logged - median) / mad
            n_outliers = int(np.sum(np.abs(robust_z) > outlier_z))

    empty_months: list[int] = []
    if calendar is not None and log.n_baskets:
        empty_months = [
            month for month in range(calendar.n_months) if month_counts[month] == 0
        ]

    return QualityReport(
        n_customers=log.n_customers,
        n_receipts=log.n_baskets,
        day_span=log.day_range() if log.n_baskets else None,
        receipts_per_customer_quantiles=_quantiles(receipts_per_customer),
        basket_size_quantiles=_quantiles(basket_sizes),
        interpurchase_days_quantiles=_quantiles(gaps),
        n_duplicate_receipts=duplicates,
        n_empty_baskets=empties,
        n_monetary_outliers=n_outliers,
        empty_months=empty_months,
    )


def render_quality_report(report: QualityReport) -> str:
    """Render a quality report as plain text."""

    def q(values: dict[str, float]) -> str:
        return (
            f"p10 {values['p10']:.1f} / p50 {values['p50']:.1f} / "
            f"p90 {values['p90']:.1f}"
        )

    span = (
        f"days {report.day_span[0]}..{report.day_span[1]}"
        if report.day_span
        else "(empty log)"
    )
    lines = [
        f"customers: {report.n_customers:,}   receipts: {report.n_receipts:,}   {span}",
        f"receipts/customer: {q(report.receipts_per_customer_quantiles)}",
        f"basket size:       {q(report.basket_size_quantiles)}",
        f"days between trips:{q(report.interpurchase_days_quantiles)}",
        "",
        f"duplicate receipts: {report.n_duplicate_receipts}",
        f"empty baskets:      {report.n_empty_baskets}",
        f"monetary outliers:  {report.n_monetary_outliers}",
    ]
    if report.empty_months:
        lines.append(f"months with NO receipts: {report.empty_months}")
    lines.append("verdict: " + ("CLEAN" if report.is_clean else "NEEDS REVIEW"))
    return "\n".join(lines)
