"""Columnar event store backed by numpy.

The :class:`EventStore` is the database-style representation of a
transaction log: one row per ``(receipt, item)`` event, stored as parallel
numpy arrays.  It is the efficient interchange format for bulk operations
(vectorised filtering, aggregation for RFM features) and converts losslessly
to and from :class:`~repro.data.transactions.TransactionLog`.

Columns
-------
``customer_id``  int64 — purchasing customer
``receipt_id``   int64 — receipt the event belongs to (unique per basket)
``day``          int64 — day offset from study start
``item_id``      int64 — item bought
``monetary``     float64 — monetary value of the *receipt*, replicated on
                 each of its rows (use :meth:`receipt_table` to deduplicate)
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.data.basket import Basket
from repro.data.transactions import TransactionLog
from repro.errors import DataError

__all__ = ["EventStore"]


@dataclass(frozen=True)
class EventStore:
    """Immutable columnar table of purchase events."""

    customer_id: np.ndarray
    receipt_id: np.ndarray
    day: np.ndarray
    item_id: np.ndarray
    monetary: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.customer_id),
            len(self.receipt_id),
            len(self.day),
            len(self.item_id),
            len(self.monetary),
        }
        if len(lengths) != 1:
            raise DataError(f"EventStore columns have mismatched lengths: {lengths}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> EventStore:
        """An event store with zero rows."""
        return cls(
            customer_id=np.empty(0, dtype=np.int64),
            receipt_id=np.empty(0, dtype=np.int64),
            day=np.empty(0, dtype=np.int64),
            item_id=np.empty(0, dtype=np.int64),
            monetary=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def from_log(cls, log: TransactionLog) -> EventStore:
        """Flatten a transaction log into columnar events.

        Receipt ids are assigned densely in (customer, day) iteration
        order, so the conversion is deterministic.
        """
        customers: list[int] = []
        receipts: list[int] = []
        days: list[int] = []
        items: list[int] = []
        monetary: list[float] = []
        receipt_id = 0
        for basket in log:
            for item in sorted(basket.items):
                customers.append(basket.customer_id)
                receipts.append(receipt_id)
                days.append(basket.day)
                items.append(item)
                monetary.append(basket.monetary)
            receipt_id += 1
        return cls(
            customer_id=np.asarray(customers, dtype=np.int64),
            receipt_id=np.asarray(receipts, dtype=np.int64),
            day=np.asarray(days, dtype=np.int64),
            item_id=np.asarray(items, dtype=np.int64),
            monetary=np.asarray(monetary, dtype=np.float64),
        )

    def to_log(self) -> TransactionLog:
        """Reassemble a transaction log (inverse of :meth:`from_log`)."""
        log = TransactionLog()
        for _, rows in self._group_rows_by(self.receipt_id):
            log.add(
                Basket.of(
                    customer_id=int(self.customer_id[rows[0]]),
                    day=int(self.day[rows[0]]),
                    items=(int(i) for i in self.item_id[rows]),
                    monetary=float(self.monetary[rows[0]]),
                )
            )
        return log

    # ------------------------------------------------------------------
    # Shape / aggregate queries
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return len(self.customer_id)

    @property
    def n_receipts(self) -> int:
        return len(np.unique(self.receipt_id))

    @property
    def n_customers(self) -> int:
        return len(np.unique(self.customer_id))

    @property
    def n_items(self) -> int:
        return len(np.unique(self.item_id))

    def day_range(self) -> tuple[int, int]:
        """``(min_day, max_day)`` over all events."""
        if not self.n_rows:
            raise DataError("event store is empty")
        return int(self.day.min()), int(self.day.max())

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def _masked(self, mask: np.ndarray) -> EventStore:
        return EventStore(
            customer_id=self.customer_id[mask],
            receipt_id=self.receipt_id[mask],
            day=self.day[mask],
            item_id=self.item_id[mask],
            monetary=self.monetary[mask],
        )

    def filter_days(self, begin: int, end: int) -> EventStore:
        """Rows whose day falls in the half-open interval ``[begin, end)``."""
        if end < begin:
            raise DataError(f"invalid day interval: [{begin}, {end})")
        return self._masked((self.day >= begin) & (self.day < end))

    def filter_customers(self, customer_ids) -> EventStore:
        """Rows belonging to the given customers."""
        wanted = np.asarray(sorted(set(int(c) for c in customer_ids)), dtype=np.int64)
        return self._masked(np.isin(self.customer_id, wanted))

    # ------------------------------------------------------------------
    # Group-by helpers
    # ------------------------------------------------------------------
    def _group_rows_by(self, keys: np.ndarray) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(key, row_indices)`` pairs grouped by ``keys``, key-sorted."""
        if not self.n_rows:
            return
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        for rows in np.split(order, boundaries):
            yield int(keys[rows[0]]), rows

    def by_customer(self) -> Iterator[tuple[int, "EventStore"]]:
        """Iterate ``(customer_id, sub_store)`` in customer-id order."""
        for customer, rows in self._group_rows_by(self.customer_id):
            yield customer, self._masked(rows)

    def receipt_table(self) -> dict[str, np.ndarray]:
        """One row per receipt: ids, customer, day, basket size, monetary.

        Returns a dict of parallel arrays keyed by column name — the
        aggregation the RFM feature extractor runs on.
        """
        receipt_ids: list[int] = []
        customers: list[int] = []
        days: list[int] = []
        sizes: list[int] = []
        monetary: list[float] = []
        for receipt, rows in self._group_rows_by(self.receipt_id):
            receipt_ids.append(receipt)
            customers.append(int(self.customer_id[rows[0]]))
            days.append(int(self.day[rows[0]]))
            sizes.append(len(rows))
            monetary.append(float(self.monetary[rows[0]]))
        return {
            "receipt_id": np.asarray(receipt_ids, dtype=np.int64),
            "customer_id": np.asarray(customers, dtype=np.int64),
            "day": np.asarray(days, dtype=np.int64),
            "basket_size": np.asarray(sizes, dtype=np.int64),
            "monetary": np.asarray(monetary, dtype=np.float64),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"EventStore(n_rows={self.n_rows}, n_receipts={self.n_receipts}, "
            f"n_customers={self.n_customers})"
        )
