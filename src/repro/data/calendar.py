"""Study-calendar arithmetic.

The paper's dataset spans May 2012 to August 2014 and all of its evaluation
is indexed in *months since the start of the study* (Figure 1 and Figure 2
have "Number of months" on the x axis).  This module provides a small,
explicit calendar abstraction so the rest of the code can work with month
indices and day offsets without scattering ``datetime`` arithmetic
everywhere.

The unit of raw event time throughout the library is an integer **day
offset** from the study start (day 0 = first day of the study).  A
:class:`StudyCalendar` converts between day offsets, month indices and real
dates.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["StudyCalendar", "month_span_days", "PAPER_STUDY_START", "PAPER_STUDY_MONTHS"]

#: Start of the paper's study period (May 2012).
PAPER_STUDY_START = _dt.date(2012, 5, 1)

#: Number of whole months covered by the paper's dataset (May 2012 .. Aug 2014).
PAPER_STUDY_MONTHS = 28


def _add_months(day: _dt.date, months: int) -> _dt.date:
    """Return ``day`` shifted forward by ``months`` whole months.

    The day-of-month is clamped to the last valid day of the target month,
    which only matters for start dates after the 28th.
    """
    month_index = day.month - 1 + months
    year = day.year + month_index // 12
    month = month_index % 12 + 1
    # Clamp the day-of-month to the target month's last valid day (at
    # most 3 steps down, and day 28 always exists).
    day_of_month = day.day
    while day_of_month > 28:
        try:
            return _dt.date(year, month, day_of_month)
        except ValueError:
            day_of_month -= 1
    return _dt.date(year, month, day_of_month)


def month_span_days(start: _dt.date, months: int) -> int:
    """Number of days covered by ``months`` whole months from ``start``."""
    return (_add_months(start, months) - start).days


@dataclass(frozen=True)
class StudyCalendar:
    """Calendar for a study period, converting days <-> months <-> dates.

    Parameters
    ----------
    start:
        First day of the study (day offset 0).
    n_months:
        Total number of whole months in the study period.

    Examples
    --------
    >>> cal = StudyCalendar.paper()
    >>> cal.month_of_day(0)
    0
    >>> cal.date_of_day(0)
    datetime.date(2012, 5, 1)
    """

    start: _dt.date = PAPER_STUDY_START
    n_months: int = PAPER_STUDY_MONTHS

    def __post_init__(self) -> None:
        if self.n_months <= 0:
            raise ConfigError(f"n_months must be positive, got {self.n_months}")

    @classmethod
    def paper(cls) -> StudyCalendar:
        """The calendar of the paper's dataset: May 2012, 28 months."""
        return cls(start=PAPER_STUDY_START, n_months=PAPER_STUDY_MONTHS)

    # ------------------------------------------------------------------
    # Day <-> date
    # ------------------------------------------------------------------
    @property
    def n_days(self) -> int:
        """Total number of days in the study period."""
        return month_span_days(self.start, self.n_months)

    @property
    def end(self) -> _dt.date:
        """First day *after* the study period."""
        return _add_months(self.start, self.n_months)

    def date_of_day(self, day: int) -> _dt.date:
        """Calendar date for a day offset."""
        return self.start + _dt.timedelta(days=int(day))

    def day_of_date(self, date: _dt.date) -> int:
        """Day offset of a calendar date (may be negative / past the end)."""
        return (date - self.start).days

    # ------------------------------------------------------------------
    # Day <-> month index
    # ------------------------------------------------------------------
    def month_start_day(self, month: int) -> int:
        """Day offset of the first day of study month ``month``."""
        if month < 0:
            raise ConfigError(f"month index must be >= 0, got {month}")
        return month_span_days(self.start, month)

    def month_of_day(self, day: int) -> int:
        """Study-month index containing day offset ``day``.

        Days past the end of the study map onto the month they would fall
        in if the study were extended.
        """
        if day < 0:
            raise ConfigError(f"day offset must be >= 0, got {day}")
        date = self.date_of_day(day)
        return (date.year - self.start.year) * 12 + (date.month - self.start.month) - (
            1 if date.day < self.start.day else 0
        )

    def month_bounds_days(self, month: int) -> tuple[int, int]:
        """Half-open day-offset interval ``[begin, end)`` of a study month."""
        return self.month_start_day(month), self.month_start_day(month + 1)

    def contains_day(self, day: int) -> bool:
        """Whether a day offset falls inside the study period."""
        return 0 <= day < self.n_days

    def month_label(self, month: int) -> str:
        """Human-readable label like ``'2013-09'`` for a study month."""
        date = _add_months(self.start, month)
        return f"{date.year:04d}-{date.month:02d}"
