"""Product taxonomy: a rooted tree over departments, segments and products.

The paper mentions that "a taxonomy is also provided that enables
abstracting products in segments".  We model the taxonomy explicitly as a
rooted tree (backed by :mod:`networkx`) with four levels::

    root -> department -> segment -> product

The tree is the source of truth for abstraction: given a product node the
taxonomy can return its ancestor at any level.  A :class:`Taxonomy` can be
built directly from a :class:`~repro.data.items.Catalog`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import networkx as nx

from repro.data.items import Catalog
from repro.errors import TaxonomyError

__all__ = ["Taxonomy", "TaxonomyNode", "LEVELS"]

#: Taxonomy levels from root to leaf.
LEVELS = ("root", "department", "segment", "product")


@dataclass(frozen=True, slots=True)
class TaxonomyNode:
    """A node in the taxonomy tree.

    ``key`` is globally unique within the taxonomy; ``ref_id`` is the id of
    the underlying catalog entity for segment/product nodes (``None`` for
    the root and departments, which exist only in the taxonomy).
    """

    key: str
    level: str
    name: str
    ref_id: int | None = None


class Taxonomy:
    """Rooted tree over departments, segments and products.

    Examples
    --------
    >>> from repro.data.items import Catalog
    >>> catalog = Catalog()
    >>> seg = catalog.add_segment("Coffee", department="Beverages")
    >>> prod = catalog.add_product("Arabica", seg.segment_id)
    >>> tax = Taxonomy.from_catalog(catalog)
    >>> tax.segment_of_product(prod.product_id)
    0
    """

    ROOT_KEY = "root"

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        root = TaxonomyNode(key=self.ROOT_KEY, level="root", name="root")
        self._graph.add_node(root.key, node=root)
        self._product_keys: dict[int, str] = {}
        self._segment_keys: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _department_key(name: str) -> str:
        return f"dept:{name}"

    @staticmethod
    def _segment_key(segment_id: int) -> str:
        return f"seg:{segment_id}"

    @staticmethod
    def _product_key(product_id: int) -> str:
        return f"prod:{product_id}"

    def add_department(self, name: str) -> TaxonomyNode:
        """Add a department under the root (idempotent per name)."""
        key = self._department_key(name)
        if key in self._graph:
            return self.node(key)
        node = TaxonomyNode(key=key, level="department", name=name)
        self._graph.add_node(key, node=node)
        self._graph.add_edge(self.ROOT_KEY, key)
        return node

    def add_segment(self, segment_id: int, name: str, department: str) -> TaxonomyNode:
        """Add a segment under a department (creating the department)."""
        key = self._segment_key(segment_id)
        if key in self._graph:
            raise TaxonomyError(f"duplicate segment node: {segment_id}")
        dept = self.add_department(department)
        node = TaxonomyNode(key=key, level="segment", name=name, ref_id=segment_id)
        self._graph.add_node(key, node=node)
        self._graph.add_edge(dept.key, key)
        self._segment_keys[segment_id] = key
        return node

    def add_product(self, product_id: int, name: str, segment_id: int) -> TaxonomyNode:
        """Add a product under an existing segment."""
        key = self._product_key(product_id)
        if key in self._graph:
            raise TaxonomyError(f"duplicate product node: {product_id}")
        seg_key = self._segment_keys.get(segment_id)
        if seg_key is None:
            raise TaxonomyError(f"segment {segment_id} not in taxonomy")
        node = TaxonomyNode(key=key, level="product", name=name, ref_id=product_id)
        self._graph.add_node(key, node=node)
        self._graph.add_edge(seg_key, key)
        self._product_keys[product_id] = key
        return node

    @classmethod
    def from_catalog(cls, catalog: Catalog) -> Taxonomy:
        """Build the full taxonomy tree of a catalog."""
        taxonomy = cls()
        for segment in catalog.segments():
            taxonomy.add_segment(segment.segment_id, segment.name, segment.department)
        for product in catalog.products():
            taxonomy.add_product(product.product_id, product.name, product.segment_id)
        taxonomy.validate()
        return taxonomy

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, key: str) -> TaxonomyNode:
        """Node by key. Raises :class:`TaxonomyError` if unknown."""
        try:
            return self._graph.nodes[key]["node"]
        except KeyError:
            raise TaxonomyError(f"unknown taxonomy node: {key!r}") from None

    def parent(self, key: str) -> TaxonomyNode | None:
        """Parent node, or ``None`` for the root."""
        preds = list(self._graph.predecessors(key))
        if not preds:
            return None
        return self.node(preds[0])

    def ancestors(self, key: str) -> list[TaxonomyNode]:
        """Ancestors from immediate parent up to the root."""
        chain: list[TaxonomyNode] = []
        current = self.parent(key)
        while current is not None:
            chain.append(current)
            current = self.parent(current.key)
        return chain

    def children(self, key: str) -> list[TaxonomyNode]:
        """Child nodes, sorted by key for determinism."""
        return [self.node(k) for k in sorted(self._graph.successors(key))]

    def ancestor_at_level(self, key: str, level: str) -> TaxonomyNode:
        """Ancestor of ``key`` at the requested level (may be ``key`` itself)."""
        if level not in LEVELS:
            raise TaxonomyError(f"unknown taxonomy level: {level!r}")
        node = self.node(key)
        if node.level == level:
            return node
        for anc in self.ancestors(key):
            if anc.level == level:
                return anc
        raise TaxonomyError(f"node {key!r} has no ancestor at level {level!r}")

    def segment_of_product(self, product_id: int) -> int:
        """Segment id of a product, resolved through the tree."""
        key = self._product_keys.get(product_id)
        if key is None:
            raise TaxonomyError(f"product {product_id} not in taxonomy")
        seg_node = self.ancestor_at_level(key, "segment")
        assert seg_node.ref_id is not None
        return seg_node.ref_id

    def products_under(self, key: str) -> list[int]:
        """Product ids in the subtree rooted at ``key``."""
        self.node(key)
        return sorted(
            self._graph.nodes[desc]["node"].ref_id
            for desc in nx.descendants(self._graph, key) | {key}
            if self._graph.nodes[desc]["node"].level == "product"
        )

    def iter_nodes(self) -> Iterator[TaxonomyNode]:
        """Iterate over all nodes (root first, then breadth-first order)."""
        for key in nx.bfs_tree(self._graph, self.ROOT_KEY):
            yield self.node(key)

    @property
    def n_departments(self) -> int:
        return sum(1 for n in self.iter_nodes() if n.level == "department")

    @property
    def n_segments(self) -> int:
        return len(self._segment_keys)

    @property
    def n_products(self) -> int:
        return len(self._product_keys)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the taxonomy is a rooted tree with valid level edges.

        Raises
        ------
        TaxonomyError
            On cycles, disconnected nodes, multiple parents, or an edge
            that skips a taxonomy level.
        """
        if not nx.is_directed_acyclic_graph(self._graph):
            raise TaxonomyError("taxonomy contains a cycle")
        for key in self._graph.nodes:
            if key == self.ROOT_KEY:
                continue
            preds = list(self._graph.predecessors(key))
            if len(preds) != 1:
                raise TaxonomyError(f"node {key!r} has {len(preds)} parents, expected 1")
            child_level = LEVELS.index(self.node(key).level)
            parent_level = LEVELS.index(self.node(preds[0]).level)
            if child_level != parent_level + 1:
                raise TaxonomyError(
                    f"edge {preds[0]!r} -> {key!r} skips a taxonomy level"
                )
