"""Products, segments and the retail catalog.

The paper's dataset contains ~4 million *products* grouped by a taxonomy
into 3,388 *segments* ("Milk", "Coffee", ...).  The stability model is
applied at the segment level (the explanations in Figure 2 name segments),
so the catalog keeps both granularities and knows how to abstract one into
the other.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import DataError

__all__ = ["Product", "Segment", "Catalog"]


@dataclass(frozen=True, slots=True)
class Segment:
    """A product segment (the abstraction level used by the model).

    Attributes
    ----------
    segment_id:
        Dense integer identifier, unique within a catalog.
    name:
        Human-readable segment name (e.g. ``"Coffee"``).
    department:
        Name of the department the segment belongs to (taxonomy level
        above segments, e.g. ``"Beverages"``).
    """

    segment_id: int
    name: str
    department: str = "Unknown"


@dataclass(frozen=True, slots=True)
class Product:
    """A single sellable product (SKU).

    Attributes
    ----------
    product_id:
        Dense integer identifier, unique within a catalog.
    name:
        Human-readable product name.
    segment_id:
        Identifier of the segment this product belongs to.
    unit_price:
        Reference unit price, used by the synthetic generator to derive
        monetary values for baskets.
    """

    product_id: int
    name: str
    segment_id: int
    unit_price: float = 1.0


@dataclass
class Catalog:
    """The set of products and segments of a retailer.

    A catalog guarantees referential integrity: every product's
    ``segment_id`` must identify a registered segment.

    Examples
    --------
    >>> catalog = Catalog()
    >>> coffee = catalog.add_segment("Coffee", department="Beverages")
    >>> arabica = catalog.add_product("Arabica 250g", coffee.segment_id, unit_price=4.5)
    >>> catalog.segment_of(arabica.product_id).name
    'Coffee'
    """

    _segments: dict[int, Segment] = field(default_factory=dict)
    _products: dict[int, Product] = field(default_factory=dict)
    _segment_names: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_segment(self, name: str, department: str = "Unknown") -> Segment:
        """Register a new segment and return it.

        Raises
        ------
        DataError
            If a segment with the same name already exists.
        """
        if name in self._segment_names:
            raise DataError(f"duplicate segment name: {name!r}")
        segment = Segment(segment_id=len(self._segments), name=name, department=department)
        self._segments[segment.segment_id] = segment
        self._segment_names[name] = segment.segment_id
        return segment

    def add_product(self, name: str, segment_id: int, unit_price: float = 1.0) -> Product:
        """Register a new product under an existing segment and return it.

        Raises
        ------
        DataError
            If ``segment_id`` is unknown or ``unit_price`` is not positive.
        """
        if segment_id not in self._segments:
            raise DataError(f"unknown segment_id: {segment_id}")
        if unit_price <= 0:
            raise DataError(f"unit_price must be positive, got {unit_price}")
        product = Product(
            product_id=len(self._products),
            name=name,
            segment_id=segment_id,
            unit_price=unit_price,
        )
        self._products[product.product_id] = product
        return product

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def n_segments(self) -> int:
        return len(self._segments)

    @property
    def n_products(self) -> int:
        return len(self._products)

    def segment(self, segment_id: int) -> Segment:
        """Segment by id. Raises :class:`DataError` if unknown."""
        try:
            return self._segments[segment_id]
        except KeyError:
            raise DataError(f"unknown segment_id: {segment_id}") from None

    def product(self, product_id: int) -> Product:
        """Product by id. Raises :class:`DataError` if unknown."""
        try:
            return self._products[product_id]
        except KeyError:
            raise DataError(f"unknown product_id: {product_id}") from None

    def segment_by_name(self, name: str) -> Segment:
        """Segment by its (unique) name. Raises :class:`DataError` if unknown."""
        try:
            return self._segments[self._segment_names[name]]
        except KeyError:
            raise DataError(f"unknown segment name: {name!r}") from None

    def segment_of(self, product_id: int) -> Segment:
        """Segment that a product belongs to."""
        return self.segment(self.product(product_id).segment_id)

    def segments(self) -> Iterator[Segment]:
        """Iterate over segments in id order."""
        return iter(sorted(self._segments.values(), key=lambda s: s.segment_id))

    def products(self) -> Iterator[Product]:
        """Iterate over products in id order."""
        return iter(sorted(self._products.values(), key=lambda p: p.product_id))

    def products_in_segment(self, segment_id: int) -> list[Product]:
        """All products belonging to a segment (validates the id)."""
        self.segment(segment_id)
        return [p for p in self.products() if p.segment_id == segment_id]

    def abstract_items(self, product_ids: Iterable[int]) -> frozenset[int]:
        """Map a collection of product ids to the set of their segment ids.

        This is the taxonomy abstraction the paper applies before running
        the stability model: basket contents expressed as segments.
        """
        return frozenset(self.product(pid).segment_id for pid in product_ids)

    def __contains__(self, product_id: object) -> bool:
        return product_id in self._products

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Catalog(n_products={self.n_products}, n_segments={self.n_segments})"
