"""Cohort labels: loyal customers vs. customers that defected.

In the paper, the retailer provided the ids of *loyal* customers and of
*loyal customers that defected in the last 6 months*, together with the
month the defection began (month 18 on Figure 1).  :class:`CohortLabels`
carries exactly that information, plus (for synthetic data) the
ground-truth defection onset per churner which the ablations use to score
explanation quality.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataError

__all__ = ["CohortLabels"]


@dataclass(frozen=True)
class CohortLabels:
    """Loyal / defecting cohort membership.

    Attributes
    ----------
    loyal:
        Ids of customers labelled loyal (negative class).
    churners:
        Ids of customers labelled as defected (positive class).
    onset_month:
        Study-month index at which defection begins for the churner
        cohort as a whole (the vertical line in Figure 1).
    churner_onsets:
        Optional per-customer ground-truth onset months (synthetic data
        only); falls back to ``onset_month`` when a customer is absent.
    """

    loyal: frozenset[int]
    churners: frozenset[int]
    onset_month: int
    churner_onsets: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "loyal", frozenset(self.loyal))
        object.__setattr__(self, "churners", frozenset(self.churners))
        overlap = self.loyal & self.churners
        if overlap:
            raise DataError(f"customers in both cohorts: {sorted(overlap)[:5]}...")
        if self.onset_month < 0:
            raise DataError(f"onset_month must be >= 0, got {self.onset_month}")
        unknown = set(self.churner_onsets) - set(self.churners)
        if unknown:
            raise DataError(
                f"churner_onsets refers to non-churners: {sorted(unknown)[:5]}..."
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_loyal(self) -> int:
        return len(self.loyal)

    @property
    def n_churners(self) -> int:
        return len(self.churners)

    def all_customers(self) -> list[int]:
        """Sorted ids of every labelled customer."""
        return sorted(self.loyal | self.churners)

    def onset_of(self, customer_id: int) -> int:
        """Ground-truth defection onset month for a churner.

        Raises
        ------
        DataError
            If the customer is not in the churner cohort.
        """
        if customer_id not in self.churners:
            raise DataError(f"customer {customer_id} is not a churner")
        return self.churner_onsets.get(customer_id, self.onset_month)

    def is_churner(self, customer_id: int) -> bool:
        """Whether a labelled customer is in the churner cohort.

        Raises
        ------
        DataError
            If the customer is not labelled at all.
        """
        if customer_id in self.churners:
            return True
        if customer_id in self.loyal:
            return False
        raise DataError(f"customer {customer_id} has no cohort label")

    def label_vector(self, customer_ids: Iterable[int]) -> np.ndarray:
        """Binary labels (1 = churner) for the given customers, in order."""
        return np.asarray(
            [1 if self.is_churner(c) else 0 for c in customer_ids], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Manipulation
    # ------------------------------------------------------------------
    def restricted_to(self, customer_ids: Iterable[int]) -> CohortLabels:
        """Labels restricted to a subset of customers (for CV folds)."""
        keep = set(customer_ids)
        churners = self.churners & keep
        return CohortLabels(
            loyal=self.loyal & keep,
            churners=churners,
            onset_month=self.onset_month,
            churner_onsets={
                c: m for c, m in self.churner_onsets.items() if c in churners
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CohortLabels(n_loyal={self.n_loyal}, n_churners={self.n_churners}, "
            f"onset_month={self.onset_month})"
        )
