"""Out-of-core transaction streaming.

The paper's dataset (receipts of 6M customers over 28 months) does not fit
in memory as Python objects.  This module provides the streaming layer a
full-scale deployment would use:

* :func:`iter_log_csv` — a generator over baskets in a receipt CSV,
  constant memory, with the same schema validation as the batch reader;
* :func:`stream_to_monitor` — pump a CSV straight into an online
  :class:`~repro.core.streaming.StabilityMonitor` without materialising a
  :class:`~repro.data.transactions.TransactionLog`;
* :class:`PartitionedLogWriter` / :func:`iter_partitioned_log` — a sharded
  on-disk layout (one CSV per customer-id bucket) enabling per-shard
  parallel processing and selective reads.

The CSV schema matches :mod:`repro.data.io` (``customer_id, day, items,
monetary``) so files are interchangeable between the batch and streaming
paths.
"""

from __future__ import annotations

import csv
import heapq
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.data.basket import Basket
from repro.errors import ConfigError, DataError, SchemaError

__all__ = [
    "iter_log_csv",
    "stream_to_monitor",
    "PartitionedLogWriter",
    "iter_partitioned_log",
    "DayBatch",
    "iter_day_batches",
]

_LOG_HEADER = ["customer_id", "day", "items", "monetary"]


def _parse_row(path: Path, line_no: int, row: list[str]) -> Basket:
    if len(row) != len(_LOG_HEADER):
        raise SchemaError(f"{path}:{line_no}: expected {len(_LOG_HEADER)} fields")
    try:
        items = [int(token) for token in row[2].split()] if row[2] else []
        return Basket.of(
            customer_id=int(row[0]),
            day=int(row[1]),
            items=items,
            monetary=float(row[3]),
        )
    except ValueError as exc:
        raise SchemaError(f"{path}:{line_no}: {exc}") from exc


def iter_log_csv(path: str | Path) -> Iterator[Basket]:
    """Stream baskets from a receipt CSV without loading it whole.

    Yields baskets in file order; validation failures raise
    :class:`~repro.errors.SchemaError` with the offending line number.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _LOG_HEADER:
            raise SchemaError(f"unexpected CSV header in {path}: {header}")
        for line_no, row in enumerate(reader, start=2):
            yield _parse_row(path, line_no, row)


def stream_to_monitor(path: str | Path, monitor) -> list:
    """Pump a day-ordered receipt CSV into a streaming monitor.

    The file must be sorted by day (the monitor enforces it); returns the
    concatenated window-close reports including the final :meth:`finish`.
    """
    reports = list(monitor.ingest_many(iter_log_csv(path)))
    reports.extend(monitor.finish())
    return reports


class PartitionedLogWriter:
    """Writes a transaction stream into customer-hashed CSV shards.

    Shard of a basket: ``customer_id % n_shards``.  All baskets of one
    customer land in one shard, so per-customer computations (windowing,
    stability) can process shards independently — the unit of parallelism
    a 6M-customer deployment would fan out over.

    Use as a context manager::

        with PartitionedLogWriter(directory, n_shards=8) as writer:
            for basket in baskets:
                writer.write(basket)
    """

    def __init__(self, directory: str | Path, n_shards: int = 8) -> None:
        if n_shards <= 0:
            raise ConfigError(f"n_shards must be positive, got {n_shards}")
        self.directory = Path(directory)
        self.n_shards = int(n_shards)
        self._handles: list | None = None
        self._writers: list | None = None

    def shard_path(self, shard: int) -> Path:
        """Path of one shard file."""
        if not 0 <= shard < self.n_shards:
            raise ConfigError(f"shard {shard} out of range [0, {self.n_shards})")
        return self.directory / f"shard-{shard:04d}.csv"

    def __enter__(self) -> PartitionedLogWriter:
        self.directory.mkdir(parents=True, exist_ok=True)
        self._handles = [
            self.shard_path(shard).open("w", newline="")
            for shard in range(self.n_shards)
        ]
        self._writers = []
        for handle in self._handles:
            writer = csv.writer(handle)
            writer.writerow(_LOG_HEADER)
            self._writers.append(writer)
        return self

    def write(self, basket: Basket) -> None:
        """Append one basket to its customer's shard."""
        if self._writers is None:
            raise ConfigError("PartitionedLogWriter used outside its context")
        shard = basket.customer_id % self.n_shards
        self._writers[shard].writerow(
            [
                basket.customer_id,
                basket.day,
                " ".join(str(i) for i in sorted(basket.items)),
                f"{basket.monetary:.2f}",
            ]
        )

    def write_all(self, baskets: Iterable[Basket]) -> int:
        """Append many baskets; returns the count written."""
        count = 0
        for basket in baskets:
            self.write(basket)
            count += 1
        return count

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handles:
            for handle in self._handles:
                handle.close()
        self._handles = None
        self._writers = None


def iter_partitioned_log(
    directory: str | Path,
    shards: Iterable[int] | None = None,
    merge_by_day: bool = False,
) -> Iterator[Basket]:
    """Stream baskets back from a partitioned log directory.

    Parameters
    ----------
    directory:
        Directory written by :class:`PartitionedLogWriter`.
    shards:
        Restrict to specific shard numbers (default: every
        ``shard-*.csv`` present).
    merge_by_day:
        When true, k-way merge the shards on the day column so the
        combined stream is day-ordered (required by the streaming
        monitor).  Shard files written from a day-ordered source are
        individually day-ordered, which the merge relies on.
    """
    directory = Path(directory)
    if shards is None:
        paths = sorted(directory.glob("shard-*.csv"))
    else:
        writer = PartitionedLogWriter(directory, n_shards=max(shards) + 1)
        paths = [writer.shard_path(shard) for shard in sorted(set(shards))]
    missing = [p for p in paths if not p.exists()]
    if missing:
        raise SchemaError(f"missing shard files: {[str(p) for p in missing]}")
    if not merge_by_day:
        for path in paths:
            yield from iter_log_csv(path)
        return
    streams = [iter_log_csv(path) for path in paths]
    merged = heapq.merge(
        *(_keyed_stream(stream, index) for index, stream in enumerate(streams))
    )
    for __, __, basket in merged:
        yield basket


def _keyed_stream(stream: Iterator[Basket], index: int):
    """Wrap a basket stream with a (day, stream-index) sort key."""
    for basket in stream:
        yield (basket.day, index, basket)


@dataclass(frozen=True)
class DayBatch:
    """All baskets of one calendar day, in stream order.

    The unit of ingestion for the serving layer
    (:mod:`repro.serve`): a day is atomic — a checkpoint batch never
    splits one, so the resume cursor can count whole days.
    """

    day: int
    baskets: tuple[Basket, ...]

    @property
    def n_baskets(self) -> int:
        return len(self.baskets)


def iter_day_batches(baskets: Iterable[Basket]) -> Iterator[DayBatch]:
    """Group a day-ordered basket stream into :class:`DayBatch` chunks.

    Peak memory is one day's baskets.  Raises
    :class:`~repro.errors.DataError` the moment a basket's day
    regresses — the grouping must not silently reorder what the
    streaming monitor would have rejected.
    """
    current_day: int | None = None
    acc: list[Basket] = []
    for basket in baskets:
        if current_day is None:
            current_day = basket.day
        elif basket.day != current_day:
            if basket.day < current_day:
                raise DataError(
                    f"customer {basket.customer_id}: basket day "
                    f"{basket.day} regresses behind day {current_day}; "
                    f"day batches require a day-ordered stream"
                )
            yield DayBatch(day=current_day, baskets=tuple(acc))
            acc = []
            current_day = basket.day
        acc.append(basket)
    if current_day is not None:
        yield DayBatch(day=current_day, baskets=tuple(acc))
