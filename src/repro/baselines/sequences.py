"""Sequence-based churn baseline, after Miguéis et al. (ESWA 2012).

The paper's related work cites "models using first and last sequences of
purchased products" [2] as the previous improvement over RFM.  This module
implements that idea in the same per-window evaluation shape as the RFM
baseline: for each customer, features are derived from the *first* and
*last* sequences of product-category purchases observed up to the
evaluation window, and a logistic regression separates churners from loyal
customers.

Features (all computed on history strictly before the window end):

* similarity (Jaccard) between the categories of the first-q and last-q
  baskets — churners drift away from their original repertoire;
* number of distinct categories in the last-q baskets relative to the
  first-q — shrinking repertoires signal partial defection;
* length of the last purchase sequence inside the recent horizon;
* mean basket size in the last-q baskets over mean in the first-q.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, NotFittedError
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocess import StandardScaler, impute_finite

__all__ = ["SequenceFeatures", "extract_sequence_features", "SequenceModel"]

SEQUENCE_FEATURE_NAMES = (
    "first_last_jaccard",
    "repertoire_ratio",
    "recent_trip_count",
    "basket_size_ratio",
)


@dataclass(frozen=True, slots=True)
class SequenceFeatures:
    """First/last-sequence features of one customer at one window."""

    customer_id: int
    first_last_jaccard: float
    repertoire_ratio: float
    recent_trip_count: float
    basket_size_ratio: float

    def as_array(self) -> np.ndarray:
        return np.asarray(
            [
                self.first_last_jaccard,
                self.repertoire_ratio,
                self.recent_trip_count,
                self.basket_size_ratio,
            ],
            dtype=np.float64,
        )


def _category_union(baskets: Sequence[Basket]) -> frozenset[int]:
    union: set[int] = set()
    for basket in baskets:
        union |= basket.items
    return frozenset(union)


def extract_sequence_features(
    customer_id: int,
    history: Sequence[Basket],
    grid: WindowGrid,
    window_index: int,
    q: int = 10,
) -> SequenceFeatures:
    """First/last-sequence features at the end of ``window_index``.

    ``q`` is the sequence length (number of baskets) taken from each end
    of the observed history, following the first/last-sequence design of
    Miguéis et al.
    """
    if q <= 0:
        raise ConfigError(f"q must be positive, got {q}")
    begin, end = grid.bounds(window_index)
    observed = [b for b in history if b.day < end]
    if not observed:
        return SequenceFeatures(
            customer_id=customer_id,
            first_last_jaccard=0.0,
            repertoire_ratio=0.0,
            recent_trip_count=0.0,
            basket_size_ratio=0.0,
        )
    first = observed[:q]
    last = observed[-q:]
    first_cats = _category_union(first)
    last_cats = _category_union(last)
    union = first_cats | last_cats
    jaccard = len(first_cats & last_cats) / len(union) if union else 0.0
    repertoire = len(last_cats) / len(first_cats) if first_cats else 0.0
    recent = [b for b in observed if b.day >= begin]
    first_size = float(np.mean([b.size for b in first]))
    last_size = float(np.mean([b.size for b in last]))
    size_ratio = last_size / first_size if first_size else 0.0
    return SequenceFeatures(
        customer_id=customer_id,
        first_last_jaccard=jaccard,
        repertoire_ratio=repertoire,
        recent_trip_count=float(len(recent)),
        basket_size_ratio=size_ratio,
    )


class SequenceModel:
    """Logistic regression on first/last-sequence features.

    Mirrors the :class:`~repro.baselines.rfm.RFMModel` interface so
    the evaluation protocol can drive both identically.
    """

    def __init__(
        self,
        calendar: StudyCalendar,
        window_months: int = 2,
        q: int = 10,
        l2: float = 1e-2,
    ) -> None:
        if window_months <= 0:
            raise ConfigError(f"window_months must be positive, got {window_months}")
        if q <= 0:
            raise ConfigError(f"q must be positive, got {q}")
        self.calendar = calendar
        self.window_months = int(window_months)
        self.grid = WindowGrid.monthly(calendar, self.window_months)
        self.q = int(q)
        self.l2 = float(l2)
        self._scaler: StandardScaler | None = None
        self._classifier: LogisticRegression | None = None
        self._fitted_window: int | None = None

    @property
    def n_windows(self) -> int:
        return self.grid.n_windows

    def window_month(self, window_index: int) -> int:
        return self.grid.end_month(window_index, self.calendar)

    def _matrix(
        self, log: TransactionLog, customers: Iterable[int], window_index: int
    ) -> tuple[list[int], np.ndarray]:
        ids = list(customers)
        rows = [
            extract_sequence_features(
                customer, log.history(customer), self.grid, window_index, q=self.q
            ).as_array()
            for customer in ids
        ]
        matrix = (
            np.vstack(rows) if rows else np.empty((0, len(SEQUENCE_FEATURE_NAMES)))
        )
        return ids, matrix

    def fit(
        self,
        log: TransactionLog,
        cohorts: CohortLabels,
        window_index: int,
        customers: Iterable[int] | None = None,
    ) -> SequenceModel:
        """Train at one evaluation window (protocol-compatible)."""
        train_ids = (
            list(customers) if customers is not None else cohorts.all_customers()
        )
        ids, features = self._matrix(log, train_ids, window_index)
        labels = cohorts.label_vector(ids)
        features = impute_finite(features)
        self._scaler = StandardScaler().fit(features)
        self._classifier = LogisticRegression(l2=self.l2).fit(
            self._scaler.transform(features), labels
        )
        self._fitted_window = window_index
        return self

    def churn_scores(
        self,
        log: TransactionLog,
        customers: Iterable[int],
        window_index: int | None = None,
    ) -> dict[int, float]:
        """Defection probability per customer at the fitted window."""
        if self._classifier is None or self._scaler is None or self._fitted_window is None:
            raise NotFittedError("SequenceModel used before fit")
        index = self._fitted_window if window_index is None else window_index
        ids, features = self._matrix(log, customers, index)
        features = impute_finite(features)
        probabilities = self._classifier.predict_proba(self._scaler.transform(features))
        return dict(zip(ids, (float(p) for p in probabilities), strict=True))
