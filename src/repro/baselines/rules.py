"""Naive attrition baselines.

These rules bracket the serious models: any useful churn model must beat
:class:`RandomBaseline` (AUROC 0.5) and should beat the one-variable
heuristics retailers actually run (:class:`RecencyRule`,
:class:`FrequencyDropRule`).  They are used in the ablation benchmarks to
anchor the AUROC curves.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.baselines.rfm import extract_rfm
from repro.core.windowing import WindowGrid
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError

__all__ = ["RecencyRule", "FrequencyDropRule", "RandomBaseline"]


class RecencyRule:
    """Score = days since last purchase (normalised by elapsed span).

    The simplest actionable churn heuristic: the longer a customer has
    been silent, the more likely they are gone.
    """

    name = "recency"

    def __init__(self, grid: WindowGrid) -> None:
        self.grid = grid

    def churn_scores(
        self, log: TransactionLog, customers: Iterable[int], window_index: int
    ) -> dict[int, float]:
        begin, end = self.grid.bounds(window_index)
        del begin
        elapsed = float(end - self.grid.boundaries[0])
        scores: dict[int, float] = {}
        for customer_id in customers:
            features = extract_rfm(
                customer_id, log.history(customer_id), self.grid, window_index
            )
            scores[customer_id] = features.recency_days / elapsed
        return scores


class FrequencyDropRule:
    """Score = relative drop of trip frequency in the evaluation window.

    Compares trips inside the window against the customer's historical
    per-window average; a customer shopping far below their own baseline
    scores high.
    """

    name = "frequency-drop"

    def __init__(self, grid: WindowGrid) -> None:
        self.grid = grid

    def churn_scores(
        self, log: TransactionLog, customers: Iterable[int], window_index: int
    ) -> dict[int, float]:
        if window_index == 0:
            raise ConfigError("frequency-drop needs at least one prior window")
        scores: dict[int, float] = {}
        for customer_id in customers:
            history = log.history(customer_id)
            begin, end = self.grid.bounds(window_index)
            prior_trips = sum(
                1 for b in history if self.grid.boundaries[0] <= b.day < begin
            )
            window_trips = sum(1 for b in history if begin <= b.day < end)
            baseline = prior_trips / window_index  # mean trips per prior window
            if baseline == 0.0:
                scores[customer_id] = 0.5  # no history: neutral
            else:
                drop = 1.0 - window_trips / baseline
                scores[customer_id] = float(np.clip(drop, 0.0, 1.0))
        return scores


class RandomBaseline:
    """Uniform random scores — the AUROC 0.5 sanity anchor."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def churn_scores(
        self, log: TransactionLog, customers: Iterable[int], window_index: int
    ) -> dict[int, float]:
        del log
        rng = np.random.default_rng((self.seed, window_index))
        ids = list(customers)
        return dict(zip(ids, rng.random(len(ids)).tolist()))
