"""Naive attrition baselines.

These rules bracket the serious models: any useful churn model must beat
:class:`RandomBaseline` (AUROC 0.5) and should beat the one-variable
heuristics retailers actually run (:class:`RecencyRule`,
:class:`FrequencyDropRule`).  They are used in the ablation benchmarks to
anchor the AUROC curves.

All rules score from either a :class:`~repro.data.transactions.TransactionLog`
(per-customer reference path) or a
:class:`~repro.data.population.PopulationFrame` (vectorised columnar
path); the two are bit-identical because both run the same IEEE
operations on the same integers.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.baselines.rfm import extract_rfm, rfm_frame_matrix, FEATURE_NAMES
from repro.core.windowing import WindowGrid
from repro.data.population import PopulationFrame
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError

__all__ = ["RecencyRule", "FrequencyDropRule", "RandomBaseline"]

_RECENCY_COLUMN = FEATURE_NAMES.index("recency_days")


def _check_frame_grid(frame: PopulationFrame, grid: WindowGrid) -> None:
    if frame.grid != grid:
        raise ConfigError(
            "PopulationFrame grid does not match the rule's grid"
        )


class RecencyRule:
    """Score = days since last purchase (normalised by elapsed span).

    The simplest actionable churn heuristic: the longer a customer has
    been silent, the more likely they are gone.
    """

    name = "recency"
    supports_frame = True

    def __init__(self, grid: WindowGrid) -> None:
        self.grid = grid

    def churn_scores(
        self,
        log: TransactionLog | PopulationFrame,
        customers: Iterable[int],
        window_index: int,
    ) -> dict[int, float]:
        __, end = self.grid.bounds(window_index)
        elapsed = float(end - self.grid.boundaries[0])
        if isinstance(log, PopulationFrame):
            _check_frame_grid(log, self.grid)
            ids, matrix = rfm_frame_matrix(log, customers, window_index)
            recency = matrix[:, _RECENCY_COLUMN]
            return {
                customer_id: float(value / elapsed)
                for customer_id, value in zip(ids, recency, strict=True)
            }
        scores: dict[int, float] = {}
        for customer_id in customers:
            features = extract_rfm(
                customer_id, log.history(customer_id), self.grid, window_index
            )
            scores[customer_id] = features.recency_days / elapsed
        return scores


class FrequencyDropRule:
    """Score = relative drop of trip frequency in the evaluation window.

    Compares trips inside the window against the customer's historical
    per-window average; a customer shopping far below their own baseline
    scores high.
    """

    name = "frequency-drop"
    supports_frame = True

    def __init__(self, grid: WindowGrid) -> None:
        self.grid = grid

    def churn_scores(
        self,
        log: TransactionLog | PopulationFrame,
        customers: Iterable[int],
        window_index: int,
    ) -> dict[int, float]:
        if window_index == 0:
            raise ConfigError("frequency-drop needs at least one prior window")
        begin, end = self.grid.bounds(window_index)
        horizon = self.grid.boundaries[0]
        if isinstance(log, PopulationFrame):
            _check_frame_grid(log, self.grid)
            ids = list(customers)
            rows = log.rows_of(ids)
            days = log.basket_days
            offsets = log.basket_offsets
            lt_horizon = np.r_[0, np.cumsum(days < horizon)]
            lt_begin = np.r_[0, np.cumsum(days < begin)]
            lt_end = np.r_[0, np.cumsum(days < end)]
            lo, hi = offsets[rows], offsets[rows + 1]
            # day columns are sorted per customer, so these prefix-count
            # differences are exact trip counts per half-open interval
            prior = (lt_begin[hi] - lt_begin[lo]) - (
                lt_horizon[hi] - lt_horizon[lo]
            )
            window_trips = lt_end[hi] - lt_end[lo] - (lt_begin[hi] - lt_begin[lo])
            baseline = prior.astype(np.float64) / float(window_index)
            with np.errstate(invalid="ignore", divide="ignore"):
                drop = 1.0 - window_trips.astype(np.float64) / baseline
            score = np.where(
                baseline == 0.0, 0.5, np.clip(drop, 0.0, 1.0)
            )
            return {
                customer_id: float(value)
                for customer_id, value in zip(ids, score, strict=True)
            }
        scores: dict[int, float] = {}
        for customer_id in customers:
            history = log.history(customer_id)
            prior_trips = sum(1 for b in history if horizon <= b.day < begin)
            window_trips = sum(1 for b in history if begin <= b.day < end)
            baseline = prior_trips / window_index  # mean trips per prior window
            if baseline == 0.0:
                scores[customer_id] = 0.5  # no history: neutral
            else:
                drop = 1.0 - window_trips / baseline
                scores[customer_id] = float(np.clip(drop, 0.0, 1.0))
        return scores


class RandomBaseline:
    """Uniform random scores — the AUROC 0.5 sanity anchor."""

    name = "random"
    supports_frame = True

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def churn_scores(
        self,
        log: TransactionLog | PopulationFrame,
        customers: Iterable[int],
        window_index: int,
    ) -> dict[int, float]:
        del log
        rng = np.random.default_rng((self.seed, window_index))
        ids = list(customers)
        return dict(zip(ids, rng.random(len(ids)).tolist(), strict=True))
