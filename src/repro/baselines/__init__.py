"""Baseline attrition models the paper compares against.

The headline comparator is the RFM model (logistic regression on recency,
frequency and monetary predictors, after Buckinx & Van den Poel 2005);
:mod:`repro.baselines.rules` adds naive one-variable rules that anchor the
evaluation.
"""

from repro.baselines.behavioral import (
    BEHAVIORAL_FEATURE_NAMES,
    BehavioralFeatures,
    BehavioralModel,
    extract_behavioral,
)
from repro.baselines.ensemble import RankAverageEnsemble, StabilityMember, rank_normalise
from repro.baselines.rfm import (
    FEATURE_NAMES,
    RFMFeatures,
    RFMModel,
    extract_rfm,
    rfm_frame_matrix,
    rfm_matrix,
)
from repro.baselines.rules import FrequencyDropRule, RandomBaseline, RecencyRule
from repro.baselines.sequences import (
    SEQUENCE_FEATURE_NAMES,
    SequenceFeatures,
    SequenceModel,
    extract_sequence_features,
)

__all__ = [
    "BEHAVIORAL_FEATURE_NAMES",
    "BehavioralFeatures",
    "BehavioralModel",
    "FEATURE_NAMES",
    "FrequencyDropRule",
    "RFMFeatures",
    "RFMModel",
    "RandomBaseline",
    "RankAverageEnsemble",
    "RecencyRule",
    "StabilityMember",
    "rank_normalise",
    "SEQUENCE_FEATURE_NAMES",
    "SequenceFeatures",
    "SequenceModel",
    "extract_behavioral",
    "extract_rfm",
    "extract_sequence_features",
    "rfm_frame_matrix",
    "rfm_matrix",
]
