"""Rank-average ensemble of churn scorers.

The robustness study (DESIGN.md A7) shows the stability model and the
RFM model read *complementary* signals — basket content vs shopping
volume — and each dominates under a different churn mechanism.  The
natural follow-up is to combine them: :class:`RankAverageEnsemble`
averages the *rank-normalised* scores of its members, which is scale-free
(a logistic probability and a ``1 - stability`` score are not comparable
directly) and robust to any monotone miscalibration of a member.

The ensemble implements the same protocol duck type as the trainable
baselines (``fit`` / ``churn_scores`` / ``n_windows`` / ``window_month``),
so :class:`~repro.eval.campaign.compare_models`-style harnesses can drive
it unchanged.  Members may be:

* *trainable scorers* (RFM-like: ``fit(log, cohorts, window, customers)``
  then ``churn_scores(log, customers, window)``), or
* a fitted :class:`~repro.core.model.StabilityModel` wrapped by
  :class:`StabilityMember`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.model import StabilityModel
from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError

__all__ = ["StabilityMember", "RankAverageEnsemble", "rank_normalise"]


def rank_normalise(scores: dict[int, float]) -> dict[int, float]:
    """Map scores to midrank-based quantiles in [0, 1].

    Ties receive their midrank, so the transform is deterministic and
    order-preserving; a single customer maps to 0.5.
    """
    if not scores:
        return {}
    ids = sorted(scores)
    values = np.asarray([scores[c] for c in ids], dtype=np.float64)
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    i = 0
    sorted_values = values[order]
    while i < len(sorted_values):
        j = i
        while j + 1 < len(sorted_values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j)
        i = j + 1
    if len(values) == 1:
        quantiles = np.asarray([0.5])
    else:
        quantiles = ranks / (len(values) - 1)
    return {c: float(q) for c, q in zip(ids, quantiles, strict=True)}


class StabilityMember:
    """Adapts a :class:`StabilityModel` to the trainable-scorer protocol.

    ``fit`` (re)fits the stability model on the union of train and, when
    later scored, test customers — the model is unsupervised, so seeing
    ids at fit time leaks nothing.
    """

    name = "stability"

    def __init__(self, model: StabilityModel) -> None:
        self.model = model

    @property
    def n_windows(self) -> int:
        return self.model.n_windows

    def window_month(self, window_index: int) -> int:
        return self.model.window_month(window_index)

    def fit(
        self,
        log: TransactionLog,
        cohorts: CohortLabels,
        window_index: int,
        customers: Iterable[int] | None = None,
    ) -> StabilityMember:
        del cohorts, window_index, customers  # unsupervised: nothing to learn
        if not self.model.is_fitted:
            self.model.fit(log)
        return self

    def churn_scores(
        self,
        log: TransactionLog,
        customers: Iterable[int],
        window_index: int | None = None,
    ) -> dict[int, float]:
        ids = list(customers)
        missing = [c for c in ids if c not in set(self.model.customers())]
        if missing:
            # Extend the fit to cover newly requested customers.
            self.model.fit(log, sorted(set(self.model.customers()) | set(ids)))
        index = window_index if window_index is not None else self.model.n_windows - 1
        return self.model.churn_scores(index, ids)


class RankAverageEnsemble:
    """Average of rank-normalised member scores.

    Parameters
    ----------
    calendar:
        Study calendar (for the shared grid duck type).
    members:
        The scorers to combine; at least two.
    window_months:
        Window span; must match the members' grids.
    weights:
        Optional per-member weights (default: uniform).
    """

    name = "ensemble"

    def __init__(
        self,
        calendar: StudyCalendar,
        members: Sequence,
        window_months: int = 2,
        weights: Sequence[float] | None = None,
    ) -> None:
        if len(members) < 2:
            raise ConfigError("an ensemble needs at least two members")
        if weights is not None:
            if len(weights) != len(members):
                raise ConfigError(
                    f"{len(weights)} weights for {len(members)} members"
                )
            if any(w < 0 for w in weights) or sum(weights) == 0:
                raise ConfigError("weights must be non-negative and not all zero")
        from repro.core.windowing import WindowGrid

        self.calendar = calendar
        self.window_months = int(window_months)
        self.grid = WindowGrid.monthly(calendar, self.window_months)
        self.members = list(members)
        self.weights = (
            [float(w) for w in weights]
            if weights is not None
            else [1.0] * len(members)
        )
        for member in self.members:
            if member.n_windows != self.grid.n_windows:
                raise ConfigError(
                    f"member {getattr(member, 'name', member)!r} has a "
                    f"mismatched window grid"
                )

    @property
    def n_windows(self) -> int:
        return self.grid.n_windows

    def window_month(self, window_index: int) -> int:
        return self.grid.end_month(window_index, self.calendar)

    def fit(
        self,
        log: TransactionLog,
        cohorts: CohortLabels,
        window_index: int,
        customers: Iterable[int] | None = None,
    ) -> RankAverageEnsemble:
        """Fit every member at the evaluation window."""
        ids = list(customers) if customers is not None else None
        for member in self.members:
            member.fit(log, cohorts, window_index, ids)
        return self

    def churn_scores(
        self,
        log: TransactionLog,
        customers: Iterable[int],
        window_index: int | None = None,
    ) -> dict[int, float]:
        """Weighted mean of the members' rank-normalised scores."""
        ids = list(customers)
        total = {c: 0.0 for c in ids}
        weight_sum = sum(self.weights)
        for member, weight in zip(self.members, self.weights, strict=True):
            normalised = rank_normalise(
                member.churn_scores(log, ids, window_index)
            )
            for customer in ids:
                total[customer] += weight * normalised[customer]
        return {c: v / weight_sum for c, v in total.items()}
