"""The consolidated RFM baseline: features and classifier in one module.

The paper's baseline follows Buckinx & Van den Poel (EJOR 2005), "but we
only used predictors associated to the recency, frequency and monetary
variables".  This module carries the whole baseline:

* :func:`extract_rfm` — the per-customer reference extractor (one
  feature vector from one basket history);
* :func:`rfm_frame_matrix` — the columnar extractor: all customers'
  features straight from a
  :class:`~repro.data.population.PopulationFrame`'s basket columns, no
  per-customer loop;
* :func:`rfm_matrix` — the façade dispatching between the two (a
  differential test pins them bit-identical);
* :class:`RFMModel` — the logistic-regression churn classifier trained
  per evaluation window (formerly :mod:`repro.baselines.rfm_model`,
  which remains as a deprecation shim).

Feature families:

Recency
    * days between the customer's last purchase and the window end;
Frequency
    * number of shopping trips over the whole observed history;
    * number of trips inside the evaluation window (recent activity);
    * mean inter-purchase time in days;
Monetary
    * total spend over the observed history;
    * spend inside the evaluation window;
    * mean spend per trip.

All features are computed from baskets **up to the end of the evaluation
window** only — no peeking past the decision point.  Both extractors sum
monetary values with the same ``np.add.reduceat`` kernel over identical
contiguous basket ranges, which is what makes them bit-identical rather
than merely close.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.config import ExperimentConfig
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.population import PopulationFrame, range_segment_sums
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, NotFittedError
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocess import StandardScaler, impute_finite

__all__ = [
    "RFMFeatures",
    "FEATURE_NAMES",
    "extract_rfm",
    "rfm_matrix",
    "rfm_frame_matrix",
    "RFMModel",
]

#: Feature vector layout (column order of :func:`rfm_matrix`).
FEATURE_NAMES = (
    "recency_days",
    "frequency_total",
    "frequency_window",
    "interpurchase_mean_days",
    "monetary_total",
    "monetary_window",
    "monetary_per_trip",
)


@dataclass(frozen=True, slots=True)
class RFMFeatures:
    """RFM features of one customer at one evaluation window."""

    customer_id: int
    recency_days: float
    frequency_total: float
    frequency_window: float
    interpurchase_mean_days: float
    monetary_total: float
    monetary_window: float
    monetary_per_trip: float

    def as_array(self) -> np.ndarray:
        """Feature vector in :data:`FEATURE_NAMES` order."""
        return np.asarray(
            [
                self.recency_days,
                self.frequency_total,
                self.frequency_window,
                self.interpurchase_mean_days,
                self.monetary_total,
                self.monetary_window,
                self.monetary_per_trip,
            ],
            dtype=np.float64,
        )


def _monetary_sum(values: Sequence[float]) -> float:
    """Sum monetary values with the shared ``reduceat`` kernel.

    Both RFM paths must round identically; this is the scalar face of
    :func:`~repro.data.population.range_segment_sums`.
    """
    array = np.asarray(values, dtype=np.float64)
    if not len(array):
        return 0.0
    return float(np.add.reduceat(array, np.asarray([0]))[0])


def extract_rfm(
    customer_id: int,
    history: Sequence[Basket],
    grid: WindowGrid,
    window_index: int,
) -> RFMFeatures:
    """RFM features of one customer at the end of window ``window_index``.

    A customer with no purchase before the window end gets the most
    pessimistic well-defined values: recency equal to the full elapsed
    span, zero frequency and zero spend.
    """
    begin, end = grid.bounds(window_index)
    observed = [b for b in history if b.day < end]
    in_window = [b for b in observed if b.day >= begin]
    horizon_start = grid.boundaries[0]
    elapsed = float(end - horizon_start)

    if observed:
        days = sorted(b.day for b in observed)
        recency = float(end - days[-1])
        frequency_total = float(len(observed))
        if len(days) >= 2:
            interpurchase = float(np.mean(np.diff(days)))
        else:
            interpurchase = elapsed
        monetary_total = _monetary_sum([b.monetary for b in observed])
        monetary_per_trip = monetary_total / len(observed)
    else:
        recency = elapsed
        frequency_total = 0.0
        interpurchase = elapsed
        monetary_total = 0.0
        monetary_per_trip = 0.0

    return RFMFeatures(
        customer_id=customer_id,
        recency_days=recency,
        frequency_total=frequency_total,
        frequency_window=float(len(in_window)),
        interpurchase_mean_days=interpurchase,
        monetary_total=monetary_total,
        monetary_window=_monetary_sum([b.monetary for b in in_window]),
        monetary_per_trip=monetary_per_trip,
    )


def _checked_ids(customers: Iterable[int]) -> list[int]:
    ids = list(customers)
    if len(set(ids)) != len(ids):
        raise ConfigError("duplicate customer ids in RFM extraction")
    return ids


def rfm_frame_matrix(
    frame: PopulationFrame,
    customers: Iterable[int],
    window_index: int,
) -> tuple[list[int], np.ndarray]:
    """Feature matrix for many customers, straight off the basket columns.

    The columnar twin of the per-customer reference path: every feature
    comes from vectorised prefix counts and contiguous-range sums over
    the frame's ``basket_days`` / ``basket_monetary`` arrays.  Bit-
    identical to stacking :func:`extract_rfm` rows (differentially
    tested), at population scale.
    """
    ids = _checked_ids(customers)
    begin, end = frame.grid.bounds(window_index)
    elapsed = float(end - frame.grid.boundaries[0])
    if not ids:
        return ids, np.empty((0, len(FEATURE_NAMES)))
    rows = frame.rows_of(ids)  # raises DataError on unknown customers
    days = frame.basket_days
    offsets = frame.basket_offsets

    # Basket days are sorted within each customer, so ``day < end`` marks
    # a per-customer prefix and ``day < begin`` a shorter one; exact
    # integer prefix counts locate both boundaries in O(B).
    count_lt_end = np.r_[0, np.cumsum(days < end)]
    count_lt_begin = np.r_[0, np.cumsum(days < begin)]
    seg_lo = offsets[rows]
    seg_hi = offsets[rows + 1]
    n_observed = count_lt_end[seg_hi] - count_lt_end[seg_lo]
    n_before_window = count_lt_begin[seg_hi] - count_lt_begin[seg_lo]
    observed_end = seg_lo + n_observed
    window_start = seg_lo + n_before_window

    some = n_observed > 0
    if len(days):
        # Out-of-range guards only matter for zero-basket customers,
        # whose rows are overwritten by the ``some`` masks below.
        last_day = days[np.maximum(observed_end - 1, 0)]
        first_day = days[np.minimum(seg_lo, len(days) - 1)]
    else:
        last_day = np.zeros(len(ids), dtype=np.int64)
        first_day = np.zeros(len(ids), dtype=np.int64)
    recency = np.where(some, (end - last_day).astype(np.float64), elapsed)
    frequency_total = n_observed.astype(np.float64)
    frequency_window = (n_observed - n_before_window).astype(np.float64)
    # mean(diff(days)) telescopes to (last - first) / (n - 1) exactly:
    # the day offsets are small integers, so every partial sum is exact.
    spans = (last_day - first_day).astype(np.float64)
    interpurchase = np.where(
        n_observed >= 2,
        spans / np.maximum(n_observed - 1, 1).astype(np.float64),
        elapsed,
    )

    # Contiguous-range sums need ascending disjoint ranges; customer rows
    # arrive in caller order, so sum in row order and un-permute after.
    order = np.argsort(rows)
    totals = np.empty(len(ids), dtype=np.float64)
    windows = np.empty(len(ids), dtype=np.float64)
    totals[order] = range_segment_sums(
        frame.basket_monetary, seg_lo[order], observed_end[order]
    )
    windows[order] = range_segment_sums(
        frame.basket_monetary, window_start[order], observed_end[order]
    )
    per_trip = np.where(
        some, totals / np.maximum(n_observed, 1).astype(np.float64), 0.0
    )

    matrix = np.column_stack(
        [
            recency,
            frequency_total,
            frequency_window,
            interpurchase,
            totals,
            windows,
            per_trip,
        ]
    )
    return ids, matrix


def rfm_matrix(
    log: TransactionLog | PopulationFrame,
    customers: Iterable[int],
    grid: WindowGrid,
    window_index: int,
) -> tuple[list[int], np.ndarray]:
    """Feature matrix for many customers at one window.

    Returns the customer ids (in the given order) and the matrix whose
    columns follow :data:`FEATURE_NAMES`.  Customers absent from the log
    are rejected — label/feature misalignment is a silent-corruption
    hazard, so it fails loudly instead.

    Passing a :class:`~repro.data.population.PopulationFrame` routes to
    the columnar extractor (:func:`rfm_frame_matrix`); the grid must
    match the frame's.
    """
    if isinstance(log, PopulationFrame):
        if log.grid != grid:
            raise ConfigError(
                "PopulationFrame grid does not match the requested RFM grid"
            )
        return rfm_frame_matrix(log, customers, window_index)
    ids = _checked_ids(customers)
    rows = []
    for customer_id in ids:
        history = log.history(customer_id)  # raises DataError when absent
        rows.append(extract_rfm(customer_id, history, grid, window_index).as_array())
    matrix = np.vstack(rows) if rows else np.empty((0, len(FEATURE_NAMES)))
    return ids, matrix


class RFMModel:
    """RFM churn classifier evaluated on a shared window grid.

    Section 3.1 of the paper: "This RFM model is built using a logistic
    regression on these three types of variables."  The model is trained
    per evaluation window: features are extracted from the history
    available up to the window's end for the training customers,
    standardised, and fed to an L2 logistic regression; churn scores for
    test customers are the predicted defection probabilities at the same
    window.

    Parameters
    ----------
    calendar:
        Study calendar of the transaction log.
    window_months:
        Window span in months; kept equal to the stability model's span
        so both models are compared at identical decision points.
        Deprecated in favour of ``config``.
    l2:
        Regularisation strength of the logistic regression.
    config:
        Shared :class:`~repro.config.ExperimentConfig`; its
        ``window_months`` defines the grid and its validation guards the
        entry point.
    """

    #: The evaluation protocol passes a PopulationFrame instead of a log.
    supports_frame = True

    def __init__(
        self,
        calendar: StudyCalendar,
        window_months: int = 2,
        l2: float = 1e-2,
        config: ExperimentConfig | None = None,
    ) -> None:
        if config is None:
            config = ExperimentConfig(window_months=window_months)
        self.config = config
        self.calendar = calendar
        self.window_months = config.window_months
        self.grid = config.grid(calendar)
        self.l2 = float(l2)
        self._fitted_window: int | None = None
        self._scaler: StandardScaler | None = None
        self._classifier: LogisticRegression | None = None

    @property
    def n_windows(self) -> int:
        return self.grid.n_windows

    def window_month(self, window_index: int) -> int:
        """Months elapsed at the end of a window (Figure 1's x axis)."""
        return self.grid.end_month(window_index, self.calendar)

    # ------------------------------------------------------------------
    # Train / score
    # ------------------------------------------------------------------
    def fit(
        self,
        log: TransactionLog | PopulationFrame,
        cohorts: CohortLabels,
        window_index: int,
        customers: Iterable[int] | None = None,
    ) -> RFMModel:
        """Train the logistic regression at one evaluation window.

        Parameters
        ----------
        log:
            Transaction log (any abstraction level; only timing and
            monetary values are used) or a pre-built
            :class:`~repro.data.population.PopulationFrame` on this
            model's grid.
        cohorts:
            Labels for the training customers.
        window_index:
            The evaluation window the features are anchored at.
        customers:
            Training customers (default: every labelled customer).
        """
        train_ids = (
            list(customers) if customers is not None else cohorts.all_customers()
        )
        ids, features = rfm_matrix(log, train_ids, self.grid, window_index)
        labels = cohorts.label_vector(ids)
        features = impute_finite(features)
        self._scaler = StandardScaler().fit(features)
        self._classifier = LogisticRegression(l2=self.l2).fit(
            self._scaler.transform(features), labels
        )
        self._fitted_window = window_index
        return self

    def churn_scores(
        self,
        log: TransactionLog | PopulationFrame,
        customers: Iterable[int],
        window_index: int | None = None,
    ) -> dict[int, float]:
        """Defection probability per customer at the fitted window.

        ``window_index`` defaults to the window the model was fitted at;
        passing a different window scores features from that window with
        the coefficients learned at the fitted one (time-transfer use).
        """
        if self._classifier is None or self._scaler is None or self._fitted_window is None:
            raise NotFittedError("RFMModel used before fit")
        index = self._fitted_window if window_index is None else window_index
        ids, features = rfm_matrix(log, customers, self.grid, index)
        features = impute_finite(features)
        probabilities = self._classifier.predict_proba(self._scaler.transform(features))
        return dict(zip(ids, (float(p) for p in probabilities), strict=True))

    @property
    def coefficients(self) -> np.ndarray:
        """Learned feature weights (in :data:`FEATURE_NAMES` order)."""
        if self._classifier is None or self._classifier.coef_ is None:
            raise NotFittedError("RFMModel used before fit")
        return self._classifier.coef_.copy()
