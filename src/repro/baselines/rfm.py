"""RFM feature extraction: recency, frequency and monetary variables.

The paper's baseline follows Buckinx & Van den Poel (EJOR 2005), "but we
only used predictors associated to the recency, frequency and monetary
variables".  Accordingly this extractor produces a small feature vector
per customer at an evaluation window, each feature associated with one of
the three behavioural variable families:

Recency
    * days between the customer's last purchase and the window end;
Frequency
    * number of shopping trips over the whole observed history;
    * number of trips inside the evaluation window (recent activity);
    * mean inter-purchase time in days;
Monetary
    * total spend over the observed history;
    * spend inside the evaluation window;
    * mean spend per trip.

All features are computed from baskets **up to the end of the evaluation
window** only — no peeking past the decision point.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError

__all__ = ["RFMFeatures", "FEATURE_NAMES", "extract_rfm", "rfm_matrix"]

#: Feature vector layout (column order of :func:`rfm_matrix`).
FEATURE_NAMES = (
    "recency_days",
    "frequency_total",
    "frequency_window",
    "interpurchase_mean_days",
    "monetary_total",
    "monetary_window",
    "monetary_per_trip",
)


@dataclass(frozen=True, slots=True)
class RFMFeatures:
    """RFM features of one customer at one evaluation window."""

    customer_id: int
    recency_days: float
    frequency_total: float
    frequency_window: float
    interpurchase_mean_days: float
    monetary_total: float
    monetary_window: float
    monetary_per_trip: float

    def as_array(self) -> np.ndarray:
        """Feature vector in :data:`FEATURE_NAMES` order."""
        return np.asarray(
            [
                self.recency_days,
                self.frequency_total,
                self.frequency_window,
                self.interpurchase_mean_days,
                self.monetary_total,
                self.monetary_window,
                self.monetary_per_trip,
            ],
            dtype=np.float64,
        )


def extract_rfm(
    customer_id: int,
    history: Sequence[Basket],
    grid: WindowGrid,
    window_index: int,
) -> RFMFeatures:
    """RFM features of one customer at the end of window ``window_index``.

    A customer with no purchase before the window end gets the most
    pessimistic well-defined values: recency equal to the full elapsed
    span, zero frequency and zero spend.
    """
    begin, end = grid.bounds(window_index)
    observed = [b for b in history if b.day < end]
    in_window = [b for b in observed if b.day >= begin]
    horizon_start = grid.boundaries[0]
    elapsed = float(end - horizon_start)

    if observed:
        days = sorted(b.day for b in observed)
        recency = float(end - days[-1])
        frequency_total = float(len(observed))
        if len(days) >= 2:
            interpurchase = float(np.mean(np.diff(days)))
        else:
            interpurchase = elapsed
        monetary_total = float(sum(b.monetary for b in observed))
        monetary_per_trip = monetary_total / len(observed)
    else:
        recency = elapsed
        frequency_total = 0.0
        interpurchase = elapsed
        monetary_total = 0.0
        monetary_per_trip = 0.0

    return RFMFeatures(
        customer_id=customer_id,
        recency_days=recency,
        frequency_total=frequency_total,
        frequency_window=float(len(in_window)),
        interpurchase_mean_days=interpurchase,
        monetary_total=monetary_total,
        monetary_window=float(sum(b.monetary for b in in_window)),
        monetary_per_trip=monetary_per_trip,
    )


def rfm_matrix(
    log: TransactionLog,
    customers: Iterable[int],
    grid: WindowGrid,
    window_index: int,
) -> tuple[list[int], np.ndarray]:
    """Feature matrix for many customers at one window.

    Returns the customer ids (in the given order) and the matrix whose
    columns follow :data:`FEATURE_NAMES`.  Customers absent from the log
    are rejected — label/feature misalignment is a silent-corruption
    hazard, so it fails loudly instead.
    """
    ids = list(customers)
    if len(set(ids)) != len(ids):
        raise ConfigError("duplicate customer ids in RFM extraction")
    rows = []
    for customer_id in ids:
        history = log.history(customer_id)  # raises DataError when absent
        rows.append(extract_rfm(customer_id, history, grid, window_index).as_array())
    matrix = np.vstack(rows) if rows else np.empty((0, len(FEATURE_NAMES)))
    return ids, matrix
