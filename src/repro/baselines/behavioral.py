"""Extended behavioural features, after Buckinx & Van den Poel (EJOR 2005).

The paper restricted its baseline to predictors "associated to the
recency, frequency and monetary variables"; Buckinx & Van den Poel's full
model used a broader behavioural battery.  This module implements that
richer variant for the ablation study: everything RFM has, plus

* **regularity** — coefficient of variation of inter-purchase times (loyal
  grocery shoppers are metronomes; churn disrupts the cadence);
* **category breadth** — distinct items bought in the recent horizon
  vs over the whole history (partial defection shrinks breadth);
* **basket-size trend** — slope of basket size over the last trips;
* **monetary trend** — slope of receipt value over the last trips.

The :class:`BehavioralModel` mirrors the RFM model's interface, so the
protocol can evaluate RFM vs extended-behavioural side by side — an
ablation of how much headroom the paper's restriction left on the table.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.baselines.rfm import extract_rfm
from repro.core.windowing import WindowGrid
from repro.data.basket import Basket
from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, NotFittedError
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocess import StandardScaler, impute_finite

__all__ = ["BehavioralFeatures", "extract_behavioral", "BehavioralModel"]

BEHAVIORAL_FEATURE_NAMES = (
    "recency_days",
    "frequency_total",
    "frequency_window",
    "interpurchase_mean_days",
    "monetary_total",
    "monetary_window",
    "monetary_per_trip",
    "interpurchase_cv",
    "breadth_ratio",
    "basket_size_trend",
    "monetary_trend",
)


@dataclass(frozen=True, slots=True)
class BehavioralFeatures:
    """The extended Buckinx-style feature vector of one customer."""

    customer_id: int
    values: tuple[float, ...]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=np.float64)


def _slope(values: Sequence[float]) -> float:
    """Least-squares slope of a series against its index (0 if short)."""
    if len(values) < 2:
        return 0.0
    x = np.arange(len(values), dtype=np.float64)
    y = np.asarray(values, dtype=np.float64)
    x_centred = x - x.mean()
    denominator = float((x_centred**2).sum())
    if denominator == 0.0:
        return 0.0
    return float((x_centred * (y - y.mean())).sum() / denominator)


def extract_behavioral(
    customer_id: int,
    history: Sequence[Basket],
    grid: WindowGrid,
    window_index: int,
    trend_trips: int = 10,
) -> BehavioralFeatures:
    """Extended behavioural features at the end of ``window_index``."""
    if trend_trips < 2:
        raise ConfigError(f"trend_trips must be >= 2, got {trend_trips}")
    rfm = extract_rfm(customer_id, history, grid, window_index)
    __, end = grid.bounds(window_index)
    observed = [b for b in history if b.day < end]

    if len(observed) >= 3:
        gaps = np.diff([b.day for b in observed]).astype(np.float64)
        mean_gap = float(gaps.mean())
        cv = float(gaps.std() / mean_gap) if mean_gap > 0 else 0.0
    else:
        cv = 0.0

    all_items = {item for b in observed for item in b.items}
    recent = observed[-trend_trips:]
    recent_items = {item for b in recent for item in b.items}
    breadth_ratio = len(recent_items) / len(all_items) if all_items else 0.0

    basket_trend = _slope([b.size for b in recent])
    monetary_trend = _slope([b.monetary for b in recent])

    return BehavioralFeatures(
        customer_id=customer_id,
        values=(
            rfm.recency_days,
            rfm.frequency_total,
            rfm.frequency_window,
            rfm.interpurchase_mean_days,
            rfm.monetary_total,
            rfm.monetary_window,
            rfm.monetary_per_trip,
            cv,
            breadth_ratio,
            basket_trend,
            monetary_trend,
        ),
    )


class BehavioralModel:
    """Logistic regression on the extended behavioural battery.

    Interface-compatible with :class:`~repro.baselines.rfm.RFMModel`.
    """

    def __init__(
        self,
        calendar: StudyCalendar,
        window_months: int = 2,
        l2: float = 1e-2,
        trend_trips: int = 10,
    ) -> None:
        if window_months <= 0:
            raise ConfigError(f"window_months must be positive, got {window_months}")
        self.calendar = calendar
        self.window_months = int(window_months)
        self.grid = WindowGrid.monthly(calendar, self.window_months)
        self.l2 = float(l2)
        self.trend_trips = int(trend_trips)
        self._scaler: StandardScaler | None = None
        self._classifier: LogisticRegression | None = None
        self._fitted_window: int | None = None

    @property
    def n_windows(self) -> int:
        return self.grid.n_windows

    def window_month(self, window_index: int) -> int:
        return self.grid.end_month(window_index, self.calendar)

    def _matrix(
        self, log: TransactionLog, customers: Iterable[int], window_index: int
    ) -> tuple[list[int], np.ndarray]:
        ids = list(customers)
        rows = [
            extract_behavioral(
                customer,
                log.history(customer),
                self.grid,
                window_index,
                trend_trips=self.trend_trips,
            ).as_array()
            for customer in ids
        ]
        matrix = (
            np.vstack(rows) if rows else np.empty((0, len(BEHAVIORAL_FEATURE_NAMES)))
        )
        return ids, matrix

    def fit(
        self,
        log: TransactionLog,
        cohorts: CohortLabels,
        window_index: int,
        customers: Iterable[int] | None = None,
    ) -> BehavioralModel:
        """Train at one evaluation window (protocol-compatible)."""
        train_ids = (
            list(customers) if customers is not None else cohorts.all_customers()
        )
        ids, features = self._matrix(log, train_ids, window_index)
        labels = cohorts.label_vector(ids)
        features = impute_finite(features)
        self._scaler = StandardScaler().fit(features)
        self._classifier = LogisticRegression(l2=self.l2).fit(
            self._scaler.transform(features), labels
        )
        self._fitted_window = window_index
        return self

    def churn_scores(
        self,
        log: TransactionLog,
        customers: Iterable[int],
        window_index: int | None = None,
    ) -> dict[int, float]:
        """Defection probability per customer at the fitted window."""
        if self._classifier is None or self._scaler is None or self._fitted_window is None:
            raise NotFittedError("BehavioralModel used before fit")
        index = self._fitted_window if window_index is None else window_index
        ids, features = self._matrix(log, customers, index)
        features = impute_finite(features)
        probabilities = self._classifier.predict_proba(self._scaler.transform(features))
        return dict(zip(ids, (float(p) for p in probabilities), strict=True))
