"""The RFM attrition baseline: logistic regression on RFM features.

Section 3.1 of the paper: "This RFM model is built using a logistic
regression on these three types of variables.  The methodology we used to
compute the RFM model is similar to the one presented in [Buckinx & Van
den Poel 2005], but we only used predictors associated to the recency,
frequency and monetary variables."

The model is trained per evaluation window: features are extracted from
the history available up to the window's end for the training customers,
standardised, and fed to an L2 logistic regression; churn scores for test
customers are the predicted defection probabilities at the same window.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.baselines.rfm import rfm_matrix
from repro.core.windowing import WindowGrid
from repro.data.calendar import StudyCalendar
from repro.data.cohorts import CohortLabels
from repro.data.transactions import TransactionLog
from repro.errors import ConfigError, NotFittedError
from repro.ml.logistic import LogisticRegression
from repro.ml.preprocess import StandardScaler, impute_finite

__all__ = ["RFMModel"]


class RFMModel:
    """RFM churn classifier evaluated on a shared window grid.

    Parameters
    ----------
    calendar:
        Study calendar of the transaction log.
    window_months:
        Window span in months; kept equal to the stability model's span
        so both models are compared at identical decision points.
    l2:
        Regularisation strength of the logistic regression.
    """

    def __init__(
        self,
        calendar: StudyCalendar,
        window_months: int = 2,
        l2: float = 1e-2,
    ) -> None:
        if window_months <= 0:
            raise ConfigError(f"window_months must be positive, got {window_months}")
        self.calendar = calendar
        self.window_months = int(window_months)
        self.grid = WindowGrid.monthly(calendar, self.window_months)
        self.l2 = float(l2)
        self._fitted_window: int | None = None
        self._scaler: StandardScaler | None = None
        self._classifier: LogisticRegression | None = None

    @property
    def n_windows(self) -> int:
        return self.grid.n_windows

    def window_month(self, window_index: int) -> int:
        """Months elapsed at the end of a window (Figure 1's x axis)."""
        return self.grid.end_month(window_index, self.calendar)

    # ------------------------------------------------------------------
    # Train / score
    # ------------------------------------------------------------------
    def fit(
        self,
        log: TransactionLog,
        cohorts: CohortLabels,
        window_index: int,
        customers: Iterable[int] | None = None,
    ) -> "RFMModel":
        """Train the logistic regression at one evaluation window.

        Parameters
        ----------
        log:
            Transaction log (any abstraction level; only timing and
            monetary values are used).
        cohorts:
            Labels for the training customers.
        window_index:
            The evaluation window the features are anchored at.
        customers:
            Training customers (default: every labelled customer).
        """
        train_ids = (
            list(customers) if customers is not None else cohorts.all_customers()
        )
        ids, features = rfm_matrix(log, train_ids, self.grid, window_index)
        labels = cohorts.label_vector(ids)
        features = impute_finite(features)
        self._scaler = StandardScaler().fit(features)
        self._classifier = LogisticRegression(l2=self.l2).fit(
            self._scaler.transform(features), labels
        )
        self._fitted_window = window_index
        return self

    def churn_scores(
        self,
        log: TransactionLog,
        customers: Iterable[int],
        window_index: int | None = None,
    ) -> dict[int, float]:
        """Defection probability per customer at the fitted window.

        ``window_index`` defaults to the window the model was fitted at;
        passing a different window scores features from that window with
        the coefficients learned at the fitted one (time-transfer use).
        """
        if self._classifier is None or self._scaler is None or self._fitted_window is None:
            raise NotFittedError("RFMModel used before fit")
        index = self._fitted_window if window_index is None else window_index
        ids, features = rfm_matrix(log, customers, self.grid, index)
        features = impute_finite(features)
        probabilities = self._classifier.predict_proba(self._scaler.transform(features))
        return dict(zip(ids, (float(p) for p in probabilities)))

    @property
    def coefficients(self) -> np.ndarray:
        """Learned feature weights (in :data:`~repro.baselines.rfm.FEATURE_NAMES` order)."""
        if self._classifier is None or self._classifier.coef_ is None:
            raise NotFittedError("RFMModel used before fit")
        return self._classifier.coef_.copy()
