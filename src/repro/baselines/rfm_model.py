"""Deprecated shim: :class:`RFMModel` moved to :mod:`repro.baselines.rfm`.

The RFM baseline (features + classifier) is consolidated in one module;
import :class:`~repro.baselines.rfm.RFMModel` from there.  This alias
module is kept for one release and will then be removed.
"""

from __future__ import annotations

import warnings

from repro.baselines.rfm import RFMModel

__all__ = ["RFMModel"]

warnings.warn(
    "repro.baselines.rfm_model is deprecated; import RFMModel from "
    "repro.baselines.rfm instead",
    DeprecationWarning,
    stacklevel=2,
)
