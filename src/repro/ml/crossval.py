"""Cross-validation splitters and grid search.

The paper selects its hyper-parameters (window length 2 months, alpha = 2)
"after performing a 5-fold cross-validation search".  This module provides
the splitters (plain and stratified k-fold over customers) and a small
generic grid-search driver used by :mod:`repro.core.tuning`.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, DataError

__all__ = ["KFold", "StratifiedKFold", "GridSearchResult", "grid_search"]


class KFold:
    """Deterministic k-fold splitter over ``n`` indices.

    Parameters
    ----------
    n_splits:
        Number of folds (>= 2).
    shuffle:
        Whether to shuffle indices before splitting.
    seed:
        Seed for the shuffle (ignored when ``shuffle`` is false).
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ConfigError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)

    def split(self, n: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n < self.n_splits:
            raise DataError(f"cannot split {n} samples into {self.n_splits} folds")
        indices = np.arange(n)
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            rng.shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield np.sort(train), np.sort(test)


class StratifiedKFold:
    """K-fold splitter preserving the class ratio in every fold.

    Stratification matters here because churner cohorts can be much
    smaller than loyal cohorts; a plain split could produce folds with no
    positive examples, making AUROC undefined.
    """

    def __init__(self, n_splits: int = 5, shuffle: bool = True, seed: int = 0) -> None:
        if n_splits < 2:
            raise ConfigError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)

    def split(self, labels: np.ndarray) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` stratified on ``labels``."""
        labels = np.asarray(labels)
        if labels.ndim != 1:
            raise DataError(f"labels must be 1-D, got ndim={labels.ndim}")
        rng = np.random.default_rng(self.seed)
        per_class_folds: list[list[np.ndarray]] = []
        for value in np.unique(labels):
            class_indices = np.flatnonzero(labels == value)
            if len(class_indices) < self.n_splits:
                raise DataError(
                    f"class {value!r} has {len(class_indices)} samples, fewer than "
                    f"{self.n_splits} folds"
                )
            if self.shuffle:
                rng.shuffle(class_indices)
            per_class_folds.append(np.array_split(class_indices, self.n_splits))
        for i in range(self.n_splits):
            test = np.sort(np.concatenate([folds[i] for folds in per_class_folds]))
            train_parts = [
                folds[j]
                for folds in per_class_folds
                for j in range(self.n_splits)
                if j != i
            ]
            yield np.sort(np.concatenate(train_parts)), test


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of a grid search.

    Attributes
    ----------
    best_params:
        The parameter dict with the highest mean score.
    best_score:
        Its mean cross-validated score.
    table:
        One entry per grid point: ``(params, mean_score, fold_scores)``.
    """

    best_params: dict
    best_score: float
    table: list[tuple[dict, float, list[float]]]


def grid_search(
    param_grid: dict[str, Sequence],
    score_fn: Callable[[dict, np.ndarray, np.ndarray], float],
    folds: Sequence[tuple[np.ndarray, np.ndarray]],
) -> GridSearchResult:
    """Exhaustive search over a parameter grid with precomputed folds.

    Parameters
    ----------
    param_grid:
        Mapping from parameter name to the values to try; the search
        covers the Cartesian product.
    score_fn:
        ``score_fn(params, train_indices, test_indices) -> float``; higher
        is better.
    folds:
        The ``(train, test)`` index pairs, shared across grid points so
        every parameter combination is scored on identical splits.

    Raises
    ------
    ConfigError
        If the grid or the fold list is empty.
    """
    if not param_grid or any(len(v) == 0 for v in param_grid.values()):
        raise ConfigError("param_grid must be non-empty with non-empty value lists")
    folds = list(folds)
    if not folds:
        raise ConfigError("grid_search requires at least one fold")
    names = sorted(param_grid)
    table: list[tuple[dict, float, list[float]]] = []
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values, strict=True))
        fold_scores = [float(score_fn(params, train, test)) for train, test in folds]
        table.append((params, float(np.mean(fold_scores)), fold_scores))
    best_params, best_score, _ = max(table, key=lambda entry: entry[1])
    return GridSearchResult(best_params=best_params, best_score=best_score, table=table)
