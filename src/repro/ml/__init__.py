"""Machine-learning substrate: logistic regression, metrics, CV.

scikit-learn is not available in this environment, so the pieces the RFM
baseline and the evaluation protocol need are implemented from scratch on
numpy: an L2 logistic regression (IRLS), a standard scaler, ROC/AUROC and
campaign metrics, and k-fold / stratified k-fold cross-validation with a
generic grid search.
"""

from repro.ml.bootstrap import ConfidenceInterval, bootstrap_auroc_ci
from repro.ml.calibration import (
    PlattCalibrator,
    ReliabilityBin,
    expected_calibration_error,
    reliability_curve,
)
from repro.ml.crossval import GridSearchResult, KFold, StratifiedKFold, grid_search
from repro.ml.logistic import LogisticRegression, log_loss, sigmoid
from repro.ml.metrics import (
    ConfusionMatrix,
    RocCurve,
    auroc,
    brier_score,
    confusion_at_threshold,
    lift_at_fraction,
    precision_recall_f1,
    roc_curve,
)
from repro.ml.preprocess import StandardScaler, impute_finite

__all__ = [
    "ConfidenceInterval",
    "ConfusionMatrix",
    "GridSearchResult",
    "bootstrap_auroc_ci",
    "KFold",
    "LogisticRegression",
    "PlattCalibrator",
    "ReliabilityBin",
    "expected_calibration_error",
    "reliability_curve",
    "RocCurve",
    "StandardScaler",
    "StratifiedKFold",
    "auroc",
    "brier_score",
    "confusion_at_threshold",
    "grid_search",
    "impute_finite",
    "lift_at_fraction",
    "log_loss",
    "precision_recall_f1",
    "roc_curve",
    "sigmoid",
]
