"""Feature preprocessing: standardisation and imputation.

The RFM baseline feeds raw behavioural variables (days, counts, currency)
into a logistic regression; standardising them is required for the
regulariser to penalise coefficients comparably.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError, NotFittedError

__all__ = ["StandardScaler", "impute_finite"]


def impute_finite(matrix: np.ndarray, fill: float | None = None) -> np.ndarray:
    """Replace non-finite entries column-wise.

    Non-finite values (NaN, +/-inf) are replaced by the column mean of the
    finite entries, or by ``fill`` when given (or when a column has no
    finite entry at all, in which case ``fill`` defaults to 0).
    """
    matrix = np.array(matrix, dtype=np.float64, copy=True)
    if matrix.ndim != 2:
        raise DataError(f"expected a 2-D feature matrix, got ndim={matrix.ndim}")
    for col in range(matrix.shape[1]):
        column = matrix[:, col]
        bad = ~np.isfinite(column)
        if not bad.any():
            continue
        if fill is not None:
            replacement = fill
        else:
            finite = column[~bad]
            replacement = float(finite.mean()) if finite.size else 0.0
        column[bad] = replacement
    return matrix


class StandardScaler:
    """Zero-mean, unit-variance feature scaling.

    Columns with zero variance are left centred but unscaled (divisor 1),
    so constant features do not produce NaNs.

    Examples
    --------
    >>> scaler = StandardScaler()
    >>> scaled = scaler.fit_transform(np.array([[0.0], [2.0]]))
    >>> scaled.ravel().tolist()
    [-1.0, 1.0]
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, matrix: np.ndarray) -> StandardScaler:
        """Learn per-column mean and standard deviation."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise DataError(f"expected a 2-D feature matrix, got ndim={matrix.ndim}")
        if matrix.shape[0] == 0:
            raise DataError("cannot fit a scaler on an empty matrix")
        self.mean_ = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != self.mean_.shape[0]:
            raise DataError(
                f"matrix shape {matrix.shape} does not match fitted "
                f"n_features={self.mean_.shape[0]}"
            )
        return (matrix - self.mean_) / self.scale_

    def fit_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(matrix).transform(matrix)

    def inverse_transform(self, matrix: np.ndarray) -> np.ndarray:
        """Undo the scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform called before fit")
        return np.asarray(matrix, dtype=np.float64) * self.scale_ + self.mean_
