"""Binary classification metrics: ROC, AUROC, confusion-based scores, lift.

The paper's headline measurement is the **area under the ROC curve** of
the churn score at each evaluation window (Figure 1).  AUROC is computed
by the rank statistic (equivalent to the Mann-Whitney U), with the
standard midrank correction for tied scores — this matches trapezoidal
integration of the ROC curve exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DataError

__all__ = [
    "auroc",
    "roc_curve",
    "RocCurve",
    "confusion_at_threshold",
    "ConfusionMatrix",
    "precision_recall_f1",
    "lift_at_fraction",
    "brier_score",
]


def _validate_scores(y_true: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.ndim != 1 or scores.ndim != 1 or y_true.shape != scores.shape:
        raise DataError(
            f"labels and scores must be 1-D and same length, got "
            f"{y_true.shape} vs {scores.shape}"
        )
    labels = set(np.unique(y_true).tolist())
    if not labels <= {0, 1}:
        raise DataError(f"labels must be 0/1, got {sorted(labels)}")
    if not np.isfinite(scores).all():
        raise DataError("scores contain non-finite values")
    return y_true, scores


def auroc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the midrank (Mann-Whitney) statistic.

    Higher scores must indicate the positive class.  Requires at least
    one positive and one negative example.

    Raises
    ------
    DataError
        If only one class is present (AUROC is undefined).
    """
    y_true, scores = _validate_scores(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("AUROC undefined: need both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    # Midranks: average rank within each tie group.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[y_true == 1].sum())
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u_statistic / (n_pos * n_neg)


@dataclass(frozen=True)
class RocCurve:
    """An ROC curve: parallel arrays of FPR, TPR and the thresholds used."""

    fpr: np.ndarray
    tpr: np.ndarray
    thresholds: np.ndarray

    def area(self) -> float:
        """Trapezoidal area under the curve."""
        return float(np.trapezoid(self.tpr, self.fpr))


def roc_curve(y_true: np.ndarray, scores: np.ndarray) -> RocCurve:
    """ROC curve points at every distinct score threshold.

    Thresholds are the distinct scores in decreasing order, preceded by
    ``+inf`` (the all-negative operating point); the curve therefore
    starts at (0, 0) and ends at (1, 1).
    """
    y_true, scores = _validate_scores(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise DataError("ROC curve undefined: need both classes present")
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = y_true[order]
    sorted_scores = scores[order]
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(1 - sorted_labels)
    # Keep only the last point of each tie group.
    distinct = np.r_[np.flatnonzero(np.diff(sorted_scores)), len(sorted_scores) - 1]
    tpr = np.r_[0.0, tps[distinct] / n_pos]
    fpr = np.r_[0.0, fps[distinct] / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[distinct]]
    return RocCurve(fpr=fpr, tpr=tpr, thresholds=thresholds)


@dataclass(frozen=True)
class ConfusionMatrix:
    """2x2 confusion matrix counts."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def n(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        return (self.tp + self.tn) / self.n if self.n else 0.0

    @property
    def tpr(self) -> float:
        positives = self.tp + self.fn
        return self.tp / positives if positives else 0.0

    @property
    def fpr(self) -> float:
        negatives = self.fp + self.tn
        return self.fp / negatives if negatives else 0.0


def confusion_at_threshold(
    y_true: np.ndarray, scores: np.ndarray, threshold: float
) -> ConfusionMatrix:
    """Confusion matrix when predicting positive for ``score >= threshold``."""
    y_true, scores = _validate_scores(y_true, scores)
    predicted = scores >= threshold
    actual = y_true == 1
    return ConfusionMatrix(
        tp=int(np.sum(predicted & actual)),
        fp=int(np.sum(predicted & ~actual)),
        tn=int(np.sum(~predicted & ~actual)),
        fn=int(np.sum(~predicted & actual)),
    )


def precision_recall_f1(
    y_true: np.ndarray, scores: np.ndarray, threshold: float
) -> tuple[float, float, float]:
    """Precision, recall and F1 at a score threshold (0 when undefined)."""
    cm = confusion_at_threshold(y_true, scores, threshold)
    precision = cm.tp / (cm.tp + cm.fp) if (cm.tp + cm.fp) else 0.0
    recall = cm.tp / (cm.tp + cm.fn) if (cm.tp + cm.fn) else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return precision, recall, f1


def lift_at_fraction(y_true: np.ndarray, scores: np.ndarray, fraction: float) -> float:
    """Lift of the top ``fraction`` of customers by score.

    Lift = (positive rate among the targeted top fraction) / (base rate).
    This is the metric a retailer cares about when budgeting a retention
    campaign for the riskiest X% of customers.
    """
    if not 0.0 < fraction <= 1.0:
        raise DataError(f"fraction must be in (0, 1], got {fraction}")
    y_true, scores = _validate_scores(y_true, scores)
    base_rate = float(y_true.mean())
    if base_rate == 0.0:
        raise DataError("lift undefined: no positive examples")
    k = max(1, int(round(fraction * len(y_true))))
    top = np.argsort(-scores, kind="mergesort")[:k]
    top_rate = float(y_true[top].mean())
    return top_rate / base_rate


def brier_score(y_true: np.ndarray, probs: np.ndarray) -> float:
    """Mean squared error of probabilistic predictions."""
    y_true, probs = _validate_scores(y_true, probs)
    if ((probs < 0) | (probs > 1)).any():
        raise DataError("brier score requires probabilities in [0, 1]")
    return float(np.mean((probs - y_true) ** 2))
