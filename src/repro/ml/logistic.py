"""L2-regularised logistic regression.

The paper's RFM baseline is "a logistic regression on recency, frequency
and monetary variables".  scikit-learn is not available offline, so this
module implements binary logistic regression from scratch:

* primary solver: iteratively reweighted least squares (Newton's method),
  which converges in a handful of iterations for the low-dimensional,
  well-conditioned problems the baseline produces;
* fallback solver: plain gradient descent with backtracking line search,
  used when the Newton system is singular.

The intercept is never regularised.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, DataError, NotFittedError

__all__ = ["LogisticRegression", "sigmoid", "log_loss"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def log_loss(y_true: np.ndarray, probs: np.ndarray, eps: float = 1e-12) -> float:
    """Mean binary cross-entropy."""
    y_true = np.asarray(y_true, dtype=np.float64)
    probs = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(probs) + (1.0 - y_true) * np.log(1.0 - probs)))


class LogisticRegression:
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    l2:
        Regularisation strength (coefficient of ``0.5 * l2 * ||w||^2``;
        the intercept is excluded).  Must be >= 0.
    max_iter:
        Maximum Newton iterations.
    tol:
        Convergence tolerance on the max absolute parameter update.

    Examples
    --------
    >>> X = np.array([[0.0], [1.0], [2.0], [3.0]])
    >>> y = np.array([0, 0, 1, 1])
    >>> model = LogisticRegression(l2=1e-3).fit(X, y)
    >>> bool(model.predict_proba(np.array([[3.0]]))[0] > 0.5)
    True
    """

    def __init__(self, l2: float = 1e-4, max_iter: int = 100, tol: float = 1e-8) -> None:
        if l2 < 0:
            raise ConfigError(f"l2 must be >= 0, got {l2}")
        if max_iter <= 0:
            raise ConfigError(f"max_iter must be positive, got {max_iter}")
        self.l2 = float(l2)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self.n_iter_: int = 0
        self.converged_: bool = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_inputs(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise DataError(f"X must be 2-D, got ndim={X.ndim}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise DataError(f"y shape {y.shape} does not match X shape {X.shape}")
        labels = set(np.unique(y).tolist())
        if not labels <= {0.0, 1.0}:
            raise DataError(f"y must contain only 0/1 labels, got {sorted(labels)}")
        if not np.isfinite(X).all():
            raise DataError("X contains non-finite values; impute before fitting")
        return X, y

    def fit(self, X: np.ndarray, y: np.ndarray) -> LogisticRegression:
        """Fit by Newton/IRLS, falling back to gradient descent if needed."""
        X, y = self._validate_inputs(X, y)
        n_samples, n_features = X.shape
        # Design matrix with a leading column of ones for the intercept.
        design = np.hstack([np.ones((n_samples, 1)), X])
        weights = np.zeros(n_features + 1)
        penalty = np.full(n_features + 1, self.l2)
        penalty[0] = 0.0  # never regularise the intercept

        self.converged_ = False
        for iteration in range(1, self.max_iter + 1):
            probs = sigmoid(design @ weights)
            gradient = design.T @ (probs - y) / n_samples + penalty * weights
            hessian_diag = probs * (1.0 - probs)
            hessian = (design.T * hessian_diag) @ design / n_samples + np.diag(penalty)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = self._gradient_step(design, y, weights, penalty, gradient)
            weights = weights - step
            self.n_iter_ = iteration
            if np.max(np.abs(step)) < self.tol:
                self.converged_ = True
                break

        self.intercept_ = float(weights[0])
        self.coef_ = weights[1:].copy()
        return self

    def _gradient_step(
        self,
        design: np.ndarray,
        y: np.ndarray,
        weights: np.ndarray,
        penalty: np.ndarray,
        gradient: np.ndarray,
    ) -> np.ndarray:
        """Backtracking gradient step used when the Newton system is singular."""

        def objective(w: np.ndarray) -> float:
            probs = sigmoid(design @ w)
            return log_loss(y, probs) + 0.5 * float(penalty @ (w * w))

        base = objective(weights)
        learning_rate = 1.0
        for _ in range(30):
            candidate = weights - learning_rate * gradient
            if objective(candidate) < base:
                return learning_rate * gradient
            learning_rate *= 0.5
        return learning_rate * gradient

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.coef_ is None or self.intercept_ is None:
            raise NotFittedError("LogisticRegression used before fit")

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw linear scores ``X @ coef + intercept``."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.coef_.shape[0]:
            raise DataError(
                f"X shape {X.shape} does not match fitted n_features={self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        return sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(X) >= threshold).astype(np.int64)
