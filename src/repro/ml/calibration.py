"""Probability calibration: reliability curves, ECE, Platt scaling.

AUROC measures ranking; a retention *budget* needs probabilities ("mail
everyone above 60% churn risk") that mean what they say.  This module
provides:

* :func:`reliability_curve` — predicted-probability bins vs observed
  churn frequency (the reliability diagram's data);
* :func:`expected_calibration_error` — the standard weighted |gap| summary;
* :class:`PlattCalibrator` — one-dimensional logistic recalibration of any
  churn score (the stability model's ``1 - stability`` is a ranking score,
  not a probability — Platt turns it into one).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, DataError, NotFittedError
from repro.ml.logistic import LogisticRegression

__all__ = [
    "ReliabilityBin",
    "reliability_curve",
    "expected_calibration_error",
    "PlattCalibrator",
]


@dataclass(frozen=True, slots=True)
class ReliabilityBin:
    """One bin of a reliability diagram."""

    low: float
    high: float
    mean_predicted: float
    observed_rate: float
    count: int

    @property
    def gap(self) -> float:
        """Absolute calibration gap of this bin."""
        return abs(self.mean_predicted - self.observed_rate)


def _validate(y_true: np.ndarray, probs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.int64)
    probs = np.asarray(probs, dtype=np.float64)
    if y_true.ndim != 1 or y_true.shape != probs.shape:
        raise DataError(
            f"labels and probabilities must be 1-D and aligned, got "
            f"{y_true.shape} vs {probs.shape}"
        )
    if not set(np.unique(y_true).tolist()) <= {0, 1}:
        raise DataError("labels must be 0/1")
    if ((probs < 0) | (probs > 1)).any() or not np.isfinite(probs).all():
        raise DataError("probabilities must be finite and within [0, 1]")
    return y_true, probs


def reliability_curve(
    y_true: np.ndarray, probs: np.ndarray, n_bins: int = 10
) -> list[ReliabilityBin]:
    """Equal-width reliability bins over [0, 1] (empty bins are skipped)."""
    if n_bins <= 0:
        raise ConfigError(f"n_bins must be positive, got {n_bins}")
    y_true, probs = _validate(y_true, probs)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins: list[ReliabilityBin] = []
    for i in range(n_bins):
        if i == n_bins - 1:
            mask = (probs >= edges[i]) & (probs <= edges[i + 1])
        else:
            mask = (probs >= edges[i]) & (probs < edges[i + 1])
        count = int(mask.sum())
        if count == 0:
            continue
        bins.append(
            ReliabilityBin(
                low=float(edges[i]),
                high=float(edges[i + 1]),
                mean_predicted=float(probs[mask].mean()),
                observed_rate=float(y_true[mask].mean()),
                count=count,
            )
        )
    return bins


def expected_calibration_error(
    y_true: np.ndarray, probs: np.ndarray, n_bins: int = 10
) -> float:
    """ECE: count-weighted mean absolute gap over the reliability bins."""
    bins = reliability_curve(y_true, probs, n_bins=n_bins)
    total = sum(b.count for b in bins)
    if total == 0:
        raise DataError("no samples to compute calibration error on")
    return float(sum(b.count * b.gap for b in bins) / total)


class PlattCalibrator:
    """Logistic recalibration of a one-dimensional churn score.

    Fits ``P(churn | score) = sigmoid(a * score + b)`` on held-out
    labelled scores, then maps any score to a calibrated probability.
    The mapping is monotone (``a`` is positive for any score that ranks
    churners higher), so AUROC is preserved exactly.
    """

    def __init__(self, l2: float = 1e-6) -> None:
        self._model = LogisticRegression(l2=l2)
        self._fitted = False

    def fit(self, scores: np.ndarray, y_true: np.ndarray) -> PlattCalibrator:
        """Learn the score -> probability mapping."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.ndim != 1:
            raise DataError(f"scores must be 1-D, got ndim={scores.ndim}")
        self._model.fit(scores.reshape(-1, 1), np.asarray(y_true))
        self._fitted = True
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated probabilities for raw scores."""
        if not self._fitted:
            raise NotFittedError("PlattCalibrator used before fit")
        scores = np.asarray(scores, dtype=np.float64)
        return self._model.predict_proba(scores.reshape(-1, 1))

    def fit_transform(self, scores: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        """Fit then transform the same scores."""
        return self.fit(scores, y_true).transform(scores)

    @property
    def slope(self) -> float:
        """The fitted ``a`` (positive = score orientation preserved)."""
        if not self._fitted or self._model.coef_ is None:
            raise NotFittedError("PlattCalibrator used before fit")
        return float(self._model.coef_[0])
