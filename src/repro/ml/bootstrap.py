"""Bootstrap confidence intervals for classification metrics.

The paper reports point AUROC values; a reproduction should say how wide
those points are.  :func:`bootstrap_auroc_ci` resamples (customers with
replacement) and returns a percentile confidence interval for the AUROC —
used by the reporting layer to annotate Figure 1 and by EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, DataError
from repro.ml.metrics import auroc

__all__ = ["ConfidenceInterval", "bootstrap_auroc_ci"]


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A bootstrap percentile interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float
    n_resamples: int

    @property
    def width(self) -> float:
        return self.high - self.low

    def __str__(self) -> str:
        return (
            f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_auroc_ci(
    y_true: np.ndarray,
    scores: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for the AUROC.

    Resamples observations with replacement; resamples that lose one of
    the two classes are redrawn (up to a bounded number of attempts), as
    AUROC is undefined on them.

    Raises
    ------
    ConfigError
        On invalid confidence level or resample count.
    DataError
        If the original sample has only one class.
    """
    if not 0.0 < confidence < 1.0:
        raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ConfigError(f"n_resamples must be >= 10, got {n_resamples}")
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    point = auroc(y_true, scores)  # validates inputs, both classes present

    rng = np.random.default_rng(seed)
    n = len(y_true)
    estimates = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        for __ in range(100):
            indices = rng.integers(0, n, size=n)
            resampled = y_true[indices]
            if resampled.min() != resampled.max():
                estimates[i] = auroc(resampled, scores[indices])
                break
        else:  # pragma: no cover - requires an extreme class imbalance
            raise DataError(
                "could not draw a two-class bootstrap resample in 100 tries"
            )
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [tail, 1.0 - tail])
    return ConfidenceInterval(
        point=point,
        low=float(low),
        high=float(high),
        confidence=confidence,
        n_resamples=n_resamples,
    )
