"""repro — reproduction of "Understanding Customer Attrition at an
Individual Level: a New Model in Grocery Retail Context" (Gautrais,
Cellier, Guyet, Quiniou, Termier — EDBT 2016).

The package implements the paper's customer-stability attrition model and
everything it needs to be evaluated end to end:

* :mod:`repro.core` — the stability model: windowed databases, item
  significance, stability trajectories, explanations, detection, tuning;
* :mod:`repro.data` — the transaction substrate: baskets, logs, catalog,
  taxonomy, cohorts, serialisation;
* :mod:`repro.synth` — the synthetic grocery retailer replacing the
  paper's proprietary dataset;
* :mod:`repro.baselines` — the RFM comparator and naive rules;
* :mod:`repro.ml` — from-scratch logistic regression, metrics and CV;
* :mod:`repro.eval` — the Figure 1 / Figure 2 / statistics / ablation
  experiments;
* :mod:`repro.viz` — terminal charts and series export.

Quickstart
----------
>>> from repro import StabilityModel, paper_scenario
>>> dataset = paper_scenario(n_loyal=20, n_churners=20)
>>> model = StabilityModel(dataset.calendar, window_months=2, alpha=2)
>>> model = model.fit(dataset.log)
>>> scores = model.churn_scores(window_index=9)  # window ending month 20
"""

import logging as _logging

from repro.baselines import RFMModel
from repro.config import DEFAULT_BETA_GRID, ExperimentConfig
from repro.core import (
    ExponentialSignificance,
    StabilityModel,
    StabilityTrajectory,
    ThresholdDetector,
    tune_stability_model,
)
from repro.data import (
    Basket,
    Catalog,
    CohortLabels,
    DatasetBundle,
    PopulationFrame,
    StudyCalendar,
    Taxonomy,
    TransactionLog,
)
from repro.eval import run_figure1, run_figure2
from repro.synth import ScenarioConfig, figure2_case_study, generate_dataset, paper_scenario

__version__ = "1.0.0"

# Library logging etiquette: the package root gets a NullHandler so
# importing repro never prints; applications (and the repro CLI's
# ``-v``/``-vv`` flags) decide what to surface.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__all__ = [
    "Basket",
    "Catalog",
    "CohortLabels",
    "DEFAULT_BETA_GRID",
    "DatasetBundle",
    "ExperimentConfig",
    "ExponentialSignificance",
    "PopulationFrame",
    "RFMModel",
    "ScenarioConfig",
    "StabilityModel",
    "StabilityTrajectory",
    "StudyCalendar",
    "Taxonomy",
    "ThresholdDetector",
    "TransactionLog",
    "__version__",
    "figure2_case_study",
    "generate_dataset",
    "paper_scenario",
    "run_figure1",
    "run_figure2",
    "tune_stability_model",
]
