"""The one atomic write-then-rename helper: :func:`atomic_write_text`.

Every artifact this stack persists — checkpoint cells, monitor
snapshots, run manifests, trace JSONL, metrics JSON — must be readable
or absent, never torn: a kill or crash mid-write may cost the artifact,
but a resume must never ingest half a file.  The idiom is always the
same (write a same-directory temp file, then ``os.replace`` over the
target, which POSIX guarantees atomic within a filesystem), so it lives
here once instead of being re-inlined per module.

Rule ``IO001`` in :mod:`repro.analysis` rejects direct write-mode
``open`` / ``write_text`` / ``json.dump`` calls in the persistence
layers (``repro.runtime``, ``repro.obs``) that do not route through
these helpers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp-then-rename).

    Parent directories are created as needed.  The temp file carries the
    writing pid so concurrent writers in different processes cannot
    collide on the temp name; the final ``os.replace`` makes whichever
    finishes last win with a complete file either way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except OSError:
        # Never leave the temp file behind on a failed write/rename; the
        # original target (if any) is still intact.
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_json(
    path: str | Path,
    payload: object,
    *,
    indent: int | None = None,
    sort_keys: bool = True,
) -> Path:
    """Serialise ``payload`` as JSON and write it atomically.

    The document always ends with a newline; ``sort_keys`` defaults to
    True so serialised artifacts are byte-stable across runs (the
    repr-exact float convention from the checkpoint layer relies on
    deterministic serialisation).
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)
