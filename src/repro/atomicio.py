"""The one atomic write-then-rename helper: :func:`atomic_write_text`.

Every artifact this stack persists — checkpoint cells, monitor
snapshots, run manifests, trace JSONL, metrics JSON — must be readable
or absent, never torn: a kill or crash mid-write may cost the artifact,
but a resume must never ingest half a file.  The idiom is always the
same (write a same-directory temp file, then ``os.replace`` over the
target, which POSIX guarantees atomic within a filesystem), so it lives
here once instead of being re-inlined per module.

Rule ``IO001`` in :mod:`repro.analysis` rejects direct write-mode
``open`` / ``write_text`` / ``json.dump`` calls in the persistence
layers (``repro.runtime``, ``repro.obs``) that do not route through
these helpers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from types import TracebackType
from typing import BinaryIO

__all__ = [
    "atomic_write_text",
    "atomic_write_json",
    "append_jsonl_line",
    "AtomicBinaryWriter",
]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp-then-rename).

    Parent directories are created as needed.  The temp file carries the
    writing pid so concurrent writers in different processes cannot
    collide on the temp name; the final ``os.replace`` makes whichever
    finishes last win with a complete file either way.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except OSError:
        # Never leave the temp file behind on a failed write/rename; the
        # original target (if any) is still intact.
        tmp.unlink(missing_ok=True)
        raise
    return path


def atomic_write_json(
    path: str | Path,
    payload: object,
    *,
    indent: int | None = None,
    sort_keys: bool = True,
) -> Path:
    """Serialise ``payload`` as JSON and write it atomically.

    The document always ends with a newline; ``sort_keys`` defaults to
    True so serialised artifacts are byte-stable across runs (the
    repr-exact float convention from the checkpoint layer relies on
    deterministic serialisation).
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)


def append_jsonl_line(path: str | Path, payload: object) -> Path:
    """Append one JSON document as a line to a JSONL stream file.

    This is the deliberate exception to the temp-then-rename rule:
    streaming telemetry (the live metrics JSONL that `obs tail`
    follows) wants each sample visible to readers *immediately*, and
    rewriting the whole file per sample would turn an O(1) publish into
    O(samples).  A single ``write`` of one ``\\n``-terminated line is
    appended and flushed; a crash mid-write can tear at most the final
    line, and every reader of these streams tolerates (skips) a torn
    last line.  Durable artifacts — checkpoints, manifests, flight
    recordings — must keep using :func:`atomic_write_text`.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(payload, sort_keys=True) + "\n"
    with open(path, "a") as handle:
        handle.write(line)
        handle.flush()
    return path


class AtomicBinaryWriter:
    """Streamed binary writes with the same temp-then-rename guarantee.

    For artifacts too large to assemble in memory (the memory-mapped
    slab columns): bytes stream into a same-directory temp file and the
    target name only ever comes into existence — complete — on
    :meth:`commit` (fsync + ``os.replace``).  :meth:`abort` (or an
    exception inside the ``with`` block) removes the temp file and
    leaves any previous target untouched.  May be used as a context
    manager (commits on clean exit) or held open across a longer build
    loop with an explicit ``commit()``/``abort()``.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = self.path.with_name(f".{self.path.name}.tmp-{os.getpid()}")
        self._handle: BinaryIO | None = open(self._tmp, "wb")
        self.nbytes = 0

    def write(self, data: bytes) -> int:
        """Append raw bytes; returns the number written."""
        if self._handle is None:
            raise ValueError(f"writer for {self.path} is already closed")
        written = self._handle.write(data)
        self.nbytes += written
        return written

    def commit(self) -> Path:
        """Flush, fsync and atomically rename the temp file into place."""
        if self._handle is None:
            raise ValueError(f"writer for {self.path} is already closed")
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            os.replace(self._tmp, self.path)
        except OSError:
            self._handle = None
            self._tmp.unlink(missing_ok=True)
            raise
        self._handle = None
        return self.path

    def abort(self) -> None:
        """Discard everything written; the previous target survives."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> AtomicBinaryWriter:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.abort()
        return False
