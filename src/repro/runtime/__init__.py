"""The resilience layer: fault-tolerant execution, checkpoints, snapshots.

``repro.runtime`` makes the fast data plane a *dependable* one:

* :mod:`repro.runtime.executor` — :func:`~repro.runtime.executor.run_sharded`,
  the fault-isolating replacement for a bare ``ProcessPoolExecutor``
  used by the batch stability engine (retry with backoff, serial
  in-process degradation, structured
  :class:`~repro.runtime.executor.ExecutionReport`);
* :mod:`repro.runtime.checkpoint` —
  :class:`~repro.runtime.checkpoint.CheckpointJournal`, atomic
  journaling of finished sweep cells so interrupted evaluations resume
  without recomputation;
* :mod:`repro.runtime.snapshot` — versioned, schema-checked
  serialisation of :class:`~repro.core.streaming.StabilityMonitor`
  state with an exact round-trip guarantee;
* :mod:`repro.runtime.faults` — deterministic fault injection (worker
  crashes, slow shards, torn files) for the resilience test harness.

Failure taxonomy (see DESIGN.md "Failure model & recovery"): worker
faults are *retried* then *degraded*; sweep kills are *resumed*;
monitor restarts are *restored*; corrupt state is *rejected* with
:class:`~repro.errors.CheckpointError` / :class:`~repro.errors.SnapshotError`.
"""

from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.executor import ExecutionReport, ShardOutcome, run_sharded
from repro.runtime.faults import FaultPlan, InjectedFault, tear_file
from repro.runtime.snapshot import (
    load_snapshot,
    restore_monitor,
    save_snapshot,
    snapshot_monitor,
)

__all__ = [
    "CheckpointJournal",
    "ExecutionReport",
    "ShardOutcome",
    "run_sharded",
    "FaultPlan",
    "InjectedFault",
    "tear_file",
    "snapshot_monitor",
    "restore_monitor",
    "save_snapshot",
    "load_snapshot",
]
