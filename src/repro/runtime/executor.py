"""Resilient shard execution: retry, isolate, degrade — never lose a fit.

``ProcessPoolExecutor.map`` is all-or-nothing: one OOM-killed worker
raises ``BrokenProcessPool`` and the entire multi-core fit is lost.
:func:`run_sharded` replaces it with a fault-isolating protocol:

1. every shard is submitted as its own future, so shards that finished
   before a pool breakage keep their results;
2. failed shards (worker death, pickling failure, in-worker exception,
   per-shard timeout) are retried in a fresh pool, with exponential
   backoff between waves;
3. shards still failing after ``retries`` waves are **degraded**:
   recomputed serially in the parent process with the same function, so
   the overall result is bit-identical to a fault-free run — parallelism
   is a performance optimisation, never a correctness dependency;
4. the whole history is returned as a structured
   :class:`ExecutionReport` so callers can log, alert on, or assert
   about what the runtime had to absorb.

Only when the *function itself* fails in-process — a genuine kernel bug
or bad data, not infrastructure — does :class:`~repro.errors.ExecutionError`
propagate.  ``KeyboardInterrupt`` and ``SystemExit`` are never treated
as shard failures: they abort the whole run immediately (after
releasing the pool), so Ctrl-C during a long fit still interrupts it.

Shard functions must be **pure/idempotent**: a timed-out attempt keeps
running in its worker while the retry recomputes the same shard, so a
side-effecting ``fn`` could observe double execution.

Fault injection for tests goes through
:class:`~repro.runtime.faults.FaultPlan`, keyed on ``(shard, attempt)``
so every simulated crash is deterministic.

When telemetry is on in the parent (see :mod:`repro.obs`), each worker
attempt runs under its own recording tracer/registry; the worker's spans
and metric deltas travel back with the result and are merged into the
parent trace (:class:`_ShardTelemetry`), so a single trace shows
worker-side shard timings stitched under the parent's sweep spans.  With
telemetry off, workers return bare results — zero wrapping, zero cost.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.errors import ConfigError, ExecutionError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.faults import FaultPlan

__all__ = ["ShardOutcome", "ExecutionReport", "run_sharded"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class ShardOutcome:
    """What it took to complete one shard.

    Attributes
    ----------
    shard:
        Shard index (position in the submitted task list).
    pool_attempts:
        Number of times the shard was submitted to a worker pool.
    degraded:
        True when the shard was finally recomputed serially in the
        parent process.
    errors:
        One ``"ExceptionType: message"`` string per failed pool attempt,
        oldest first (empty for a clean shard).
    """

    shard: int
    pool_attempts: int
    degraded: bool
    errors: tuple[str, ...]

    @property
    def clean(self) -> bool:
        """Completed on the first pool attempt with no fault."""
        return not self.errors and not self.degraded


@dataclass(frozen=True)
class ExecutionReport:
    """Structured account of one resilient sharded run."""

    n_shards: int
    max_workers: int
    retries: int
    wall_seconds: float
    outcomes: tuple[ShardOutcome, ...]

    @property
    def n_retried(self) -> int:
        """Shards that needed more than one pool attempt."""
        return sum(1 for o in self.outcomes if o.errors)

    @property
    def n_degraded(self) -> int:
        """Shards recomputed serially in the parent process."""
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def fault_free(self) -> bool:
        return all(o.clean for o in self.outcomes)

    def summary(self) -> str:
        """One log-line description of the run."""
        status = (
            "fault-free"
            if self.fault_free
            else f"{self.n_retried} retried, {self.n_degraded} degraded"
        )
        return (
            f"{self.n_shards} shard(s) on {self.max_workers} worker(s) "
            f"in {self.wall_seconds:.3f}s ({status})"
        )


@dataclass(frozen=True)
class _ShardTelemetry:
    """A worker attempt's result plus the telemetry it produced.

    ``spans`` are the worker tracer's records as plain dicts and
    ``metrics`` the worker registry's raw dump; both are merged into the
    parent's active tracer/registry when the future is harvested.
    """

    result: object
    spans: tuple[dict, ...]
    metrics: dict


def _guarded(
    fn: Callable,
    task: object,
    shard: int,
    attempt: int,
    plan: FaultPlan | None,
    capture: bool = False,
) -> object:
    """Worker-side wrapper: apply any injected fault, then compute.

    With ``capture`` the computation runs under a fresh recording
    tracer/registry whose output rides back with the result (the
    telemetry never touches the result value itself, so traced and
    untraced runs stay bit-identical).
    """
    if plan is not None:
        plan.apply(shard, attempt)
    if not capture:
        return fn(task)
    tracer = obs_trace.Tracer()
    registry = obs_metrics.MetricsRegistry()
    with (
        obs_trace.use_tracer(tracer),
        obs_metrics.use_metrics(registry),
        tracer.span("executor.shard", shard=shard, attempt=attempt),
    ):
        result = fn(task)
    return _ShardTelemetry(result, tuple(tracer.to_dicts()), registry.dump())


def run_sharded(
    fn: Callable,
    tasks: Sequence,
    *,
    max_workers: int | None = None,
    retries: int = 2,
    backoff_seconds: float = 0.05,
    timeout: float | None = None,
    fault_plan: FaultPlan | None = None,
) -> tuple[list, ExecutionReport]:
    """Apply ``fn`` to every task with per-shard fault isolation.

    Parameters
    ----------
    fn:
        Module-level callable applied to each task (pickled to workers).
    tasks:
        The shard payloads; ``results[i] == fn(tasks[i])`` on return.
    max_workers:
        Pool size per wave (default: one worker per pending shard).
    retries:
        Pool waves beyond the first before a shard degrades to the
        serial in-process fallback (``retries=0`` means degrade on the
        first failure).
    backoff_seconds:
        Base sleep between waves, doubled each wave (0 disables).
    timeout:
        Wave deadline in seconds, measured from the moment the wave's
        shards are submitted: any shard not finished by then counts as
        failed for that wave (the worker keeps running but its result
        is discarded).  A slow shard therefore cannot extend the
        deadline of its siblings.  Because a timed-out attempt may
        still complete in the background while the retry recomputes the
        shard, ``fn`` must be pure/idempotent — it may execute more
        than once for the same task.
    fault_plan:
        Deterministic fault injection for tests; see
        :class:`~repro.runtime.faults.FaultPlan`.

    Returns
    -------
    ``(results, report)`` — results in task order, plus the structured
    :class:`ExecutionReport`.

    Raises
    ------
    ExecutionError
        If a shard fails even in the serial in-process fallback, i.e.
        ``fn`` itself raises outside any worker.
    """
    if retries < 0:
        raise ConfigError(f"retries must be >= 0, got {retries}")
    if backoff_seconds < 0:
        raise ConfigError(
            f"backoff_seconds must be >= 0, got {backoff_seconds}"
        )
    if timeout is not None and timeout <= 0:
        raise ConfigError(f"timeout must be positive, got {timeout}")
    tasks = list(tasks)
    n = len(tasks)
    started = time.perf_counter()
    results: list = [None] * n
    attempts = [0] * n
    errors: list[list[str]] = [[] for _ in range(n)]
    degraded: set[int] = set()

    # Telemetry is captured in workers only when the parent is actually
    # recording; a disabled run ships no wrappers at all.
    tracer = obs_trace.get_tracer()
    registry = obs_metrics.get_metrics()
    capture = tracer.enabled or registry.enabled

    def harvest(value: object) -> object:
        """Unwrap a worker result, folding its telemetry into the parent."""
        if capture and isinstance(value, _ShardTelemetry):
            tracer.merge(value.spans)
            registry.merge(value.metrics)
            return value.result
        return value

    pending = list(range(n))
    wave = 0
    with tracer.span("executor.run_sharded", n_shards=n, retries=retries):
        while pending and wave <= retries:
            if wave > 0 and backoff_seconds > 0:
                time.sleep(backoff_seconds * (2 ** (wave - 1)))
            workers = min(max_workers or len(pending), len(pending))
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = {}
            failed = []
            with tracer.span(
                "executor.wave", wave=wave, pending=len(pending), workers=workers
            ):
                try:
                    for i in pending:
                        attempts[i] += 1
                        try:
                            futures[i] = pool.submit(
                                _guarded, fn, tasks[i], i, wave, fault_plan, capture
                            )
                        except Exception as exc:  # pool already broken mid-wave
                            errors[i].append(f"{type(exc).__name__}: {exc}")
                            failed.append(i)
                    # One deadline for the whole wave, measured from
                    # submission: waiting on an early slow shard cannot
                    # extend the effective deadline of the shards behind it.
                    done, _ = wait(set(futures.values()), timeout=timeout)
                    for i, future in futures.items():
                        if future not in done:
                            errors[i].append(
                                f"TimeoutError: shard still running {timeout}s "
                                f"after wave submission"
                            )
                            registry.counter(obs_metrics.SHARD_TIMEOUTS).inc()
                            failed.append(i)
                            continue
                        try:
                            results[i] = harvest(future.result())
                        except Exception as exc:  # noqa: BLE001 — every failure
                            # mode (BrokenProcessPool, pickling errors, in-worker
                            # exceptions) is retryable infrastructure here.
                            errors[i].append(f"{type(exc).__name__}: {exc}")
                            failed.append(i)
                except BaseException:
                    # KeyboardInterrupt / SystemExit: the user is aborting the
                    # run — release the pool and propagate instead of recording
                    # the interrupt as a retryable shard failure.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
            # Never wait on stragglers: a timed-out worker may still be
            # running, and a broken pool cannot be drained.
            pool.shutdown(wait=not failed, cancel_futures=True)
            if failed:
                registry.counter(obs_metrics.SHARD_RETRIES).inc(len(failed))
                logger.info(
                    "wave %d: %d of %d shard(s) failed%s",
                    wave,
                    len(failed),
                    len(pending),
                    " (degrading)" if wave >= retries else ", retrying",
                )
            pending = failed
            wave += 1

        for i in pending:
            degraded.add(i)
            registry.counter(obs_metrics.SHARD_DEGRADED).inc()
            try:
                with tracer.span("executor.shard", shard=i, degraded=True):
                    results[i] = fn(tasks[i])
            except Exception as exc:
                raise ExecutionError(
                    f"shard {i} failed in-process after {attempts[i]} pool "
                    f"attempt(s): {exc}"
                ) from exc

    report = ExecutionReport(
        n_shards=n,
        max_workers=min(max_workers or n, n) if n else 0,
        retries=retries,
        wall_seconds=time.perf_counter() - started,
        outcomes=tuple(
            ShardOutcome(
                shard=i,
                pool_attempts=attempts[i],
                degraded=i in degraded,
                errors=tuple(errors[i]),
            )
            for i in range(n)
        ),
    )
    return results, report
