"""Snapshot/restore for the streaming :class:`~repro.core.streaming.StabilityMonitor`.

A deployed monitor holds months of accumulated per-customer significance
state; a process restart used to lose all of it, silently resetting
every customer's alarm history.  This module serialises the complete
monitor state to versioned JSON with a **round-trip guarantee**: a
restored monitor produces byte-for-byte identical
:class:`~repro.core.streaming.WindowCloseReport` objects for the rest of
the stream.

Preserved exactly:

* the window grid (boundaries + months-per-window) and the scoring
  configuration (``beta``, ``alpha``, counting scheme, burn-in);
* per customer: the tracker's presence counts and first-seen windows
  **in first-seen order** (the batched window close flattens dicts in
  insertion order, so ordering is part of bit-identical equality),
  the number of observed windows, the accumulating current-window item
  set and the last stability;
* stream position: current window, last day seen, finished flag, and
  the last window's missing-item evidence (so ``explain_alarm`` keeps
  working across a restart).

Files are written atomically (temp-then-rename).  Loading validates the
schema name, format version and field shapes; a corrupt, truncated or
foreign file raises :class:`~repro.errors.SnapshotError` rather than
being silently ingested.

Only the paper configuration (exponential significance) is
serialisable — a custom significance rule has no stable wire format, so
:func:`snapshot_monitor` refuses it loudly.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING

from repro.atomicio import atomic_write_json
from repro.errors import SnapshotError

if TYPE_CHECKING:
    from repro.core.streaming import StabilityMonitor

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_VERSION",
    "snapshot_monitor",
    "restore_monitor",
    "save_snapshot",
    "load_snapshot",
]

SNAPSHOT_SCHEMA = "repro.stability-monitor"
SNAPSHOT_VERSION = 1


def snapshot_monitor(monitor: StabilityMonitor) -> dict:
    """The monitor's complete state as a JSON-serialisable payload.

    Raises
    ------
    SnapshotError
        If the monitor uses a non-exponential significance rule (no
        stable wire format exists for arbitrary callables).
    """
    from repro.core.significance import ExponentialSignificance

    if not isinstance(monitor.significance, ExponentialSignificance):
        raise SnapshotError(
            "only the paper's ExponentialSignificance is snapshot-"
            f"serialisable, got {type(monitor.significance).__name__}"
        )
    customers = []
    for customer_id in sorted(monitor._states):
        state = monitor._states[customer_id]
        tracker = state.tracker
        last = state.last_stability
        customers.append(
            {
                "customer_id": customer_id,
                # item -> count pairs in first-seen (dict insertion)
                # order; the batched close flattens in this order, so it
                # must survive the round trip.
                "presence": [
                    [item, count] for item, count in tracker._presence.items()
                ],
                "first_seen": [
                    [item, window]
                    for item, window in tracker._first_seen.items()
                ],
                "n_windows_observed": tracker.n_windows_observed,
                "current_items": sorted(state.current_items),
                "last_stability": None if math.isnan(last) else float(last),
            }
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "version": SNAPSHOT_VERSION,
        "grid": {
            "boundaries": list(monitor.grid.boundaries),
            "months_per_window": monitor.grid.months_per_window,
        },
        "beta": monitor.beta,
        "alpha": monitor.significance.alpha,
        "counting": monitor.counting,
        "first_alarm_window": monitor.first_alarm_window,
        "current_window": monitor._current_window,
        "last_day_seen": monitor._last_day_seen,
        "finished": monitor._finished,
        "last_missing": [
            [customer_id, [[item, sig] for item, sig in missing.items()]]
            for customer_id, missing in sorted(monitor._last_missing.items())
        ],
        "customers": customers,
    }


def _require(payload: dict, field: str, kind: type | tuple[type, ...]) -> object:
    if field not in payload:
        raise SnapshotError(f"snapshot missing field {field!r}")
    value = payload[field]
    if not isinstance(value, kind):
        raise SnapshotError(
            f"snapshot field {field!r} has type {type(value).__name__}, "
            f"expected {kind}"
        )
    return value


def _int_pairs(raw: object, field: str) -> list[tuple[int, float]]:
    if not isinstance(raw, list) or any(
        not isinstance(pair, list) or len(pair) != 2 for pair in raw
    ):
        raise SnapshotError(f"snapshot field {field!r} must be a list of pairs")
    return [(int(a), b) for a, b in raw]


def restore_monitor(payload: dict) -> StabilityMonitor:
    """Rebuild a monitor from a :func:`snapshot_monitor` payload.

    Raises
    ------
    SnapshotError
        On any schema, version or shape mismatch.
    """
    from repro.core.significance import ExponentialSignificance, SignificanceTracker
    from repro.core.streaming import CustomerState, StabilityMonitor
    from repro.core.windowing import WindowGrid

    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload must be a JSON object")
    schema = _require(payload, "schema", str)
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"snapshot schema {schema!r} is not {SNAPSHOT_SCHEMA!r}"
        )
    version = _require(payload, "version", int)
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version drift: found version {version}, "
            f"expected version {SNAPSHOT_VERSION}"
        )
    grid_payload = _require(payload, "grid", dict)
    boundaries = _require(grid_payload, "boundaries", list)
    months = grid_payload.get("months_per_window")
    grid = WindowGrid(
        boundaries=tuple(int(b) for b in boundaries),
        months_per_window=None if months is None else int(months),
    )
    monitor = StabilityMonitor(
        grid,
        beta=_require(payload, "beta", (int, float)),
        significance=ExponentialSignificance(
            _require(payload, "alpha", (int, float))
        ),
        counting=_require(payload, "counting", str),
        first_alarm_window=_require(payload, "first_alarm_window", int),
    )
    monitor._current_window = _require(payload, "current_window", int)
    monitor._last_day_seen = _require(payload, "last_day_seen", int)
    monitor._finished = _require(payload, "finished", bool)
    for customer_id, missing_pairs in _require(payload, "last_missing", list):
        monitor._last_missing[int(customer_id)] = {
            item: float(sig)
            for item, sig in _int_pairs(missing_pairs, "last_missing")
        }
    for record in _require(payload, "customers", list):
        if not isinstance(record, dict):
            raise SnapshotError("snapshot customer record must be an object")
        customer_id = int(_require(record, "customer_id", int))
        tracker = SignificanceTracker(
            monitor.significance, counting=monitor.counting
        )
        # Rebuild the dicts pair-by-pair so insertion (first-seen) order
        # is preserved exactly.
        for item, count in _int_pairs(record.get("presence", []), "presence"):
            tracker._presence[item] = int(count)
        for item, window in _int_pairs(
            record.get("first_seen", []), "first_seen"
        ):
            tracker._first_seen[item] = int(window)
        tracker._n_windows = int(_require(record, "n_windows_observed", int))
        last = record.get("last_stability")
        monitor._states[customer_id] = CustomerState(
            customer_id=customer_id,
            tracker=tracker,
            current_items={
                int(item) for item in record.get("current_items", [])
            },
            last_stability=math.nan if last is None else float(last),
        )
    return monitor


def save_snapshot(monitor: StabilityMonitor, path: str | Path) -> Path:
    """Write a monitor snapshot atomically (temp-then-rename)."""
    path = Path(path)
    payload = snapshot_monitor(monitor)
    return atomic_write_json(path, payload)


def load_snapshot(path: str | Path) -> StabilityMonitor:
    """Restore a monitor from a snapshot file.

    Raises
    ------
    SnapshotError
        If the file is unreadable, corrupt/truncated, or fails schema
        validation.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SnapshotError(f"{path}: cannot read snapshot: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"{path}: corrupt or truncated snapshot (invalid JSON)"
        ) from exc
    try:
        return restore_monitor(payload)
    except SnapshotError as exc:
        raise SnapshotError(f"{path}: {exc}") from None
