"""Checkpointed sweeps: journal each finished cell, resume by skipping it.

A long parameter sweep (the Figure 1 ROC sweep, an ablation grid, the
campaign comparison) is a set of independent *cells* — one
``(scorer, month, config)`` combination each.  A killed sweep used to
lose every finished cell; with a :class:`CheckpointJournal` each cell is
persisted the moment it completes:

* one JSON file per cell, named by a readable slug plus a hash of the
  full key (collision-proof, filesystem-safe);
* written atomically — serialise to a temporary file in the same
  directory, then ``os.replace`` — so a kill mid-write leaves either the
  old state or the new, never a torn file under the final name;
* self-describing — every file carries the journal schema name, a format
  version and its own key, so a cell from a different sweep or a corrupt
  / truncated file raises :class:`~repro.errors.CheckpointError` instead
  of being silently ingested.

Values must be JSON-serialisable; floats round-trip exactly (``json``
emits ``repr`` precision), so resumed sweeps are bit-identical to
uninterrupted ones.
"""

from __future__ import annotations

import hashlib
import json
import logging
import re
from collections.abc import Callable, Sequence
from pathlib import Path

from repro.atomicio import atomic_write_json
from repro.errors import CheckpointError
from repro.obs import metrics as obs_metrics

__all__ = ["CheckpointJournal", "ids_digest"]

logger = logging.getLogger(__name__)

#: Journal file format version; bump on incompatible layout changes.
JOURNAL_VERSION = 1

_SLUG_RE = re.compile(r"[^-\w.=]+")


def ids_digest(*groups: Sequence[int]) -> str:
    """Short order-insensitive hash of one or more customer-id groups.

    Checkpoint keys embed this to pin the exact population a cell was
    computed on — a different train/test split (seed, fraction) or
    cohort selection changes the digest, so a reused journal directory
    recomputes instead of aliasing stale results.
    """
    h = hashlib.sha1()
    for group in groups:
        h.update(",".join(str(i) for i in sorted(group)).encode())
        h.update(b";")
    return h.hexdigest()[:10]


class CheckpointJournal:
    """Directory of atomically-written, schema-checked cell files.

    Parameters
    ----------
    directory:
        Where cell files live; created on first use.  Reusing the
        directory across runs is what makes a sweep resumable.
    schema:
        Logical name of the sweep writing the journal (e.g.
        ``"eval-protocol"``); cells from a different schema are rejected
        at load time.
    """

    #: Filenames in the journal directory that are not cell files (the
    #: run manifest lives next to the cells; see repro.obs.manifest).
    RESERVED_NAMES = frozenset({"manifest.json"})

    def __init__(self, directory: str | Path, schema: str = "cells") -> None:
        if not schema:
            raise CheckpointError("journal schema name must be non-empty")
        self.directory = Path(directory)
        self.schema = schema
        self.directory.mkdir(parents=True, exist_ok=True)
        # Per-run resume accounting (see resume_summary); the process
        # metrics registry mirrors these under checkpoint.* instruments.
        self.hits = 0
        self.misses = 0
        self.invalid = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def _key_parts(key: Sequence) -> tuple[str, ...]:
        parts = tuple(str(part) for part in key)
        if not parts:
            raise CheckpointError("checkpoint key must be non-empty")
        return parts

    def path_of(self, key: Sequence) -> Path:
        """The cell file a key maps to (deterministic, collision-proof)."""
        parts = self._key_parts(key)
        slug = "_".join(_SLUG_RE.sub("-", part) for part in parts)[:80]
        digest = hashlib.sha1(
            json.dumps(parts).encode("utf-8")
        ).hexdigest()[:10]
        return self.directory / f"{slug}.{digest}.json"

    # ------------------------------------------------------------------
    # Cell I/O
    # ------------------------------------------------------------------
    def has(self, key: Sequence) -> bool:
        """Whether a *valid* cell exists for the key.

        Raises
        ------
        CheckpointError
            If a file exists but is corrupt, truncated or from another
            schema — resuming must not silently ingest garbage.
        """
        path = self.path_of(key)
        if not path.exists():
            return False
        self.load(key)
        return True

    def _read_payload(self, path: Path) -> dict:
        """Read and validate one cell file (everything except key match).

        Raises
        ------
        CheckpointError
            If the file is unreadable, unparseable, or fails schema /
            version / shape validation.
        """
        try:
            text = path.read_text()
        except OSError as exc:
            raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{path}: corrupt or truncated checkpoint (invalid JSON)"
            ) from exc
        if not isinstance(payload, dict):
            raise CheckpointError(f"{path}: checkpoint is not a JSON object")
        for field in ("schema", "version", "key", "value"):
            if field not in payload:
                raise CheckpointError(f"{path}: checkpoint missing {field!r}")
        if payload["schema"] != self.schema:
            raise CheckpointError(
                f"{path}: checkpoint belongs to schema {payload['schema']!r}, "
                f"this journal expects {self.schema!r}"
            )
        if payload["version"] != JOURNAL_VERSION:
            raise CheckpointError(
                f"{path}: unsupported checkpoint version {payload['version']!r} "
                f"(this build reads version {JOURNAL_VERSION})"
            )
        if not isinstance(payload["key"], list) or not all(
            isinstance(part, str) for part in payload["key"]
        ):
            raise CheckpointError(
                f"{path}: checkpoint key is not a list of strings"
            )
        return payload

    def load(self, key: Sequence) -> object:
        """The stored value of a finished cell.

        Raises
        ------
        CheckpointError
            If the cell is missing, unparseable, or fails schema /
            version / key validation.
        """
        parts = self._key_parts(key)
        path = self.path_of(key)
        payload = self._read_payload(path)
        if tuple(payload["key"]) != parts:
            raise CheckpointError(
                f"{path}: checkpoint key {payload['key']!r} does not match "
                f"{list(parts)!r} (hash collision or tampered file)"
            )
        return payload["value"]

    def store(self, key: Sequence, value: object) -> None:
        """Persist one finished cell atomically (write-temp-then-rename)."""
        parts = self._key_parts(key)
        path = self.path_of(key)
        payload = {
            "schema": self.schema,
            "version": JOURNAL_VERSION,
            "key": list(parts),
            "value": value,
        }
        atomic_write_json(path, payload)

    def get_or_compute(self, key: Sequence, compute: Callable[[], object]) -> object:
        """Return the journaled value, computing and storing it if absent.

        Every call is accounted: a replayed cell counts as a *hit*, a
        computed one as a *miss*, and a cell file that fails validation
        as *invalid* (the :class:`~repro.errors.CheckpointError` still
        propagates — corrupt state is never silently recomputed).
        """
        path = self.path_of(key)
        metrics = obs_metrics.get_metrics()
        if path.exists():
            try:
                value = self.load(key)
            except CheckpointError:
                self.invalid += 1
                metrics.counter(obs_metrics.CHECKPOINT_INVALID).inc()
                raise
            self.hits += 1
            metrics.counter(obs_metrics.CHECKPOINT_HITS).inc()
            logger.debug("checkpoint hit: %s", list(self._key_parts(key)))
            return value
        self.misses += 1
        metrics.counter(obs_metrics.CHECKPOINT_MISSES).inc()
        value = compute()
        self.store(key, value)
        return value

    def resume_summary(self) -> str:
        """One log line of this run's journal traffic.

        E.g. ``"replayed 84 cell(s), computed 36"`` — the resume story of
        a checkpointed sweep in the shape the satellite sweeps log it.
        """
        summary = f"replayed {self.hits} cell(s), computed {self.misses}"
        if self.invalid:
            summary += f", rejected {self.invalid} invalid"
        return summary

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def n_entries(self) -> int:
        """Number of valid journaled cells (same validation as :meth:`keys`)."""
        return len(self.keys())

    def keys(self) -> list[tuple[str, ...]]:
        """Keys of every valid journaled cell (sorted).

        Every file goes through the same schema / version / key-vs-
        filename validation :meth:`load` applies, so the listing matches
        exactly what :meth:`load` would accept.

        Raises
        ------
        CheckpointError
            If any cell file is corrupt, from a foreign schema, or filed
            under a name its own key does not map to.
        """
        keys = []
        for path in sorted(self.directory.glob("*.json")):
            if path.name in self.RESERVED_NAMES:
                continue
            payload = self._read_payload(path)
            key = tuple(payload["key"])
            if self.path_of(key) != path:
                raise CheckpointError(
                    f"{path}: checkpoint key {list(key)!r} does not map to "
                    f"its own filename (tampered or misplaced file)"
                )
            keys.append(key)
        return sorted(keys)
