"""Deterministic fault injection for the resilience test harness.

A :class:`FaultPlan` describes, per ``(shard, attempt)`` cell, which
infrastructure fault to simulate inside a worker process:

* **crash** — the worker calls ``os._exit``, which kills the process
  without unwinding; the pool surfaces this as ``BrokenProcessPool``,
  the same failure an OOM kill produces;
* **error** — the worker raises :class:`InjectedFault`, modelling a
  transient in-worker failure (a flaky filesystem read, a poisoned
  cache) that a retry clears;
* **slow** — the worker sleeps before computing, so a per-shard timeout
  in the parent fires.

The plan is a frozen, picklable value object: it travels to the worker
with the task, and keying every fault on the attempt number makes runs
reproducible — "crash shard 0 on attempt 0" behaves identically every
time, unlike ``kill -9`` races.

:func:`tear_file` complements the plan for durability tests: it
truncates a file mid-byte, simulating a checkpoint or snapshot whose
write was interrupted before the atomic rename.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["InjectedFault", "FaultPlan", "tear_file"]


class InjectedFault(RuntimeError):
    """The deliberate in-worker failure raised by an ``error`` injection."""


@dataclass(frozen=True)
class FaultPlan:
    """Which fault to inject at each ``(shard, attempt)`` cell.

    Attributes
    ----------
    crashes:
        ``(shard, attempt)`` pairs at which the worker process dies via
        ``os._exit`` (no unwinding, pool breakage).
    errors:
        ``(shard, attempt)`` pairs at which the worker raises
        :class:`InjectedFault`.
    slow:
        ``(shard, attempt, seconds)`` triples: the worker sleeps
        ``seconds`` before computing.

    Attempts are 0-based: attempt 0 is the first pool execution of a
    shard; each retry increments it.  The serial in-process fallback
    bypasses injection entirely — it models the parent process, which
    the simulated worker faults cannot reach.
    """

    crashes: tuple[tuple[int, int], ...] = ()
    errors: tuple[tuple[int, int], ...] = ()
    slow: tuple[tuple[int, int, float], ...] = ()
    #: Exit status used by crash injections (visible in worker diagnostics).
    crash_exit_code: int = field(default=86)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crashes", tuple((int(s), int(a)) for s, a in self.crashes)
        )
        object.__setattr__(
            self, "errors", tuple((int(s), int(a)) for s, a in self.errors)
        )
        object.__setattr__(
            self,
            "slow",
            tuple((int(s), int(a), float(sec)) for s, a, sec in self.slow),
        )
        if any(sec < 0 for _, _, sec in self.slow):
            raise ConfigError("slow-shard delays must be >= 0")
        self._validate_cells()

    def _validate_cells(self) -> None:
        """Reject duplicate or conflicting cells at construction.

        A fault plan is a *deterministic* schedule: two faults claiming
        the same ``(shard, attempt)`` cell would have to race (crash vs
        error) or silently merge (summed sleeps), so either is a
        configuration error naming the duplicate cell rather than a
        last-wins surprise at injection time.  A ``slow`` cell *may*
        coincide with a crash/error cell — :meth:`apply` sleeps first,
        which models a worker that hangs and then dies.
        """
        for kind, cells in (
            ("crashes", self.crashes),
            ("errors", self.errors),
            ("slow", tuple((s, a) for s, a, _ in self.slow)),
        ):
            seen: set[tuple[int, int]] = set()
            for cell in cells:
                if cell in seen:
                    raise ConfigError(
                        f"duplicate fault cell (shard {cell[0]}, attempt "
                        f"{cell[1]}) in {kind}"
                    )
                seen.add(cell)
        conflicting = set(self.crashes) & set(self.errors)
        if conflicting:
            cell = min(conflicting)
            raise ConfigError(
                f"conflicting fault cell (shard {cell[0]}, attempt "
                f"{cell[1]}): listed in both crashes and errors"
            )

    def delay_of(self, shard: int, attempt: int) -> float:
        """Injected sleep for one cell (0 when none).

        Cells are unique by construction, so at most one ``slow`` entry
        matches.
        """
        return sum(
            sec for s, a, sec in self.slow if s == shard and a == attempt
        )

    def apply(self, shard: int, attempt: int) -> None:
        """Run inside the worker: inject whatever this cell specifies."""
        delay = self.delay_of(shard, attempt)
        if delay > 0:
            time.sleep(delay)
        if (shard, attempt) in self.crashes:
            os._exit(self.crash_exit_code)
        if (shard, attempt) in self.errors:
            raise InjectedFault(
                f"injected fault in shard {shard} (attempt {attempt})"
            )


def tear_file(path: str | Path, keep_fraction: float = 0.5) -> Path:
    """Truncate a file to simulate a torn (interrupted) write.

    Keeps the first ``keep_fraction`` of the bytes — enough that naive
    readers might still try to parse it — and returns the path.  With
    ``keep_fraction=0`` the file becomes empty.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigError(
            f"keep_fraction must be in [0, 1), got {keep_fraction}"
        )
    path = Path(path)
    data = path.read_bytes()
    if not data:
        return path
    keep = int(len(data) * keep_fraction)
    path.write_bytes(data[:keep])  # lint: allow[IO001] tearing files is this helper's job
    return path
