"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while still being
able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is invalid (bad parameter, bad combination)."""


class ConfigWarning(UserWarning):
    """A configuration value is legal but almost certainly not what the
    paper intends (e.g. ``alpha <= 1``, which flattens or inverts the
    significance ordering)."""


class DataError(ReproError):
    """Input data is malformed or inconsistent."""


class SchemaError(DataError):
    """A serialized record does not match the expected schema."""


class TaxonomyError(DataError):
    """The product taxonomy is malformed (cycle, orphan, duplicate id)."""


class NotFittedError(ReproError):
    """A model method requiring a prior ``fit`` was called before fitting."""


class EvaluationError(ReproError):
    """An evaluation protocol could not be carried out on the given data."""


class ExecutionError(ReproError):
    """A sharded computation failed even after retries and the in-process
    fallback — the underlying kernel itself is raising, not the worker
    infrastructure."""


class CheckpointError(ReproError):
    """A sweep checkpoint file is corrupt, truncated or belongs to a
    different schema; it will not be silently ingested."""


class SnapshotError(ReproError):
    """A monitor snapshot cannot be produced or restored (corrupt file,
    schema/version mismatch, unsupported configuration)."""


class ManifestError(ReproError):
    """A run manifest is missing, corrupt or from an incompatible
    schema/version; it will not be silently ingested."""


class ServeError(ReproError):
    """The serving layer cannot make progress: invalid serving
    configuration, or a checkpoint that does not belong to the stream
    being served."""


class SoakError(ReproError):
    """A chaos/soak run violated a robustness invariant it pins: a
    fault's measured rework exceeded the bound, counters regressed,
    score parity with the offline sweep broke, or a scheduled fault
    could not be injected."""


class SlabStoreError(DataError):
    """An on-disk slab store is torn, stale or from an incompatible
    version (missing/truncated column files, manifest mismatch); it will
    not be silently memory-mapped."""
